"""Fig. 9a — Rhythmic Pixel Regions: 2D-In vs 2D-Off vs 3D-In energy."""

from repro import units
from repro.energy.report import Category
from repro.usecases import rhythmic_configs, run_rhythmic

_CATEGORIES = (Category.SEN, Category.MEM_D, Category.COMP_D,
               Category.MIPI, Category.UTSV)


def _run_grid():
    return {cfg.label: run_rhythmic(cfg) for cfg in rhythmic_configs()}


def test_fig09a_rhythmic(benchmark, write_result):
    reports = benchmark.pedantic(_run_grid, rounds=3, iterations=1)

    header = f"{'config':<18} {'total uJ':>9} " + " ".join(
        f"{c.value:>9}" for c in _CATEGORIES)
    lines = ["Fig. 9a — Rhythmic Pixel Regions energy per frame (uJ)",
             header]
    for label, report in reports.items():
        cells = " ".join(
            f"{report.category_energy(c) / units.uJ:>9.2f}"
            for c in _CATEGORIES)
        lines.append(f"{label:<18} {report.total_energy / units.uJ:>9.1f} "
                     f"{cells}")

    def saving(node):
        off = reports[f"2D-Off ({node}nm)"].total_energy
        inside = reports[f"2D-In ({node}nm)"].total_energy
        return 1 - inside / off

    stack_savings = []
    for node in (130, 65):
        base = reports[f"2D-In ({node}nm)"].total_energy
        stacked = reports[f"3D-In ({node}nm)"].total_energy
        stack_savings.append(1 - stacked / base)

    lines += ["",
              f"2D-In saving vs 2D-Off @130nm: {100 * saving(130):.1f}% "
              f"(paper: 14.5%)",
              f"2D-In saving vs 2D-Off @65nm:  {100 * saving(65):.1f}% "
              f"(paper: 33.4%)",
              f"3D-In saving vs 2D-In (avg):   "
              f"{100 * sum(stack_savings) / 2:.1f}% (paper: 15.8%)"]
    write_result("fig09a_rhythmic", "\n".join(lines))

    benchmark.extra_info["saving_130nm_pct"] = round(100 * saving(130), 1)
    benchmark.extra_info["saving_65nm_pct"] = round(100 * saving(65), 1)

    # Paper shapes: in-sensor wins for this communication-dominant
    # workload, more so at the newer CIS node; 3D wins over 2D-In.
    assert saving(130) > 0
    assert saving(65) > saving(130)
    assert all(s > 0 for s in stack_savings)
    off = reports["2D-Off (65nm)"]
    assert off.category_energy(Category.MIPI) > 0.5 * off.total_energy
