"""Table 3 — power density (mW/mm^2) across placements and workloads."""

from repro import units
from repro.area import power_density
from repro.area.model import CPU_POWER_DENSITY, GPU_POWER_DENSITY
from repro.usecases import (
    UseCaseConfig,
    build_edgaze,
    build_rhythmic,
    run_edgaze,
    run_rhythmic,
)

_PAPER = {
    ("Rhythmic", 130): {"2D-Off": 0.05, "2D-In": 0.09, "3D-In": 0.06},
    ("Rhythmic", 65): {"2D-Off": 0.03, "2D-In": 0.05, "3D-In": 0.04},
    ("Ed-Gaze", 130): {"2D-Off": 0.19, "2D-In": 0.30, "3D-In": 0.78},
    ("Ed-Gaze", 65): {"2D-Off": 0.11, "2D-In": 2.24, "3D-In": 0.70},
}


def _run_grid():
    grid = {}
    for workload, build, run in (("Rhythmic", build_rhythmic, run_rhythmic),
                                 ("Ed-Gaze", build_edgaze, run_edgaze)):
        for node in (130, 65):
            for placement in ("2D-Off", "2D-In", "3D-In"):
                config = UseCaseConfig(placement, node)
                _, system, _ = build(config)
                report = run(config)
                grid[(workload, node, placement)] = power_density(
                    system, report)
    return grid


def test_table3_power_density(benchmark, write_result):
    grid = benchmark.pedantic(_run_grid, rounds=3, iterations=1)

    unit = units.mW / units.mm2
    lines = ["Table 3 — power density (mW/mm^2); paper values in parens",
             f"{'workload':<10} {'nodes':<10} {'2D-Off':>16} "
             f"{'2D-In':>16} {'3D-In':>16}"]
    for workload in ("Rhythmic", "Ed-Gaze"):
        for node in (130, 65):
            cells = []
            for placement in ("2D-Off", "2D-In", "3D-In"):
                ours = grid[(workload, node, placement)] / unit
                paper = _PAPER[(workload, node)][placement]
                cells.append(f"{ours:6.2f} ({paper:4.2f})")
            lines.append(f"{workload:<10} {node}/22nm   "
                         + " ".join(f"{c:>16}" for c in cells))
    lines += ["",
              f"CPU hotspot reference: "
              f"{CPU_POWER_DENSITY / unit:.0f} mW/mm^2; "
              f"GPU: {GPU_POWER_DENSITY / unit:.0f} mW/mm^2 — all sensor "
              f"variants sit orders of magnitude below."]
    write_result("table3_power_density", "\n".join(lines))

    edgaze_65 = {p: grid[("Ed-Gaze", 65, p)] for p in
                 ("2D-Off", "2D-In", "3D-In")}
    benchmark.extra_info["edgaze_65_2din"] = round(
        edgaze_65["2D-In"] / unit, 2)

    # Paper shapes: Rhythmic's density is insensitive to stacking; at
    # 65/22 nm Ed-Gaze's 2D-In is the densest (leakage); everything is far
    # below CPU/GPU hotspot territory.
    rhythmic_130 = [grid[("Rhythmic", 130, p)] for p in
                    ("2D-Off", "2D-In", "3D-In")]
    assert max(rhythmic_130) < 4 * min(rhythmic_130)
    assert edgaze_65["2D-In"] > edgaze_65["3D-In"] > edgaze_65["2D-Off"]
    assert all(d < 0.05 * GPU_POWER_DENSITY for d in grid.values())
