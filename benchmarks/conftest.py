"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it writes the
reproduced rows/series to ``benchmarks/results/<name>.txt``, attaches the
headline numbers to the pytest-benchmark ``extra_info`` record, and asserts
the shape claims the paper makes about that experiment.

Performance-tracking benches additionally emit a machine-readable
``benchmarks/results/BENCH_<name>.json`` via ``write_bench_json`` —
wall times, throughput rates, cache counters — so CI can archive the
perf trajectory and tooling can diff runs without parsing text tables.

``write_result`` / ``write_bench_json`` are provided as fixtures (not
importable helpers) so the benches never ``import conftest`` —
module-name collisions between ``tests/conftest.py`` and this file are
what broke collection in the seed repo.

Setting ``REPRO_BENCH_SMOKE=1`` asks benches to shrink their workloads
and drop wall-clock assertions: CI smoke jobs only validate that the
benchmarks run and that their JSON is well-formed, never timing noise.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Schema tag stamped into every BENCH_*.json payload.
BENCH_SCHEMA = "repro-bench/v1"


def _write_result(name: str, text: str) -> pathlib.Path:
    """Persist a regenerated table/series under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def _write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Persist machine-readable perf numbers as BENCH_<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    document = {"schema": BENCH_SCHEMA, "name": name,
                "smoke": _is_smoke(), **payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def _is_smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


@pytest.fixture(autouse=True)
def _no_ambient_disk_cache(monkeypatch):
    """Benches measure the tiers they configure, never an operator's
    ``REPRO_CACHE_DIR`` — a populated personal cache would fake warm
    paths and break cold-side assertions."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    """Benches measure healthy-path performance unless they opt into
    fault injection themselves — scrub a chaos session's leftovers."""
    from repro.resilience.faults import reset_injector

    for variable in ("REPRO_FAULTS", "REPRO_RETRY_MAX_ATTEMPTS",
                     "REPRO_RETRY_BASE_DELAY_S", "REPRO_TASK_TIMEOUT_S",
                     "REPRO_EXECUTOR", "REPRO_LEASE_TTL_S",
                     "REPRO_HEARTBEAT_S"):
        monkeypatch.delenv(variable, raising=False)
    reset_injector()
    yield
    reset_injector()


@pytest.fixture
def write_result():
    """The text-result writer, injected so benches need no conftest import."""
    return _write_result


@pytest.fixture
def write_bench_json():
    """The BENCH_*.json writer (wall times, rates, cache counters)."""
    return _write_bench_json


@pytest.fixture
def bench_smoke():
    """Whether to shrink workloads and skip wall-clock assertions."""
    return _is_smoke()
