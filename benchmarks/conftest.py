"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it writes the
reproduced rows/series to ``benchmarks/results/<name>.txt``, attaches the
headline numbers to the pytest-benchmark ``extra_info`` record, and asserts
the shape claims the paper makes about that experiment.

``write_result`` is provided as a fixture (not an importable helper) so
the benches never ``import conftest`` — module-name collisions between
``tests/conftest.py`` and this file are what broke collection in the
seed repo.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _write_result(name: str, text: str) -> pathlib.Path:
    """Persist a regenerated table/series under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture
def write_result():
    """The result writer, injected so benches need no conftest import."""
    return _write_result
