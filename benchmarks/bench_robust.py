"""Robustness-ensemble benchmark: Monte Carlo samples/sec on Ed-Gaze.

The robust subsystem's pitch is that variation analysis is an ensemble
of ordinary cached simulations, not a new engine: every perturbed
sample is a content-addressed design flowing through ``run_many``, so
the session cache amortizes repeated studies the same way it amortizes
repeated explorations.  This bench prices that claim on the paper's
Ed-Gaze design (Fig. 9b):

1. **Cold ensemble throughput** — a >=256-sample Monte Carlo study
   (:func:`repro.robust.monte_carlo`) on a fresh session, in
   samples/sec, with every sample accounted for (100% ``ok``).
2. **Warm ensemble throughput** — the identical study replayed on the
   same session must be served from the result cache and run at least
   ``_MIN_WARM_SPEEDUP``x faster (asserted; the determinism of the
   seed-addressed draws is what makes the replay cache-exact).
3. **Zero-variation equivalence** — a robust exploration under a
   zero-sigma model is asserted bit-identical to the nominal
   :func:`repro.explore.explore` document, the subsystem's core
   correctness contract.

Emitted as ``BENCH_robust.json``.  ``REPRO_BENCH_SMOKE=1`` shrinks the
ensemble and drops the wall-clock speedup assertion; the accounting
and bit-identity claims are structural and assert in both modes.
"""

import time

from repro.api import Simulator
from repro.api.registry import build_usecase
from repro.explore import explore
from repro.robust import (default_variation, explore_robust, monte_carlo)
from repro.usecases.edgaze import edgaze_space

#: The three objectives the Sec. 6 exploration trades off.
_METRICS = ("energy_per_frame", "power_density", "latency")

#: Warm replays ride the content-hash result cache; anything under this
#: speedup means the ensemble re-simulated work it had already paid for.
_MIN_WARM_SPEEDUP = 3.0

_FULL_SAMPLES = 256
_SMOKE_SAMPLES = 32
_SEED = 7


def _study(simulator, samples):
    design = build_usecase("edgaze", placement="2D-In", cis_node=65)
    return monte_carlo(design, default_variation(), samples=samples,
                       seed=_SEED, metrics=list(_METRICS),
                       simulator=simulator)


def _study_fresh(samples):
    with Simulator() as simulator:
        return _study(simulator, samples)


def test_robust_ensemble_throughput(benchmark, write_result,
                                    write_bench_json, bench_smoke):
    samples = _SMOKE_SAMPLES if bench_smoke else _FULL_SAMPLES
    simulator = Simulator()

    started = time.perf_counter()
    cold = _study(simulator, samples)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = _study(simulator, samples)
    warm_s = time.perf_counter() - started
    warm_stats = simulator.last_batch_stats

    # The benchmarked quantity: one cold ensemble on a fresh session.
    benchmark.pedantic(_study_fresh, args=(samples,), rounds=1,
                       iterations=1)

    # 100% sample accounting: every drawn sample reached a terminal
    # ok/failed state and none failed on this all-feasible design.
    assert cold.accounting == {"total": samples, "ok": samples,
                               "failed": 0}
    assert cold.seed == _SEED and cold.samples == samples
    # Deterministic replay: the warm document is bit-identical and the
    # final batch was served without simulating anything new.
    assert warm.to_json() == cold.to_json()
    assert warm_stats.cache_hits == warm_stats.unique

    # Zero-variation ensembles collapse to the nominal path exactly.
    space = edgaze_space()
    nominal = explore(space, "edgaze", objectives=list(_METRICS),
                      simulator=simulator, engine="object")
    zero = explore_robust(space, "edgaze", objectives=list(_METRICS),
                          variation=default_variation(0.0), samples=3,
                          seed=_SEED, simulator=simulator,
                          engine="object")
    assert zero.to_json() == nominal.to_json(), \
        "zero-variation robust explore drifted from the nominal engine"

    cold_rate = samples / cold_s if cold_s else float("inf")
    warm_rate = samples / warm_s if warm_s else float("inf")
    speedup = warm_rate / cold_rate if cold_rate else float("inf")
    spread = cold.distributions["energy_per_frame"]

    lines = ["robust ensembles — Monte Carlo samples through run_many",
             "",
             f"{'ensemble samples':<28} {samples}  (seed {_SEED})",
             f"{'sample accounting':<28} {cold.accounting['ok']}"
             f"/{cold.accounting['total']} ok",
             f"{'cold wall-clock':<28} {cold_s * 1e3:8.2f} ms  "
             f"({cold_rate:.1f} samples/s)",
             f"{'warm wall-clock':<28} {warm_s * 1e3:8.2f} ms  "
             f"({warm_rate:.1f} samples/s, {speedup:.1f}x)",
             f"{'energy p5/p50/p95':<28} "
             f"{spread.quantiles['p05']:.3e} / "
             f"{spread.quantiles['p50']:.3e} / "
             f"{spread.quantiles['p95']:.3e} J",
             f"{'zero-variation explore':<28} bit-identical to nominal"]
    write_result("robust", "\n".join(lines))

    benchmark.extra_info["samples_per_s_cold"] = round(cold_rate, 1)
    benchmark.extra_info["samples_per_s_warm"] = round(warm_rate, 1)
    benchmark.extra_info["warm_speedup"] = round(speedup, 2)

    write_bench_json("robust", {
        "samples": samples,
        "seed": _SEED,
        "metrics": list(_METRICS),
        "accounting": dict(cold.accounting),
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "samples_per_s_cold": cold_rate,
        "samples_per_s_warm": warm_rate,
        "warm_speedup": speedup,
        "min_warm_speedup": _MIN_WARM_SPEEDUP,
        "energy_per_frame_p5": spread.quantiles["p05"],
        "energy_per_frame_p50": spread.quantiles["p50"],
        "energy_per_frame_p95": spread.quantiles["p95"],
        "zero_variation_bit_identical": True,
    })

    if not bench_smoke:  # smoke jobs never fail on wall-clock noise
        assert speedup >= _MIN_WARM_SPEEDUP, \
            f"warm ensemble only {speedup:.1f}x faster than cold"
