"""Distributed executor benchmark: fleet scaling and chaos completion.

The ``distributed`` backend's pitch is that a coordinator can keep a
fleet of ``repro worker`` processes saturated through the lease-based
dispatch queue, and that worker crashes cost lease re-dispatches, not
lost batches.  This bench prices both claims end to end over real HTTP
on one machine:

1. **Fleet scaling** — a 10k-point Ed-Gaze exploration runs through
   ``repro serve --dispatch`` twice: one worker, then ``_FLEET``
   workers.  Every task carries a deterministic injected latency
   (``REPRO_FAULTS`` ``delay_s``, workers only) so per-point cost is
   dominated by waiting, not by CPU the co-located processes would
   fight over — what a single-core CI box can honestly measure is the
   dispatch pipeline's ability to overlap N workers' latency, which is
   exactly the quantity that transfers to real multi-machine fleets.
   Asserted >= ``_MIN_SPEEDUP`` in full mode.
2. **Chaos completion** — the same 10k-point exploration with workers
   that SIGKILL themselves every ``_KILL_EVERY`` tasks (``kill_every``
   suicides via ``os._exit``) under ``--respawn`` supervisors and a
   short lease TTL.  Every point must still complete (expired leases
   re-enter the queue and land on surviving or respawned workers), no
   task may be quarantined, and the metrics must be identical to the
   clean fleet's — crashes cost time, never answers.

Measured quantities are emitted as ``BENCH_distributed.json``.  Under
``REPRO_BENCH_SMOKE=1`` the space shrinks, the fleet shrinks to two
workers, and the wall-clock/kill-count assertions are skipped; the
completion and metric-equality assertions always run.
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

from repro.serve import BackgroundServer
from repro.explore.spec import exploration_spec_from_dict

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Injected per-task latency (workers only): stands in for expensive
#: points so scaling measures dispatch concurrency, not single-core
#: CPU contention between co-located worker processes.
_DELAY_S = 0.005
#: Every Nth task executed by one worker process SIGKILLs it
#: (``os._exit``); respawned incarnations restart their count, so the
#: fleet keeps losing workers throughout the run.  (A ``kill_rate``
#: draw would key on the design hash — only 8 distinct designs here —
#: so the per-process counter is the knob that actually injects kills
#: into a wide option sweep.)
_KILL_EVERY = 700
#: Fault plan seed (fixed so runs replay identically).
_SEED = 42
#: Acceptance bar (full mode): fleet throughput over single-worker.
_MIN_SPEEDUP = 2.5
#: Chaos-phase lease TTL: short enough that expiry recovery, not the
#: deadline, dominates the injected-crash costs.
_LEASE_TTL_S = 2.0

_FULL_RATES = 1250   # x 8 configs = 10,000 points
_FULL_FLEET = 4
_SMOKE_RATES = 8     # x 8 configs = 64 points
_SMOKE_FLEET = 2
_BATCH_SIZE = 32


def _make_spec(n_rates):
    """The Ed-Gaze grid: 8 placement/node configs x ``n_rates`` rates."""
    return exploration_spec_from_dict({
        "schema": "repro.explore-spec/1",
        "name": "edgaze-distributed",
        "usecase": "edgaze",
        # The per-point object path: the auto engine would vectorize
        # this frame-rate sweep in-process and dispatch nothing.
        "engine": "object",
        "space": {"product": [
            {"name": "placement",
             "values": ["2D-In", "2D-Off", "3D-In", "3D-In-STT"]},
            {"name": "cis_node", "values": [130, 65]},
            {"name": "options.frame_rate",
             "values": [1.0 + rate / 10.0 for rate in range(n_rates)]},
        ]},
        "objectives": ["energy_per_frame"],
    })


def _spawn_workers(url, count, cache_dir, faults, respawn=False):
    """Worker subprocesses with fault injection scoped to them only."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["REPRO_FAULTS"] = json.dumps(faults)
    argv = [sys.executable, "-m", "repro", "worker", "--connect", url,
            "--batch-size", str(_BATCH_SIZE), "--cache-dir", cache_dir]
    if respawn:
        argv.append("--respawn")
    return [subprocess.Popen(argv, env=env, cwd=_REPO_ROOT,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
            for _ in range(count)]


def _await_fleet(client, count, timeout_s=90.0):
    """Block until ``count`` workers are registered and heartbeating.

    Python worker startup takes seconds; submitting before the fleet
    connects would trip the coordinator's local-execution fallback and
    benchmark the wrong backend.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        workers = client.stats()["dispatch"]["workers"]
        if sum(1 for worker in workers if worker["alive"]) >= count:
            return
        assert time.monotonic() < deadline, \
            f"fleet of {count} never registered: {workers}"
        time.sleep(0.05)


def _run_fleet(spec, total, count, faults, respawn=False,
               lease_ttl_s=None):
    """One exploration through a dispatch coordinator and ``count``
    workers; returns ``(result, wall_s, dispatch_stats)``."""
    cache_dir = tempfile.mkdtemp(prefix="bench-distributed-")
    with BackgroundServer(dispatch=True, workers=1, cache_dir=cache_dir,
                          lease_ttl_s=lease_ttl_s) as server:
        host, port = server.address
        url = f"http://{host}:{port}"
        procs = _spawn_workers(url, count, cache_dir, faults,
                               respawn=respawn)
        try:
            client = server.client(timeout=120.0)
            _await_fleet(client, count)
            started = time.perf_counter()
            result = spec.run(server.app.simulator)
            wall_s = time.perf_counter() - started
            stats = client.stats()["dispatch"]
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=60)
    assert len(result.points) == total
    return result, wall_s, stats


def _metrics_by_params(result):
    return {json.dumps(point.params, sort_keys=True): point.metrics
            for point in result.points}


def test_distributed_fleet_scaling_and_chaos(benchmark, write_result,
                                             write_bench_json,
                                             bench_smoke):
    rates = _SMOKE_RATES if bench_smoke else _FULL_RATES
    fleet = _SMOKE_FLEET if bench_smoke else _FULL_FLEET
    total = 8 * rates
    spec = _make_spec(rates)
    delay = {"seed": _SEED, "delay_s": _DELAY_S}

    # Phase 1 — single-worker baseline.
    single, single_s, single_stats = _run_fleet(spec, total, 1, delay)
    assert all(point.feasible for point in single.points)
    assert single_stats["completed_total"] == total
    assert single_stats["expired_total"] == 0

    # Phase 2 — the fleet, same workload, fresh cache.
    clean, fleet_s, fleet_stats = _run_fleet(spec, total, fleet, delay)
    assert all(point.feasible for point in clean.points)
    assert fleet_stats["completed_total"] == total
    speedup = single_s / fleet_s if fleet_s else float("inf")
    # Distribution never changes answers: the fleet's metrics are
    # bit-identical to the single worker's.
    clean_metrics = _metrics_by_params(clean)
    assert clean_metrics == _metrics_by_params(single)

    # Phase 3 — the fleet under SIGKILL chaos: each worker process
    # suicides on its _KILL_EVERY-th task, supervisors respawn the
    # dead, expired leases re-enter the queue, and every point still
    # completes.
    chaos, chaos_s, chaos_stats = _run_fleet(
        spec, total, fleet, {**delay, "kill_every": _KILL_EVERY},
        respawn=True, lease_ttl_s=_LEASE_TTL_S)
    completed = sum(1 for point in chaos.points if point.feasible)
    assert completed == total, \
        f"chaos run completed {completed}/{total}"
    assert chaos_stats["quarantined_total"] == 0
    assert _metrics_by_params(chaos) == clean_metrics
    incarnations = len(chaos_stats["workers"])

    # The benchmarked quantity: one dispatch-endpoint round trip (the
    # protocol overhead every claim/complete cycle pays twice).
    cache_dir = tempfile.mkdtemp(prefix="bench-distributed-rtt-")
    with BackgroundServer(dispatch=True, workers=1,
                          cache_dir=cache_dir) as server:
        client = server.client(timeout=30.0)
        worker_id = client._request("POST", "/dispatch/register",
                                    {"pid": os.getpid()})["worker_id"]
        benchmark.pedantic(
            client._request, args=("POST", "/dispatch/claim",
                                   {"worker_id": worker_id,
                                    "max_tasks": _BATCH_SIZE}),
            rounds=10 if bench_smoke else 50, iterations=1)

    single_rate = total / single_s if single_s else float("inf")
    fleet_rate = total / fleet_s if fleet_s else float("inf")
    chaos_rate = total / chaos_s if chaos_s else float("inf")

    lines = ["distributed executor — Ed-Gaze exploration over a "
             "local worker fleet",
             "",
             f"{'explore points':<28} {total}"
             f"  (8 configs x {rates} frame rates, "
             f"{_DELAY_S * 1e3:.0f} ms injected task latency)",
             f"{'single worker':<28} {single_s:8.2f} s"
             f"  ({single_rate:7.1f} pt/s)",
             f"{f'{fleet}-worker fleet':<28} {fleet_s:8.2f} s"
             f"  ({fleet_rate:7.1f} pt/s, {speedup:.2f}x)",
             f"{'fleet under SIGKILL chaos':<28} {chaos_s:8.2f} s"
             f"  ({chaos_rate:7.1f} pt/s, kill every "
             f"{_KILL_EVERY} tasks)",
             f"{'chaos completion':<28} {completed}/{total}  (100%)",
             f"{'lease expiries recovered':<28} "
             f"{chaos_stats['expired_total']}",
             f"{'worker incarnations':<28} {incarnations}"
             f"  (fleet of {fleet}, respawn on kill)",
             f"{'quarantined':<28} {chaos_stats['quarantined_total']}"]
    write_result("distributed", "\n".join(lines))

    benchmark.extra_info["fleet_speedup"] = round(speedup, 2)
    benchmark.extra_info["chaos_completion"] = completed / total

    write_bench_json("distributed", {
        "explore_points": total,
        "task_delay_s": _DELAY_S,
        "fleet_workers": fleet,
        "batch_size": _BATCH_SIZE,
        "single_worker_wall_s": single_s,
        "single_worker_points_per_s": single_rate,
        "fleet_wall_s": fleet_s,
        "fleet_points_per_s": fleet_rate,
        "fleet_speedup": speedup,
        "min_fleet_speedup": _MIN_SPEEDUP,
        "chaos_kill_every": _KILL_EVERY,
        "chaos_lease_ttl_s": _LEASE_TTL_S,
        "chaos_wall_s": chaos_s,
        "chaos_points_per_s": chaos_rate,
        "chaos_completed": completed,
        "chaos_completion_rate": completed / total,
        "chaos_lease_expiries": chaos_stats["expired_total"],
        "chaos_worker_incarnations": incarnations,
        "chaos_quarantined": chaos_stats["quarantined_total"],
        "fault_seed": _SEED,
    })

    # Wall-clock and kill-count bars (full mode only: a smoke space is
    # too small to scale past startup noise or dodge zero kills).
    if not bench_smoke:
        assert speedup >= _MIN_SPEEDUP, \
            f"fleet only {speedup:.2f}x over one worker"
        assert chaos_stats["expired_total"] > 0, \
            "chaos run killed no worker mid-lease"
        assert incarnations > fleet, \
            "no worker was respawned during the chaos run"
