"""Fig. 13 — compute vs memory breakdown of the first two Ed-Gaze stages."""

from repro import units
from repro.energy.report import Category
from repro.usecases import UseCaseConfig, run_edgaze, run_edgaze_mixed

_FIRST_STAGES = ("Input", "Downsample", "FrameSubtract")
_COMPUTE = (Category.COMP_D, Category.COMP_A)
_MEMORY = (Category.MEM_D, Category.MEM_A)


def _first_stage_split(report):
    compute = sum(e.energy for e in report.entries
                  if e.stage in _FIRST_STAGES and e.category in _COMPUTE)
    memory = sum(e.energy for e in report.entries
                 if e.stage in _FIRST_STAGES and e.category in _MEMORY)
    sensing = sum(e.energy for e in report.entries
                  if e.stage in _FIRST_STAGES
                  and e.category is Category.SEN)
    return {"compute": compute, "memory": memory, "sensing": sensing}


def _run_grid():
    grid = {}
    for node in (130, 65):
        grid[f"digital ({node}nm)"] = _first_stage_split(
            run_edgaze(UseCaseConfig("2D-In", node)))
        grid[f"mixed ({node}nm)"] = _first_stage_split(
            run_edgaze_mixed(node))
    return grid


def test_fig13_first_stages(benchmark, write_result):
    grid = benchmark.pedantic(_run_grid, rounds=3, iterations=1)

    lines = ["Fig. 13 — first two stages: compute vs memory (uJ)",
             f"{'config':<18} {'compute':>10} {'memory':>10} "
             f"{'sensing':>10}"]
    for label, split in grid.items():
        lines.append(f"{label:<18} {split['compute'] / units.uJ:>10.3f} "
                     f"{split['memory'] / units.uJ:>10.3f} "
                     f"{split['sensing'] / units.uJ:>10.3f}")
    write_result("fig13_first_stages", "\n".join(lines))

    benchmark.extra_info["mixed65_compute_uJ"] = round(
        grid["mixed (65nm)"]["compute"] / units.uJ, 3)

    # Paper shape: in the mixed design the first-stage *memory* energy
    # collapses while the *compute* energy slightly increases (8-bit
    # OpAmp precision, Eq. 6) — the saving comes from memory, not compute.
    for node in (130, 65):
        digital = grid[f"digital ({node}nm)"]
        mixed = grid[f"mixed ({node}nm)"]
        assert mixed["memory"] < digital["memory"]
        assert mixed["compute"] > digital["compute"]
        assert mixed["sensing"] < digital["sensing"]
