"""Fig. 12 — normalized energy breakdown among the three Ed-Gaze stages."""

from repro.usecases import UseCaseConfig, run_edgaze, run_edgaze_mixed

#: Stage grouping of Fig. 12: S1 = downsampling (incl. sensing), S2 =
#: frame subtraction, S3 = the ROI DNN.
_S1 = ("Input", "Downsample")
_S2 = ("FrameSubtract",)
_S3 = ("RoiDNN",)


def _stage_shares(report):
    by_stage = report.by_stage()
    groups = {
        "S1": sum(by_stage.get(name, 0.0) for name in _S1),
        "S2": sum(by_stage.get(name, 0.0) for name in _S2),
        "S3": sum(by_stage.get(name, 0.0) for name in _S3),
    }
    total = sum(groups.values()) or 1.0
    return {key: value / total for key, value in groups.items()}


def _run_grid():
    grid = {}
    for node in (130, 65):
        grid[f"2D-In ({node}nm)"] = _stage_shares(
            run_edgaze(UseCaseConfig("2D-In", node)))
        grid[f"2D-In-Mixed ({node}nm)"] = _stage_shares(
            run_edgaze_mixed(node))
    return grid


def test_fig12_stage_breakdown(benchmark, write_result):
    grid = benchmark.pedantic(_run_grid, rounds=3, iterations=1)

    lines = ["Fig. 12 — normalized energy share per stage (S1/S2/S3)",
             f"{'config':<24} {'S1%':>7} {'S2%':>7} {'S3%':>7}"]
    for label, shares in grid.items():
        lines.append(f"{label:<24} {100 * shares['S1']:>7.1f} "
                     f"{100 * shares['S2']:>7.1f} "
                     f"{100 * shares['S3']:>7.1f}")
    write_result("fig12_stage_breakdown", "\n".join(lines))

    mixed65 = grid["2D-In-Mixed (65nm)"]
    digital65 = grid["2D-In (65nm)"]
    benchmark.extra_info["s3_share_mixed65_pct"] = round(
        100 * mixed65["S3"], 1)

    # Paper shape: after moving S1/S2 into analog, S3 (the DNN) becomes
    # the dominant stage — the effectiveness of analog processing.
    for node in (130, 65):
        shares = grid[f"2D-In-Mixed ({node}nm)"]
        assert shares["S3"] > 0.6
        assert shares["S3"] > shares["S1"] + shares["S2"]
    # And at the leaky 65 nm node the first two stages dominate the
    # fully-digital design before mixing.
    assert digital65["S1"] + digital65["S2"] > digital65["S3"]
