"""Batch-API benchmark: ``Simulator.run_many`` vs a sequential loop.

Runs the Fig. 9a rhythmic configuration grid through the session API's
parallel batch path and through a plain sequential loop over the legacy
``simulate()`` wrapper, comparing wall-clock and asserting the results
are identical.  Guards the batch path against regressions: dedup and
caching must keep ``run_many`` competitive with the hand-rolled loop
even on a single core, and a warm cache must make repeat batches
near-free.
"""

import time

from repro import simulate, units
from repro.api import Simulator
from repro.usecases import build_rhythmic, rhythmic_configs

#: A single-core box gains nothing from thread fan-out; the guard only
#: rejects pathological overhead in the batch machinery itself.  Kept
#: deliberately loose (plus a constant startup allowance below) because
#: both sides are millisecond-scale and shared CI runners are noisy.
_MAX_ACCEPTABLE_SLOWDOWN = 5.0
#: Constant allowance for thread-pool startup on tiny workloads.
_STARTUP_SLACK_S = 0.25


def _designs():
    return [build_rhythmic(config) for config in rhythmic_configs()]


def _run_sequential(designs):
    return [simulate(*design, frame_rate=30.0) for design in designs]


def _run_batched_cold(designs):
    # A fresh session per round: pedantic must measure the cold batch
    # path, not cache lookups against a session reused across rounds.
    return Simulator().run_many(designs)


def test_batch_api_matches_and_keeps_pace(benchmark, write_result,
                                          write_bench_json, bench_smoke):
    designs = _designs()

    started = time.perf_counter()
    sequential = _run_sequential(designs)
    sequential_s = time.perf_counter() - started

    cold = Simulator()
    started = time.perf_counter()
    batched = cold.run_many(designs)
    batch_cold_s = time.perf_counter() - started
    stats = cold.last_batch_stats

    started = time.perf_counter()
    warm = cold.run_many(designs)
    batch_warm_s = time.perf_counter() - started
    warm_stats = cold.last_batch_stats

    # The benchmarked quantity: a cold batch through the session API.
    benchmark.pedantic(_run_batched_cold, args=(designs,),
                       rounds=3, iterations=1)

    # Identical scenarios, identical energies, input order preserved.
    assert [r.design_name for r in batched] == [d.name for d in designs]
    assert all(result.ok for result in batched)
    for direct, result in zip(sequential, batched):
        assert result.report.total_energy == direct.total_energy
    assert all(result.cached for result in warm)

    speedup = sequential_s / batch_cold_s if batch_cold_s else float("inf")
    warm_speedup = sequential_s / batch_warm_s if batch_warm_s \
        else float("inf")

    lines = ["Batch API — Simulator.run_many vs sequential loop "
             "(Fig. 9a rhythmic grid)",
             f"{'configs':<28} {len(designs)}",
             f"{'sequential wall-clock':<28} {sequential_s * 1e3:8.2f} ms",
             f"{'run_many cold wall-clock':<28} {batch_cold_s * 1e3:8.2f} ms"
             f"  ({speedup:.2f}x vs sequential)",
             f"{'run_many warm wall-clock':<28} {batch_warm_s * 1e3:8.2f} ms"
             f"  ({warm_speedup:.2f}x vs sequential, all cache hits)",
             f"{'pool width':<28} {stats.max_workers}",
             "",
             f"{'config':<18} {'total/frame':>12}"]
    for design, result in zip(designs, batched):
        lines.append(
            f"{design.name:<18} "
            f"{units.format_energy(result.report.total_energy):>12}")
    write_result("batch_api", "\n".join(lines))

    benchmark.extra_info["speedup_cold"] = round(speedup, 2)
    benchmark.extra_info["speedup_warm"] = round(warm_speedup, 2)
    benchmark.extra_info["max_workers"] = stats.max_workers

    cache_info = cold.cache_info()
    write_bench_json("batch_api", {
        "configs": len(designs),
        "sequential_wall_s": sequential_s,
        "run_many_cold_wall_s": batch_cold_s,
        "run_many_warm_wall_s": batch_warm_s,
        "speedup_cold": speedup,
        "speedup_warm": warm_speedup,
        "max_workers": stats.max_workers,
        "workers_used_cold": stats.workers_used,
        "workers_used_warm": warm_stats.workers_used,
        "cache_hits": cache_info.hits,
        "cache_misses": cache_info.misses,
        "cache_size": cache_info.size,
    })

    # Regression guards: the batch machinery must not dominate the work.
    # Cache effectiveness is asserted structurally (every warm result is
    # a hit and no pool is spun up for it) rather than by comparing two
    # millisecond-scale timings, which is flaky on shared CI runners.
    if not bench_smoke:  # smoke jobs never fail on wall-clock noise
        assert batch_cold_s < _MAX_ACCEPTABLE_SLOWDOWN * sequential_s \
            + _STARTUP_SLACK_S
    assert stats.max_workers >= 2
    assert warm_stats.cache_hits == len(designs)
    assert warm_stats.workers_used == 0  # warm batch never touches a pool
