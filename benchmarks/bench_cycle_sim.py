"""Cycle-simulator benchmark: event-driven skip-ahead vs reference loop.

Runs the cycle-accurate digital validator over small/medium/large frame
sizes through both implementations, asserts the cycle counts are
bit-identical, and records the speedup.  The event-driven simulator does
O(state transitions) work instead of O(cycles x stages x depth), so the
speedup grows with frame size — the acceptance bar is >= 10x on the
medium config (skipped in smoke mode, where tiny frames leave nothing
to amortize).

Emits ``benchmarks/results/BENCH_cycle_sim.json``: per-config wall
times, simulated-cycles-per-second rates, and speedups.
"""

import time

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import FIFO
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sim.cycle_sim import (
    _cycle_accurate_reference,
    cycle_accurate_latency,
)
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput, ProcessStage

#: Acceptance bar for the event-driven rewrite on the medium config.
_MIN_MEDIUM_SPEEDUP = 10.0

_FULL_SIZES = {"small": 64, "medium": 256, "large": 512}
_SMOKE_SIZES = {"small": 16, "medium": 32, "large": 48}


def _pipeline(size):
    """A three-stage streaming pipeline over a ``size x size`` frame."""
    source = PixelInput((size, size, 1), name="Input")
    denoise = ProcessStage("Denoise", input_size=(size, size, 1),
                           kernel=(1, 1, 1), stride=(1, 1, 1))
    sharpen = ProcessStage("Sharpen", input_size=(size, size, 1),
                           kernel=(1, 1, 1), stride=(1, 1, 1))
    denoise.set_input_stage(source)
    sharpen.set_input_stage(denoise)

    system = SensorSystem("Bench", layers=[Layer(SENSOR_LAYER, 65)])
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (size, size))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(), (1, size))
    pixels.set_output(adcs)
    in_fifo = FIFO("InFifo", size=(1, 4 * size), write_energy_per_word=0,
                   read_energy_per_word=0, num_read_ports=4,
                   num_write_ports=4)
    adcs.set_output(in_fifo)
    mid = FIFO("Mid", size=(1, 2 * size), write_energy_per_word=0,
               read_energy_per_word=0, num_read_ports=4, num_write_ports=4)
    first = ComputeUnit("DenoisePE", input_pixels_per_cycle=(1, 1),
                        output_pixels_per_cycle=(1, 1),
                        energy_per_cycle=1 * units.pJ, num_stages=3)
    second = ComputeUnit("SharpenPE", input_pixels_per_cycle=(1, 1),
                         output_pixels_per_cycle=(1, 1),
                         energy_per_cycle=1 * units.pJ, num_stages=2)
    first.set_input(in_fifo).set_output(mid)
    second.set_input(mid)
    second.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(in_fifo)
    system.add_memory(mid)
    system.add_compute_unit(first)
    system.add_compute_unit(second)

    graph = StageGraph([source, denoise, sharpen])
    mapping = Mapping({"Input": "Pixels", "Denoise": "DenoisePE",
                       "Sharpen": "SharpenPE"})
    clock = first.clock_hz
    return graph, system, mapping, clock


def _timed(simulator, graph, system, mapping):
    started = time.perf_counter()
    latency = simulator(graph, system, mapping)
    return latency, time.perf_counter() - started


def test_event_driven_matches_and_outruns_reference(benchmark, write_result,
                                                    write_bench_json,
                                                    bench_smoke):
    sizes = _SMOKE_SIZES if bench_smoke else _FULL_SIZES

    configs = {}
    for label, size in sizes.items():
        graph, system, mapping, clock = _pipeline(size)
        reference_latency, reference_s = _timed(
            _cycle_accurate_reference, graph, system, mapping)
        event_latency, event_s = _timed(
            cycle_accurate_latency, graph, system, mapping)

        # The acceptance-critical claim: identical cycle counts.
        assert event_latency == reference_latency
        cycles = round(reference_latency * clock)
        configs[label] = {
            "frame": f"{size}x{size}",
            "cycles": cycles,
            "reference_wall_s": reference_s,
            "event_wall_s": event_s,
            "reference_cycles_per_s": cycles / reference_s
            if reference_s else float("inf"),
            "event_cycles_per_s": cycles / event_s
            if event_s else float("inf"),
            "speedup": reference_s / event_s if event_s else float("inf"),
        }

    # The benchmarked quantity: the event-driven path on the medium config.
    graph, system, mapping, _ = _pipeline(sizes["medium"])
    benchmark.pedantic(cycle_accurate_latency,
                       args=(graph, system, mapping), rounds=3, iterations=1)

    lines = ["Cycle-accurate simulator — event-driven skip-ahead vs "
             "reference per-cycle loop",
             f"{'config':<10} {'frame':>10} {'cycles':>10} "
             f"{'reference':>12} {'event':>12} {'speedup':>9}"]
    for label, row in configs.items():
        lines.append(
            f"{label:<10} {row['frame']:>10} {row['cycles']:>10} "
            f"{row['reference_wall_s'] * 1e3:>10.2f}ms "
            f"{row['event_wall_s'] * 1e3:>10.2f}ms "
            f"{row['speedup']:>8.1f}x")
    write_result("cycle_sim", "\n".join(lines))
    write_bench_json("cycle_sim", {
        "configs": configs,
        "cycle_counts_identical": True,
        "min_medium_speedup": _MIN_MEDIUM_SPEEDUP,
    })

    medium = configs["medium"]
    benchmark.extra_info["medium_cycles"] = medium["cycles"]
    benchmark.extra_info["medium_speedup"] = round(medium["speedup"], 1)

    if not bench_smoke:
        # Wall-clock acceptance — full configs only; smoke runs are for
        # validity, not timing, and tiny frames amortize nothing.
        assert medium["speedup"] >= _MIN_MEDIUM_SPEEDUP, (
            f"event-driven simulator only {medium['speedup']:.1f}x faster "
            f"than the reference loop on the medium config")
