"""Fig. 3 — CIS process node vs IRDS CMOS node vs pixel pitch scaling."""

from repro.survey import (
    cis_node_trend,
    node_gap_by_year,
    pixel_pitch_trend,
)


def _series():
    return (cis_node_trend(), pixel_pitch_trend(), node_gap_by_year())


def test_fig03_scaling(benchmark, write_result):
    (node_slope, _), (pitch_slope, _), gap_rows = benchmark(_series)

    lines = ["Fig. 3 — CIS node scaling vs IRDS roadmap",
             f"CIS node halving period:    {-1 / node_slope:.1f} years",
             f"pixel pitch halving period: {-1 / pitch_slope:.1f} years",
             f"{'year':>6} {'CIS node (fit, nm)':>20} {'IRDS (nm)':>10} "
             f"{'gap':>8}"]
    for row in gap_rows:
        lines.append(f"{row['year']:>6} {row['cis_node_nm']:>20.0f} "
                     f"{row['irds_node_nm']:>10.0f} "
                     f"{row['gap_ratio']:>7.1f}x")
    write_result("fig03_scaling", "\n".join(lines))

    benchmark.extra_info["cis_halving_years"] = round(-1 / node_slope, 1)
    benchmark.extra_info["gap_2022"] = round(gap_rows[-1]["gap_ratio"], 1)

    # Paper shapes: the CIS node lags IRDS with a widening gap, and the
    # CIS node slope follows the pixel-pitch slope.
    assert gap_rows[-1]["gap_ratio"] > gap_rows[0]["gap_ratio"]
    assert gap_rows[-1]["gap_ratio"] > 10
    assert abs(node_slope - pitch_slope) < 0.25 * abs(node_slope)
