"""Resilience benchmark: exploration throughput under injected crashes.

The fault-tolerant process runner's pitch is that worker deaths cost
retries, not batches.  This bench prices that claim: the same
multi-design exploration runs twice on a process-pool session — once
fault-free, once with the deterministic fault injector killing workers
on ``_KILL_RATE`` of first attempts (the ``REPRO_FAULTS`` harness the
resilience tests and the chaos CI job share).

Measured quantities (emitted as ``BENCH_resilience.json``):

1. **Completion rate under faults** — the fraction of points that
   still produce a feasible result; asserted >= ``_MIN_COMPLETION``
   in both modes (the injection is deterministic, so this is a
   structural claim, not a timing one).
2. **Recovery overhead** — faulty wall time over fault-free wall
   time: what pool healing, re-queues, and backoff actually cost.
3. **Resilience counters** — pool rebuilds and retries the faulty run
   absorbed, straight from the exploration's ``resilience`` tally.

Under ``REPRO_BENCH_SMOKE=1`` the space shrinks and the
injected-crash expectation is dropped (a tiny space may dodge every
deterministic kill); the completion-rate assertion always runs.
"""

import json
import os
import time

from repro.api import Design, Simulator
from repro.explore import choice, explore
from repro.resilience import FAULTS_ENV, reset_injector
from repro.usecases.fig5 import build_fig5_design

#: Deterministic fraction of first attempts that kill their worker.
_KILL_RATE = 0.10
#: Acceptance bar: points completing despite the injected crashes.
_MIN_COMPLETION = 0.90
#: Fault plan seed (fixed so runs replay bit-identically).
_SEED = 1234

_FULL_POINTS = 40
_SMOKE_POINTS = 8
_MAX_WORKERS = 4


def _named_builder(index=0):
    payload = build_fig5_design().to_dict()
    payload["name"] = f"res-{int(index):03d}"
    return Design.from_dict(payload)


def _explore_once(points):
    """One cold process-pool exploration; returns (result, wall_s)."""
    started = time.perf_counter()
    with Simulator(executor="process", max_workers=_MAX_WORKERS,
                   cache=False) as simulator:
        result = explore(choice("index", list(range(points))),
                         _named_builder,
                         objectives=["energy_per_frame"],
                         simulator=simulator)
    return result, time.perf_counter() - started


def test_resilience_completion_under_crashes(benchmark, write_result,
                                             write_bench_json,
                                             bench_smoke):
    points = _SMOKE_POINTS if bench_smoke else _FULL_POINTS

    clean, clean_s = _explore_once(points)
    assert all(point.feasible for point in clean.points)
    assert clean.resilience["pool_rebuilds"] == 0

    os.environ[FAULTS_ENV] = json.dumps(
        {"seed": _SEED, "kill_rate": _KILL_RATE})
    reset_injector()
    try:
        faulty, faulty_s = _explore_once(points)
    finally:
        os.environ.pop(FAULTS_ENV, None)
        reset_injector()

    completed = sum(1 for point in faulty.points if point.feasible)
    completion = completed / points
    overhead = faulty_s / clean_s if clean_s else float("inf")

    # The faulty metrics that did complete are identical to clean ones
    # — fault injection never changes answers, only availability.
    clean_metrics = {json.dumps(p.params): p.metrics
                     for p in clean.points}
    for point in faulty.points:
        if point.feasible:
            assert point.metrics == clean_metrics[
                json.dumps(point.params)]

    # The benchmarked quantity: one fault-free cold exploration.
    benchmark.pedantic(_explore_once, args=(points,),
                       rounds=1, iterations=1)

    lines = ["fault-tolerant execution — explore under injected crashes",
             "",
             f"{'explore points':<28} {points}"
             f"  (process pool, {_MAX_WORKERS} workers)",
             f"{'injected kill rate':<28} {_KILL_RATE:.0%}"
             f"  (seed {_SEED}, first attempts only)",
             f"{'fault-free wall':<28} {clean_s * 1e3:9.1f} ms",
             f"{'faulty wall':<28} {faulty_s * 1e3:9.1f} ms"
             f"  ({overhead:.2f}x)",
             f"{'completion under faults':<28} {completed}/{points}"
             f"  ({completion:.0%})",
             f"{'pool rebuilds':<28} "
             f"{faulty.resilience['pool_rebuilds']}",
             f"{'task retries':<28} {faulty.resilience['retries']}",
             f"{'quarantined':<28} "
             f"{faulty.resilience['quarantined']}"]
    write_result("resilience", "\n".join(lines))

    benchmark.extra_info["completion"] = round(completion, 3)
    benchmark.extra_info["recovery_overhead"] = round(overhead, 2)

    write_bench_json("resilience", {
        "explore_points": points,
        "max_workers": _MAX_WORKERS,
        "kill_rate": _KILL_RATE,
        "fault_seed": _SEED,
        "clean_wall_s": clean_s,
        "faulty_wall_s": faulty_s,
        "recovery_overhead": overhead,
        "completed_points": completed,
        "completion_rate": completion,
        "min_completion_rate": _MIN_COMPLETION,
        "pool_rebuilds": faulty.resilience["pool_rebuilds"],
        "retries": faulty.resilience["retries"],
        "quarantined": faulty.resilience["quarantined"],
    })

    assert completion >= _MIN_COMPLETION, \
        f"only {completion:.0%} of points completed under faults"
    if not bench_smoke:
        # At 10% over 40 first attempts the deterministic plan must
        # actually kill something — otherwise the bench measures nothing.
        assert faulty.resilience["pool_rebuilds"] >= 1
