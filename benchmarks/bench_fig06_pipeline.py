"""Fig. 5 / Fig. 6 — the example CIS and its stall-free pipeline timing."""

from repro import units
from repro.sim.chart import pipeline_chart
from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
    run_fig5,
)


def test_fig06_pipeline_timing(benchmark, write_result):
    report = benchmark(run_fig5)

    frame_time = report.frame_time
    t_a = report.analog_stage_delay
    t_d = report.digital_latency
    lines = ["Fig. 6 — balanced-pipeline timing of the Fig. 5 example",
             f"frame time T_FR        {units.format_time(frame_time)}",
             f"analog stage delay T_A {units.format_time(t_a)}",
             f"digital latency T_D    {units.format_time(t_d)}",
             f"3 x T_A + T_D          {units.format_time(3 * t_a + t_d)}",
             "",
             pipeline_chart(build_fig5_stages(), build_fig5_system(),
                            dict(FIG5_MAPPING), frame_rate=30),
             "",
             "energy:",
             report.to_table()]
    write_result("fig06_pipeline", "\n".join(lines))

    benchmark.extra_info["t_a_ms"] = round(t_a / units.ms, 3)
    benchmark.extra_info["t_d_us"] = round(t_d / units.us, 3)

    # Fig. 6's identity: exposure + readout + ADC slots plus the digital
    # window exactly fill the frame budget — the no-stall design point.
    assert abs(3 * t_a + t_d - frame_time) < 1e-12


def test_fig06_cycle_accurate_agrees(benchmark, write_result):
    """The event-driven simulator confirms the analytical T_D."""
    exact = benchmark(lambda: run_fig5(cycle_accurate=True))
    analytical = run_fig5()
    ratio = exact.digital_latency / analytical.digital_latency
    benchmark.extra_info["cycle_accurate_over_analytical"] = round(ratio, 4)
    assert 0.95 < ratio < 1.05
