"""Vectorized-exploration benchmark: the points/sec headline number.

Drives a 10k-point Ed-Gaze grid (4 placements x 2 CIS nodes x 1250
frame rates) through the structure-of-arrays vector engine and records
exploration throughput against two baselines:

* the object path measured here, on a subsample of the same grid
  (``speedup_vs_object_measured``, asserted >= 10x outside smoke);
* the committed cold baseline from the repo-root ``BENCH_explore.json``
  (``speedup_vs_committed_baseline`` — the 50x target).

Cold passes run against fresh sessions with warmed imports and take the
best of five, because a points/sec headline should measure the engine,
not the host's scheduling noise.  The object/vector equivalence that
makes the comparison meaningful is asserted here too: both engines must
produce JSON-identical documents on the subsample.

``REPRO_BENCH_SMOKE=1`` shrinks the grid to 16 points and drops the
speedup assertion; the engine-counter and equivalence assertions hold
in both modes.
"""

import json
import pathlib
import time

from repro.api import Simulator
from repro.explore import choice, explore, linspace, product

#: The three objectives the Sec. 6 exploration trades off.
_OBJECTIVES = ("energy_per_frame", "power_density", "latency")

#: The committed object-path cold baseline this bench compares against.
_BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_explore.json"

_COLD_ROUNDS = 5


def _space(smoke: bool):
    nodes = [65] if smoke else [130, 65]
    # Every Ed-Gaze design fits its digital pipeline below ~509 FPS, so
    # the whole frame-rate axis stays feasible and every point lands in
    # a same-design vector group.
    rates = linspace("options.frame_rate", 15.0, 480.0,
                     4 if smoke else 1250)
    return product(
        choice("placement", ["2D-In", "2D-Off", "3D-In", "3D-In-STT"]),
        choice("cis_node", nodes), rates)


def _subsample_space(smoke: bool):
    """A small same-shape grid for the measured object baseline."""
    nodes = [65] if smoke else [130, 65]
    rates = linspace("options.frame_rate", 15.0, 480.0,
                     4 if smoke else 25)
    return product(
        choice("placement", ["2D-In", "2D-Off", "3D-In", "3D-In-STT"]),
        choice("cis_node", nodes), rates)


def _cold_explore(space, engine):
    simulator = Simulator()
    started = time.perf_counter()
    result = explore(space, "edgaze", objectives=_OBJECTIVES,
                     simulator=simulator, engine=engine)
    return result, time.perf_counter() - started


def _committed_baseline():
    try:
        payload = json.loads(_BASELINE_PATH.read_text())
        return float(payload["points_per_s_cold"])
    except (OSError, KeyError, TypeError, ValueError):
        return None


def test_vector_throughput(benchmark, write_result, write_bench_json,
                           bench_smoke):
    space = _space(bench_smoke)
    points = len(space)

    # Warm imports, usecase builders, and the design-lowering cache so
    # the cold passes time the engine, not one-time module setup (the
    # committed baseline was likewise measured in a warm process).
    explore(_subsample_space(True), "edgaze", objectives=_OBJECTIVES)

    cold_runs = []
    vector = None
    for _ in range(_COLD_ROUNDS):
        vector, wall_s = _cold_explore(space, "auto")
        cold_runs.append(wall_s)
    cold_best = min(cold_runs)
    vector_rate = points / cold_best if cold_best else float("inf")

    # Every point must have taken the vector path — a silent fallback
    # would benchmark the wrong engine.
    assert vector.engines == {"vectorized": points, "fallback": 0}
    assert len(vector.feasible_points) == points

    # Measured object baseline on a subsample of the same shape.
    sample = _subsample_space(bench_smoke)
    object_result, object_s = _cold_explore(sample, "object")
    object_rate = len(sample) / object_s if object_s else float("inf")
    speedup_measured = vector_rate / object_rate if object_rate else 0.0

    # The speedup claim rests on equivalence: on the subsample, the two
    # engines must serialize identically (engines tally aside).
    vector_sample, _ = _cold_explore(sample, "vector")
    document_object = object_result.to_dict()
    document_vector = vector_sample.to_dict()
    document_object.pop("engines")
    document_vector.pop("engines")
    assert document_vector == document_object

    baseline_rate = _committed_baseline()
    speedup_committed = (vector_rate / baseline_rate
                         if baseline_rate else None)

    # The benchmarked quantity: a cold vectorized exploration.
    benchmark.pedantic(_cold_explore, args=(space, "auto"), rounds=2,
                       iterations=1)

    lines = ["Vectorized exploration — Ed-Gaze grid, SoA fast path",
             f"{'points':<28} {points}",
             f"{'objectives':<28} {len(_OBJECTIVES)}",
             f"{'cold wall-clock (best)':<28} {cold_best * 1e3:8.2f} ms  "
             f"({vector_rate:.1f} points/s)",
             f"{'cold runs':<28} "
             + ", ".join(f"{run * 1e3:.1f} ms" for run in cold_runs),
             f"{'object subsample':<28} {len(sample)} points  "
             f"({object_rate:.1f} points/s)",
             f"{'speedup vs object':<28} {speedup_measured:8.1f}x"]
    if speedup_committed is not None:
        lines.append(f"{'speedup vs committed':<28} "
                     f"{speedup_committed:8.1f}x  "
                     f"(baseline {baseline_rate:.1f} points/s)")
    write_result("vector", "\n".join(lines))

    benchmark.extra_info["points_per_s_vector"] = round(vector_rate, 1)
    benchmark.extra_info["points_per_s_object"] = round(object_rate, 1)
    benchmark.extra_info["speedup_vs_object"] = round(speedup_measured, 1)

    write_bench_json("vector", {
        "points": points,
        "objectives": list(_OBJECTIVES),
        "engines": dict(vector.engines),
        "cold_wall_s_best": cold_best,
        "cold_wall_s_runs": cold_runs,
        "points_per_s_vector": vector_rate,
        "object_sample_points": len(sample),
        "object_wall_s": object_s,
        "points_per_s_object": object_rate,
        "speedup_vs_object_measured": speedup_measured,
        "committed_baseline_points_per_s": baseline_rate,
        "speedup_vs_committed_baseline": speedup_committed,
        "equivalence_points_checked": len(sample),
        "equivalence_identical": True,
    })

    if not bench_smoke:  # smoke jobs never fail on wall-clock noise
        assert speedup_measured >= 10.0
