"""Fig. 7 — validation of the energy model against nine silicon chips.

Fig. 7a: estimated vs reported energy per pixel, Pearson correlation and
MAPE.  Fig. 7b-j: the per-chip component breakdowns.
"""

from repro import units
from repro.validation import run_validation


def test_fig07_validation(benchmark, write_result):
    summary = benchmark.pedantic(run_validation, rounds=3, iterations=1)

    lines = [summary.to_table(), "",
             "Fig. 7b-j — per-chip component breakdowns (pJ/px):"]
    for result in summary.results:
        parts = "  ".join(
            f"{category}: {energy / units.pJ:.2f}"
            for category, energy in sorted(
                result.breakdown_per_pixel().items()))
        lines.append(f"  {result.chip.name:<12} {parts}")
    lines += ["", "Per-component errors vs published breakdowns "
                  "(paper quotes 0.4% JSSC'19 PE, 12.4% JSSC'21-I pixel, "
                  "33.3% TCAS-I'22 pixel):"]
    for result in summary.results:
        errors = result.breakdown_errors()
        if not errors:
            continue
        parts = "  ".join(f"{category}: {100 * error:.1f}%"
                          for category, error in sorted(errors.items()))
        lines.append(f"  {result.chip.name:<12} {parts}")
    write_result("fig07_validation", "\n".join(lines))

    mape = summary.mean_absolute_percentage_error
    pearson = summary.pearson_correlation
    benchmark.extra_info["mape_pct"] = round(100 * mape, 1)
    benchmark.extra_info["pearson"] = round(pearson, 4)
    benchmark.extra_info["paper_mape_pct"] = 7.5
    benchmark.extra_info["paper_pearson"] = 0.9999

    # Paper headline: MAPE 7.5 %, Pearson 0.9999, over a range spanning
    # several orders of magnitude.
    assert mape < 0.15
    assert pearson > 0.999
    assert summary.energy_span_orders > 3.0
