"""Session-reuse benchmark: disk-tier cache warmth and pool reuse.

Two claims of the session performance subsystem, measured end to end:

1. **Disk cache** — a 100-point exploration whose evaluations are
   genuinely expensive (cycle-exact validation of designs with
   fractional memory capacities, which the event-driven simulator
   correctly routes to the reference per-cycle loop) is re-served from
   a ``cache_dir`` by a *fresh* session at >= 5x the cold wall time.
2. **Pool reuse** — repeated ``run_many`` batches through one session
   (persistent executor, workers warm) beat creating a session per
   batch by >= 1.5x in process mode, where pool startup is forked
   processes rather than threads.

Emits ``benchmarks/results/BENCH_session_reuse.json``.  Under
``REPRO_BENCH_SMOKE=1`` the workloads shrink and the wall-clock
assertions are skipped; the structural assertions (identical results,
all-hits warm batches, no pool touched when warm) always run.
"""

import time

from repro import units
from repro.api import Design, SimOptions, Simulator
from repro.explore import explore
from repro.explore.space import choice, product
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import DigitalMemory, FIFO
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.usecases import UseCaseConfig, build_rhythmic
from repro.usecases.fig5 import build_fig5_design

#: Acceptance bars (full mode only; smoke skips wall-clock asserts).
_MIN_DISK_SPEEDUP = 5.0
_MIN_POOL_SPEEDUP = 1.5

#: Full workload: 13 distinct designs x 8 frame rates = 104 points.
_FULL_SIZES = list(range(32, 45))
_FULL_RATES = [10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0]
#: Smoke workload: tiny frames, 4 points, no timing claims.
_SMOKE_SIZES = [12, 16]
_SMOKE_RATES = [10.0, 20.0]

_FULL_POOL_ROUNDS = 5
_SMOKE_POOL_ROUNDS = 2


def _build_validation_design(size: int) -> Design:
    """A streaming pipeline whose cycle-exact validation is expensive.

    The mid buffer models 10-bit pixels packed into a byte-addressed
    SRAM, so its pixel capacity is fractional — one of the non-integral
    occupancy configurations the event-driven simulator hands to the
    reference per-cycle loop (O(cycles x stages x depth)).  Exactly the
    regime where caching evaluations across sessions pays.
    """
    source_name, denoise_name, sharpen_name = "Input", "Denoise", "Sharpen"
    from repro.sw.stage import PixelInput, ProcessStage

    source = PixelInput((size, size, 1), name=source_name)
    denoise = ProcessStage(denoise_name, input_size=(size, size, 1),
                           kernel=(1, 1, 1), stride=(1, 1, 1))
    sharpen = ProcessStage(sharpen_name, input_size=(size, size, 1),
                           kernel=(1, 1, 1), stride=(1, 1, 1))
    denoise.set_input_stage(source)
    sharpen.set_input_stage(denoise)

    system = SensorSystem(f"Validate-{size}",
                          layers=[Layer(SENSOR_LAYER, 65)])
    pixels = AnalogArray("Pixels")
    pixels.add_component(ActivePixelSensor(), (size, size))
    adcs = AnalogArray("ADCs")
    adcs.add_component(ColumnADC(), (1, size))
    pixels.set_output(adcs)
    in_fifo = FIFO("InFifo", size=(1, 4 * size), write_energy_per_word=0,
                   read_energy_per_word=0, num_read_ports=4,
                   num_write_ports=4)
    adcs.set_output(in_fifo)
    mid = DigitalMemory("Mid", capacity_pixels=2 * size * 8 / 10 + 0.4,
                        write_energy_per_word=0.2 * units.pJ,
                        read_energy_per_word=0.2 * units.pJ,
                        num_read_ports=4, num_write_ports=4)
    first = ComputeUnit("DenoisePE", input_pixels_per_cycle=(1, 1),
                        output_pixels_per_cycle=(1, 1),
                        energy_per_cycle=1 * units.pJ, num_stages=3)
    second = ComputeUnit("SharpenPE", input_pixels_per_cycle=(1, 1),
                         output_pixels_per_cycle=(1, 1),
                         energy_per_cycle=1 * units.pJ, num_stages=2)
    first.set_input(in_fifo).set_output(mid)
    second.set_input(mid)
    second.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(in_fifo)
    system.add_memory(mid)
    system.add_compute_unit(first)
    system.add_compute_unit(second)
    system.set_pixel_array_geometry(size, size)
    return Design([source, denoise, sharpen], system,
                  {source_name: "Pixels", denoise_name: "DenoisePE",
                   sharpen_name: "SharpenPE"}, name=f"Validate-{size}")


def _explore_once(space, cache_dir):
    """One exploration through a fresh session over ``cache_dir``."""
    with Simulator(SimOptions(cycle_accurate=True),
                   cache_dir=cache_dir) as session:
        started = time.perf_counter()
        result = explore(space, _build_validation_design,
                         objectives=("energy_per_frame",),
                         simulator=session, annotate=False)
        elapsed = time.perf_counter() - started
        return result, elapsed, session.cache_info()


def _point_energies(result):
    return [(tuple(sorted(point.params.items())),
             point.metrics.get("energy_per_frame"))
            for point in result.points]


def _pool_rounds(items, rounds, reuse: bool):
    """Wall time of ``rounds`` uncached process-mode batches."""
    started = time.perf_counter()
    if reuse:
        with Simulator(cache=False, executor="process",
                       max_workers=2) as session:
            for _ in range(rounds):
                results = session.run_many(items)
                assert all(result.ok for result in results)
    else:
        for _ in range(rounds):
            with Simulator(cache=False, executor="process",
                           max_workers=2) as session:
                results = session.run_many(items)
                assert all(result.ok for result in results)
    return time.perf_counter() - started


def test_session_reuse_speedups(tmp_path, benchmark, write_result,
                                write_bench_json, bench_smoke):
    sizes = _SMOKE_SIZES if bench_smoke else _FULL_SIZES
    rates = _SMOKE_RATES if bench_smoke else _FULL_RATES
    space = product(choice("size", sizes),
                    choice("options.frame_rate", rates))

    # --- part 1: cold vs warm-from-disk exploration -----------------------
    cache_dir = tmp_path / "result-cache"
    cold_result, cold_s, cold_info = _explore_once(space, cache_dir)
    warm_result, warm_s, warm_info = _explore_once(space, cache_dir)

    assert len(cold_result.points) == len(sizes) * len(rates)
    assert cold_result.infeasible_points == []
    # The warm session recomputed nothing and produced identical points.
    assert _point_energies(warm_result) == _point_energies(cold_result)
    assert warm_info.disk_hits == len(warm_result.points)
    assert warm_info.disk_entries == len(warm_result.points)

    disk_speedup = cold_s / warm_s if warm_s else float("inf")

    # The benchmarked quantity: a warm-from-disk exploration.
    benchmark.pedantic(_explore_once, args=(space, cache_dir),
                       rounds=3 if bench_smoke else 2, iterations=1)

    # --- part 2: pool reuse across repeated batches -----------------------
    rounds = _SMOKE_POOL_ROUNDS if bench_smoke else _FULL_POOL_ROUNDS
    designs = [build_fig5_design(), build_rhythmic(UseCaseConfig("2D-In",
                                                                 65))]
    items = [(design, SimOptions(frame_rate=rate))
             for design in designs for rate in (20.0, 30.0, 40.0)]
    fresh_s = _pool_rounds(items, rounds, reuse=False)
    reused_s = _pool_rounds(items, rounds, reuse=True)
    pool_speedup = fresh_s / reused_s if reused_s else float("inf")

    lines = ["Session reuse — persistent pools + two-tier result cache",
             "",
             f"{'explore points':<30} {len(cold_result.points)}"
             f"  ({len(sizes)} designs x {len(rates)} rates, cycle-exact)",
             f"{'cold explore wall-clock':<30} {cold_s * 1e3:9.1f} ms",
             f"{'warm-from-disk wall-clock':<30} {warm_s * 1e3:9.1f} ms"
             f"  ({disk_speedup:.1f}x)",
             f"{'disk entries':<30} {warm_info.disk_entries}",
             "",
             f"{'process batches':<30} {rounds} rounds x "
             f"{len(items)} jobs",
             f"{'fresh session per batch':<30} {fresh_s * 1e3:9.1f} ms",
             f"{'one session, pool reused':<30} {reused_s * 1e3:9.1f} ms"
             f"  ({pool_speedup:.2f}x)"]
    write_result("session_reuse", "\n".join(lines))

    benchmark.extra_info["disk_speedup"] = round(disk_speedup, 2)
    benchmark.extra_info["pool_speedup"] = round(pool_speedup, 2)

    write_bench_json("session_reuse", {
        "explore_points": len(cold_result.points),
        "distinct_designs": len(sizes),
        "cold_explore_wall_s": cold_s,
        "warm_disk_explore_wall_s": warm_s,
        "disk_speedup": disk_speedup,
        "disk_entries": warm_info.disk_entries,
        "disk_hits_warm": warm_info.disk_hits,
        "cold_cache_misses": cold_info.misses,
        "pool_rounds": rounds,
        "pool_batch_jobs": len(items),
        "pool_fresh_wall_s": fresh_s,
        "pool_reused_wall_s": reused_s,
        "pool_speedup": pool_speedup,
        "min_disk_speedup": _MIN_DISK_SPEEDUP,
        "min_pool_speedup": _MIN_POOL_SPEEDUP,
    })

    # Wall-clock acceptance bars (smoke jobs never fail on timing noise).
    if not bench_smoke:
        assert disk_speedup >= _MIN_DISK_SPEEDUP, \
            f"warm-from-disk explore only {disk_speedup:.2f}x faster"
        assert pool_speedup >= _MIN_POOL_SPEEDUP, \
            f"pool reuse only {pool_speedup:.2f}x faster"
