"""Serve-daemon benchmark: warm vs cold submits through the HTTP API.

The daemon's pitch is that every client shares one session — the second
submitter of an exploration pays cache-probe prices, not simulation
prices.  This bench measures that end to end *through the daemon*: a
:class:`repro.serve.BackgroundServer` is driven over real HTTP with
:class:`repro.serve.ServeClient`, submitting the same cycle-exact
exploration spec repeatedly.

Measured quantities (emitted as ``BENCH_serve.json``):

1. **Cold submit latency** — submit-to-done wall time of the first
   exploration (every point simulated cycle-exactly).
2. **Warm submit latency** — the identical resubmit, served entirely
   from the shared result cache; asserted >= ``_MIN_WARM_SPEEDUP``
   faster in full mode.
3. **Warm throughput** — jobs/sec over a burst of identical explore
   jobs, the daemon's steady-state serving rate for repeat queries.

Under ``REPRO_BENCH_SMOKE=1`` the space shrinks and wall-clock
assertions are skipped; the structural assertions (all-hits warm jobs,
identical cold/warm metrics) always run.
"""

import pathlib
import sys
import time

from repro.api import register_usecase
from repro.serve import BackgroundServer

# The harness runs under --import-mode=importlib, so sibling bench
# modules are not importable without the directory on sys.path.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from bench_session_reuse import _build_validation_design  # noqa: E402

#: Acceptance bar (full mode only): warm submits through the daemon
#: must beat cold ones by this factor.
_MIN_WARM_SPEEDUP = 3.0

#: Full workload: 4 cycle-exact designs x 3 frame rates = 12 points.
_FULL_SIZES = [32, 33, 34, 35]
_FULL_RATES = [10.0, 20.0, 30.0]
_FULL_BURST = 16
#: Smoke workload: 2 tiny points, no timing claims.
_SMOKE_SIZES = [12]
_SMOKE_RATES = [10.0, 20.0]
_SMOKE_BURST = 4

#: Fast polling so the warm-side floor is cache latency, not poll lag.
_POLL_S = 0.01


def _spec(sizes, rates):
    return {
        "schema": "repro.explore-spec/1",
        "name": "serve-bench",
        "usecase": "serve-bench-validate",
        "space": {"product": [
            {"name": "size", "values": list(sizes)},
            {"name": "options.frame_rate", "values": list(rates)},
        ]},
        "objectives": ["energy_per_frame"],
        "options": {"cycle_accurate": True},
    }


def _submit_and_wait(client, spec):
    """Submit-to-done wall time of one exploration job over HTTP."""
    started = time.perf_counter()
    job = client.submit(spec)
    done = client.wait(job["id"], timeout=600.0, poll_s=_POLL_S)
    assert done["state"] == "done", done
    return done, time.perf_counter() - started


def test_serve_warm_submit_speedup(benchmark, write_result,
                                   write_bench_json, bench_smoke):
    register_usecase("serve-bench-validate", _build_validation_design)
    sizes = _SMOKE_SIZES if bench_smoke else _FULL_SIZES
    rates = _SMOKE_RATES if bench_smoke else _FULL_RATES
    burst = _SMOKE_BURST if bench_smoke else _FULL_BURST
    spec = _spec(sizes, rates)
    total = len(sizes) * len(rates)

    with BackgroundServer(workers=2, chunk_size=4) as server:
        client = server.client(timeout=120.0)

        cold, cold_s = _submit_and_wait(client, spec)
        assert cold["progress"] == {"total": total, "completed": total,
                                    "cache_hits": 0}
        warm, warm_s = _submit_and_wait(client, spec)
        # Every warm point came from the shared session cache.
        assert warm["progress"]["cache_hits"] == total
        cold_points = client.result(cold["id"])["result"]["points"]
        warm_points = client.result(warm["id"])["result"]["points"]
        assert [point["metrics"] for point in warm_points] \
            == [point["metrics"] for point in cold_points]

        # Steady-state serving rate: a burst of identical warm jobs.
        started = time.perf_counter()
        job_ids = [client.submit(spec)["id"] for _ in range(burst)]
        for job_id in job_ids:
            done = client.wait(job_id, timeout=600.0, poll_s=_POLL_S)
            assert done["state"] == "done"
            assert done["progress"]["cache_hits"] == total
        burst_s = time.perf_counter() - started
        jobs_per_s = burst / burst_s if burst_s else float("inf")

        # The benchmarked quantity: one warm submit through the daemon.
        benchmark.pedantic(_submit_and_wait, args=(client, spec),
                           rounds=2 if bench_smoke else 3, iterations=1)

        stats = client.stats()

    warm_speedup = cold_s / warm_s if warm_s else float("inf")

    lines = ["repro serve — shared-session daemon, measured over HTTP",
             "",
             f"{'explore points':<30} {total}"
             f"  ({len(sizes)} designs x {len(rates)} rates, cycle-exact)",
             f"{'cold submit-to-done':<30} {cold_s * 1e3:9.1f} ms",
             f"{'warm submit-to-done':<30} {warm_s * 1e3:9.1f} ms"
             f"  ({warm_speedup:.1f}x)",
             f"{'warm burst':<30} {burst} jobs in "
             f"{burst_s * 1e3:.1f} ms  ({jobs_per_s:.1f} jobs/s)",
             f"{'session cache hits':<30} {stats['cache']['hits']}"]
    write_result("serve", "\n".join(lines))

    benchmark.extra_info["warm_speedup"] = round(warm_speedup, 2)
    benchmark.extra_info["warm_jobs_per_s"] = round(jobs_per_s, 2)

    write_bench_json("serve", {
        "explore_points": total,
        "distinct_designs": len(sizes),
        "cold_submit_wall_s": cold_s,
        "warm_submit_wall_s": warm_s,
        "warm_speedup": warm_speedup,
        "warm_burst_jobs": burst,
        "warm_burst_wall_s": burst_s,
        "warm_jobs_per_s": jobs_per_s,
        "session_cache_hits": stats["cache"]["hits"],
        "min_warm_speedup": _MIN_WARM_SPEEDUP,
    })

    # Wall-clock acceptance bar (smoke jobs never fail on timing noise).
    if not bench_smoke:
        assert warm_speedup >= _MIN_WARM_SPEEDUP, \
            f"warm submits only {warm_speedup:.2f}x faster than cold"
