"""Exploration-engine benchmark: points/sec through ``run_many``.

Drives the Ed-Gaze product space (Fig. 9b), widened by a frame-rate
axis to a few hundred points, through :func:`repro.explore.explore`
twice against one simulator session — a cold pass that simulates every
distinct design and a warm pass that must be served entirely from the
content-hash result cache — and records exploration throughput plus
the cache hit rate as machine-readable ``BENCH_explore.json``.

The engine is pinned to ``"object"`` so this baseline keeps measuring
the per-point path as the space grows; ``bench_vector.py`` measures
the vectorized fast path against it.

``REPRO_BENCH_SMOKE=1`` shrinks the space to one CIS node and two
frame rates and drops the wall-clock assertions; cache-effectiveness
claims are asserted structurally in both modes.
"""

import time

from repro.api import Simulator
from repro.explore import choice, explore, linspace, product

#: The three objectives the Sec. 6 exploration trades off.
_OBJECTIVES = ("energy_per_frame", "power_density", "latency")


def _space(smoke: bool):
    nodes = [65] if smoke else [130, 65]
    # Every Ed-Gaze design fits its digital pipeline below ~509 FPS, so
    # the whole frame-rate axis stays feasible.
    rates = linspace("options.frame_rate", 15.0, 480.0,
                     2 if smoke else 32)
    return product(
        choice("placement", ["2D-In", "2D-Off", "3D-In", "3D-In-STT"]),
        choice("cis_node", nodes), rates)


def _explore_fresh(space):
    return explore(space, "edgaze", objectives=_OBJECTIVES,
                   engine="object")


def test_explore_throughput(benchmark, write_result, write_bench_json,
                            bench_smoke):
    space = _space(bench_smoke)
    simulator = Simulator()

    started = time.perf_counter()
    cold = explore(space, "edgaze", objectives=_OBJECTIVES,
                   simulator=simulator, engine="object")
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = explore(space, "edgaze", objectives=_OBJECTIVES,
                   simulator=simulator, engine="object")
    warm_s = time.perf_counter() - started
    warm_stats = simulator.last_batch_stats

    # The benchmarked quantity: a cold exploration with a fresh session.
    benchmark.pedantic(_explore_fresh, args=(space,), rounds=3,
                       iterations=1)

    points = len(cold.points)
    assert points == len(space)
    assert len(cold.feasible_points) == points
    assert len(cold.frontier()) >= 1
    assert all(point.bottleneck is not None
               for point in cold.feasible_points)
    # Warm pass: identical result, entirely cache-served, no pool.
    assert warm.to_json() == cold.to_json()
    assert warm_stats.cache_hits == warm_stats.unique
    assert warm_stats.workers_used == 0

    cache = simulator.cache_info()
    hit_rate = cache.hits / (cache.hits + cache.misses)
    cold_rate = points / cold_s if cold_s else float("inf")
    warm_rate = points / warm_s if warm_s else float("inf")

    lines = ["Exploration engine — Ed-Gaze space through run_many",
             f"{'points':<28} {points}",
             f"{'objectives':<28} {len(_OBJECTIVES)}",
             f"{'frontier size':<28} {len(cold.frontier())}",
             f"{'cold wall-clock':<28} {cold_s * 1e3:8.2f} ms  "
             f"({cold_rate:.1f} points/s)",
             f"{'warm wall-clock':<28} {warm_s * 1e3:8.2f} ms  "
             f"({warm_rate:.1f} points/s)",
             f"{'cache hit rate':<28} {hit_rate:.2f}"]
    write_result("explore", "\n".join(lines))

    benchmark.extra_info["points_per_s_cold"] = round(cold_rate, 1)
    benchmark.extra_info["points_per_s_warm"] = round(warm_rate, 1)
    benchmark.extra_info["cache_hit_rate"] = round(hit_rate, 3)

    write_bench_json("explore", {
        "points": points,
        "objectives": list(_OBJECTIVES),
        "frontier_size": len(cold.frontier()),
        "infeasible_points": len(cold.infeasible_points),
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "points_per_s_cold": cold_rate,
        "points_per_s_warm": warm_rate,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "cache_hit_rate": hit_rate,
    })

    if not bench_smoke:  # smoke jobs never fail on wall-clock noise
        # A warm exploration re-simulates nothing; it must not be slower
        # than the cold pass by more than measurement noise.
        assert warm_s <= cold_s + 0.25
