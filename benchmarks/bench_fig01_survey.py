"""Fig. 1 — share of imaging / computational / stacked CIS papers, 2000-2022."""

from repro.survey import percentages_by_year


def _series():
    return percentages_by_year()


def test_fig01_survey(benchmark, write_result):
    rows = benchmark(_series)

    lines = ["Fig. 1 — Normalized percentage of CIS design styles per year",
             f"{'year':>6} {'imaging%':>10} {'computational%':>15} "
             f"{'stacked%':>10}"]
    for row in rows:
        lines.append(f"{row['year']:>6} {row['imaging']:>10.1f} "
                     f"{row['computational']:>15.1f} "
                     f"{row['stacked_computational']:>10.1f}")
    write_result("fig01_survey", "\n".join(lines))

    first, last = rows[0], rows[-1]
    benchmark.extra_info["computational_2000_pct"] = round(
        first["computational"] + first["stacked_computational"], 1)
    benchmark.extra_info["computational_2022_pct"] = round(
        last["computational"] + last["stacked_computational"], 1)

    # Paper shape: increasingly more CIS designs are computational.
    assert (last["computational"] + last["stacked_computational"]
            > first["computational"] + first["stacked_computational"])
    assert last["stacked_computational"] > 0
    assert first["stacked_computational"] == 0
