"""Fig. 9b — Ed-Gaze: 2D-In vs 2D-Off vs 3D-In vs 3D-In-STT energy."""

from repro import units
from repro.energy.report import Category
from repro.usecases import edgaze_configs, run_edgaze

_CATEGORIES = (Category.SEN, Category.MEM_D, Category.COMP_D,
               Category.MIPI, Category.UTSV)


def _run_grid():
    return {cfg.label: run_edgaze(cfg) for cfg in edgaze_configs()}


def test_fig09b_edgaze(benchmark, write_result):
    reports = benchmark.pedantic(_run_grid, rounds=3, iterations=1)

    header = f"{'config':<20} {'total uJ':>9} " + " ".join(
        f"{c.value:>9}" for c in _CATEGORIES)
    lines = ["Fig. 9b — Ed-Gaze energy per frame (uJ)", header]
    for label, report in reports.items():
        cells = " ".join(
            f"{report.category_energy(c) / units.uJ:>9.2f}"
            for c in _CATEGORIES)
        lines.append(f"{label:<20} {report.total_energy / units.uJ:>9.1f} "
                     f"{cells}")

    in65 = reports["2D-In (65nm)"]
    in130 = reports["2D-In (130nm)"]
    mem_share = (in65.category_energy(Category.MEM_D)
                 / in65.total_energy)
    stt_savings = []
    for node in (130, 65):
        sram = reports[f"3D-In ({node}nm)"].total_energy
        stt = reports[f"3D-In-STT ({node}nm)"].total_energy
        stt_savings.append(1 - stt / sram)

    lines += ["",
              f"2D-In(65nm) / 2D-Off(65nm): "
              f"{in65.total_energy / reports['2D-Off (65nm)'].total_energy:.2f}x"
              f" (in-sensor loses for compute-dominant workloads)",
              f"2D-In 65nm vs 130nm: "
              f"{in65.total_energy / in130.total_energy:.2f}x "
              f"(65 nm leakage anomaly)",
              f"MEM share of 2D-In(65nm): {100 * mem_share:.1f}% "
              f"(paper: 71.3%)",
              f"3D-In-STT saving vs 3D-In: "
              f"{100 * stt_savings[0]:.1f}% / {100 * stt_savings[1]:.1f}% "
              f"(paper: 68.5% / 69.1%)"]
    write_result("fig09b_edgaze", "\n".join(lines))

    benchmark.extra_info["mem_share_2din_65_pct"] = round(
        100 * mem_share, 1)
    benchmark.extra_info["stt_saving_pct"] = round(
        100 * stt_savings[1], 1)

    # Paper shapes (Findings 1 and 2).
    for node in (130, 65):
        assert (reports[f"2D-In ({node}nm)"].total_energy
                > reports[f"2D-Off ({node}nm)"].total_energy)
        assert (reports[f"3D-In ({node}nm)"].total_energy
                < reports[f"2D-In ({node}nm)"].total_energy)
    assert in65.total_energy > in130.total_energy
    assert 0.55 < mem_share < 0.90
    assert all(0.35 < s < 0.85 for s in stt_savings)
