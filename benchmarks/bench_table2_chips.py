"""Table 2 — the nine validation chips and their design diversity."""

from repro import units
from repro.validation import ALL_CHIPS


def _inventory():
    rows = []
    for chip in ALL_CHIPS:
        stages, system, mapping = chip.build()
        rows.append({
            "name": chip.name,
            "node": chip.process_node,
            "stacked": "Yes" if system.is_stacked else "No",
            "pixels": chip.num_pixels,
            "fps": chip.frame_rate,
            "analog_arrays": len(system.analog_arrays),
            "memories": len(system.memories),
            "compute_units": len(system.compute_units),
            "reported_pj_px": chip.reported_energy_per_pixel / units.pJ,
        })
    return rows


def test_table2_chip_inventory(benchmark, write_result):
    rows = benchmark(_inventory)

    lines = ["Table 2 — validation chip inventory",
             f"{'chip':<12} {'node':<10} {'stacked':<8} {'pixels':>9} "
             f"{'FPS':>5} {'AFAs':>5} {'mems':>5} {'PEs':>4} "
             f"{'reported pJ/px':>15}"]
    for row in rows:
        lines.append(
            f"{row['name']:<12} {row['node']:<10} {row['stacked']:<8} "
            f"{row['pixels']:>9} {row['fps']:>5.0f} "
            f"{row['analog_arrays']:>5} {row['memories']:>5} "
            f"{row['compute_units']:>4} {row['reported_pj_px']:>15.2f}")
    write_result("table2_chips", "\n".join(lines))

    benchmark.extra_info["num_chips"] = len(rows)

    # Table 2's diversity claims: nine chips, 2D and 3D, analog-only and
    # digital-capable, across a wide node range.
    assert len(rows) == 9
    assert sum(1 for r in rows if r["stacked"] == "Yes") == 2
    assert any(r["compute_units"] == 0 for r in rows)
    assert any(r["compute_units"] > 0 for r in rows)
    assert len({r["node"] for r in rows}) >= 5
