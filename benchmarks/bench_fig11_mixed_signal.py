"""Fig. 11 — mixed-signal vs fully-digital in-sensor Ed-Gaze energy."""

from repro import units
from repro.energy.report import Category
from repro.usecases import UseCaseConfig, run_edgaze, run_edgaze_mixed

_CATEGORIES = (Category.SEN, Category.MEM_D, Category.COMP_D,
               Category.MEM_A, Category.COMP_A, Category.MIPI)


def _run_pairs():
    pairs = {}
    for node in (130, 65):
        pairs[node] = (run_edgaze(UseCaseConfig("2D-In", node)),
                       run_edgaze_mixed(node))
    return pairs


def test_fig11_mixed_signal(benchmark, write_result):
    pairs = benchmark.pedantic(_run_pairs, rounds=3, iterations=1)

    header = f"{'config':<24} {'total uJ':>9} " + " ".join(
        f"{c.value:>9}" for c in _CATEGORIES)
    lines = ["Fig. 11 — mixed-signal vs fully-digital Ed-Gaze (uJ)", header]
    savings = {}
    for node, (digital, mixed) in pairs.items():
        for label, report in ((f"2D-In ({node}nm)", digital),
                              (f"2D-In-Mixed ({node}nm)", mixed)):
            cells = " ".join(
                f"{report.category_energy(c) / units.uJ:>9.2f}"
                for c in _CATEGORIES)
            lines.append(
                f"{label:<24} {report.total_energy / units.uJ:>9.1f} "
                f"{cells}")
        savings[node] = 1 - mixed.total_energy / digital.total_energy
    lines += ["",
              f"mixed-signal saving @130nm: {100 * savings[130]:.1f}% "
              f"(paper: 38.8%)",
              f"mixed-signal saving @65nm:  {100 * savings[65]:.1f}% "
              f"(paper: 77.1%)"]
    write_result("fig11_mixed_signal", "\n".join(lines))

    benchmark.extra_info["saving_130nm_pct"] = round(100 * savings[130], 1)
    benchmark.extra_info["saving_65nm_pct"] = round(100 * savings[65], 1)

    # Paper shapes (Finding 3): analog beats digital for the first stages,
    # with the larger win at the leaky 65 nm node, driven by SEN (no ADCs)
    # and MEM-D (no SRAM frame buffer) reductions.
    assert savings[130] > 0
    assert savings[65] > savings[130]
    for node, (digital, mixed) in pairs.items():
        assert (mixed.category_energy(Category.SEN)
                < digital.category_energy(Category.SEN))
        assert (mixed.category_energy(Category.MEM_D)
                < digital.category_energy(Category.MEM_D))
