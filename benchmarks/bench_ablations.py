"""Ablations of the design choices the model rests on.

Each ablation switches off (or sweeps) one modeling decision DESIGN.md
calls out and shows which paper finding depends on it:

* frame-buffer power-gating — the no-gating constraint (duty_alpha = 1)
  is what makes 65 nm 2D-In lose to 130 nm (Finding 1);
* ROI compression — Finding 1's in-vs-off crossover moves with the data
  volume the encoder removes;
* exposure-slot count — the balanced-pipeline delay split (Sec. 4.1)
  feeds the ADC sampling rate and hence the FoM energy;
* explicit-vs-FoM ADC energy — the Fig. 7g/7h mismatch mechanism.
"""

from repro import simulate, units
from repro.energy.report import Category
from repro.sim.simulator import simulate as _simulate
from repro.usecases import UseCaseConfig, run_edgaze
from repro.usecases.edgaze import build_edgaze
from repro.usecases.fig5 import (
    FIG5_MAPPING,
    build_fig5_stages,
    build_fig5_system,
)
from repro.usecases.rhythmic import build_rhythmic


def _edgaze_with_gated_frame_buffer(node, duty_alpha):
    stages, system, mapping = build_edgaze(UseCaseConfig("2D-In", node))
    system.find_unit("FrameBuffer").duty_alpha = duty_alpha
    system.find_unit("DNNBuffer").duty_alpha = duty_alpha
    return _simulate(stages, system, mapping, frame_rate=30)


def test_ablation_frame_buffer_gating(benchmark, write_result):
    """Finding 1's 65nm>130nm inversion requires the no-gating constraint."""

    def run():
        grid = {}
        for node in (130, 65):
            for alpha in (1.0, 0.1):
                grid[(node, alpha)] = _edgaze_with_gated_frame_buffer(
                    node, alpha)
        return grid

    grid = benchmark.pedantic(run, rounds=3, iterations=1)

    lines = ["Ablation — Ed-Gaze 2D-In with/without frame-buffer gating",
             f"{'node':>6} {'duty':>6} {'total uJ':>10} {'MEM-D uJ':>10}"]
    for (node, alpha), report in grid.items():
        lines.append(f"{node:>6} {alpha:>6.1f} "
                     f"{report.total_energy / units.uJ:>10.1f} "
                     f"{report.category_energy(Category.MEM_D) / units.uJ:>10.1f}")
    constrained = (grid[(65, 1.0)].total_energy
                   > grid[(130, 1.0)].total_energy)
    gated = (grid[(65, 0.1)].total_energy
             < grid[(130, 0.1)].total_energy)
    lines += ["",
              f"with duty=1.0 (paper's constraint): 65nm worse than 130nm "
              f"-> {constrained}",
              f"with duty=0.1 (hypothetical gating): 65nm better again "
              f"-> {gated}"]
    write_result("ablation_frame_buffer_gating", "\n".join(lines))

    # The inversion exists if and only if the buffer cannot be gated.
    assert constrained
    assert gated


def _rhythmic_with_roi(compression):
    config = UseCaseConfig("2D-In", 130)
    stages, system, mapping = build_rhythmic(config)
    stages[1].output_compression = compression
    return _simulate(stages, system, mapping, frame_rate=30)


def test_ablation_roi_crossover(benchmark, write_result):
    """Finding 1: in-sensor pays only while the encoder removes data."""

    def run():
        off = None
        inside = {}
        from repro.usecases import run_rhythmic
        off = run_rhythmic(UseCaseConfig("2D-Off", 130))
        for compression in (0.25, 0.5, 0.75, 1.0):
            inside[compression] = _rhythmic_with_roi(compression)
        return off, inside

    off, inside = benchmark.pedantic(run, rounds=3, iterations=1)

    lines = ["Ablation — Rhythmic 2D-In saving vs ROI compression (130nm)",
             f"{'ROI out fraction':>18} {'total uJ':>10} {'saving%':>9}"]
    savings = {}
    for compression, report in inside.items():
        saving = 1 - report.total_energy / off.total_energy
        savings[compression] = saving
        lines.append(f"{compression:>18.2f} "
                     f"{report.total_energy / units.uJ:>10.1f} "
                     f"{100 * saving:>9.1f}")
    write_result("ablation_roi_crossover", "\n".join(lines))

    # Saving shrinks monotonically as the encoder removes less data, and
    # flips negative when it removes nothing (pure overhead).
    ordered = [savings[c] for c in sorted(savings)]
    assert ordered == sorted(ordered, reverse=True)
    assert savings[0.25] > 0
    assert savings[1.0] < 0


def test_ablation_exposure_slots(benchmark, write_result):
    """The Sec. 4.1 delay split: more analog slots squeeze each stage."""

    def run():
        results = {}
        for slots in (0, 1, 2):
            report = simulate(build_fig5_stages(), build_fig5_system(),
                              dict(FIG5_MAPPING), frame_rate=30,
                              exposure_slots=slots)
            results[slots] = report
        return results

    results = benchmark.pedantic(run, rounds=3, iterations=1)

    lines = ["Ablation — exposure slots vs inferred analog delay (Fig. 5)",
             f"{'slots':>6} {'T_A (ms)':>10} {'SEN (nJ)':>10}"]
    for slots, report in results.items():
        lines.append(
            f"{slots:>6} "
            f"{report.analog_stage_delay / units.ms:>10.2f} "
            f"{report.category_energy(Category.SEN) / units.nJ:>10.2f}")
    write_result("ablation_exposure_slots", "\n".join(lines))

    # More slots always shrink the per-stage delay budget.
    assert (results[0].analog_stage_delay
            > results[1].analog_stage_delay
            > results[2].analog_stage_delay)


def test_ablation_adc_energy_source(benchmark, write_result):
    """FoM-survey vs explicit ADC energy: the Fig. 7g/7h mismatch knob."""
    from repro.validation.chips.jssc21_ii import JSSC21_II

    def run():
        explicit = JSSC21_II.simulate()
        stages, system, mapping = JSSC21_II.build()
        # Swap the calibrated explicit conversion energy for the survey.
        from repro.hw.analog.array import AnalogArray
        from repro.hw.analog.components import ColumnADC
        adc_array = system.find_unit("ADCArray")
        adc_array._entries = []
        adc_array.add_component(ColumnADC(bits=10), (1, 320))
        from repro.hw.interface import Interface
        system.set_offchip_interface(Interface("pads", 0.0))
        fom_based = _simulate(stages, system, mapping,
                              frame_rate=JSSC21_II.frame_rate)
        return explicit, fom_based

    explicit, fom_based = benchmark.pedantic(run, rounds=3, iterations=1)

    pixels = JSSC21_II.num_pixels
    lines = ["Ablation — JSSC'21-II ADC energy: explicit vs FoM survey",
             f"explicit:   "
             f"{explicit.energy_per_pixel(pixels) / units.pJ:6.1f} pJ/px",
             f"FoM survey: "
             f"{fom_based.energy_per_pixel(pixels) / units.pJ:6.1f} pJ/px",
             "",
             "The gap is the Sec. 5 error mechanism: absent detailed",
             "circuit parameters, the survey median under/over-estimates",
             "design-specific converters (paper: 31.7% ADC error on 7g)."]
    write_result("ablation_adc_energy_source", "\n".join(lines))

    ratio = (fom_based.energy_per_pixel(pixels)
             / explicit.energy_per_pixel(pixels))
    # The two estimates differ materially but stay the same order.
    assert 0.1 < ratio < 1.0
