"""Extension — the Sec. 6.2 thermal loop the paper leaves to future work.

Not a paper figure: this bench regenerates the energy → power-density →
temperature → low-light-SNR table that quantifies the thermal-noise
argument behind Finding 2.
"""

from repro import units
from repro.noise import (
    FunctionalPixel,
    imaging_snr_at_operating_point,
    thermal_operating_point,
)
from repro.usecases import UseCaseConfig, run_edgaze
from repro.usecases.edgaze import build_edgaze


def _run():
    pixel = FunctionalPixel(dark_current_e_per_s=2000.0)
    rows = {}
    for placement in ("2D-Off", "2D-In", "3D-In"):
        config = UseCaseConfig(placement, 65)
        _, system, _ = build_edgaze(config)
        report = run_edgaze(config)
        point = thermal_operating_point(system, report)
        snr = imaging_snr_at_operating_point(system, report, pixel,
                                             seed=7)
        rows[placement] = (point, snr)
    return rows


def test_thermal_loop(benchmark, write_result):
    rows = benchmark.pedantic(_run, rounds=3, iterations=1)

    lines = ["Extension — thermal loop on Ed-Gaze @65 nm",
             f"{'placement':<10} {'density mW/mm^2':>16} {'dT (K)':>8} "
             f"{'SNR @100e- (dB)':>16}"]
    for placement, (point, snr) in rows.items():
        density = point.power_density / (units.mW / units.mm2)
        lines.append(f"{placement:<10} {density:>16.2f} "
                     f"{point.temperature_rise:>8.2f} {snr:>16.1f}")
    write_result("thermal_loop", "\n".join(lines))

    hot_point, hot_snr = rows["2D-In"]
    cool_point, cool_snr = rows["2D-Off"]
    stacked_point, stacked_snr = rows["3D-In"]
    benchmark.extra_info["snr_penalty_db"] = round(cool_snr - hot_snr, 2)

    # The quantified Sec. 6.2 claims: the dense 2D-In design runs hotter
    # and images worse in the dark; stacking sits in between.
    assert hot_point.temperature_rise > stacked_point.temperature_rise
    assert stacked_point.temperature_rise > cool_point.temperature_rise
    assert hot_snr < cool_snr
