"""Algorithm stages (the ``camj_sw_config`` side of Fig. 5).

A pipeline is a DAG of stages: a :class:`PixelInput` source followed by
:class:`ProcessStage` stencil operations and, for DNN workloads,
:class:`DNNProcessStage` subclasses that also report MAC counts.

Stages carry only dimensional information (sizes, kernel, stride) — the
declarative-interface design principle — plus the per-pixel bit depth and
an optional output-compression factor for data-dependent encoders like ROI
generation (Rhythmic Pixel Regions produces ~50 % of the input bytes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.sw import stencil


class Stage:
    """Base class of all algorithm stages."""

    def __init__(self, name: str, output_size: Sequence[int],
                 bits_per_pixel: int = 8,
                 output_compression: float = 1.0):
        if not name:
            raise ConfigurationError("stage needs a non-empty name")
        if bits_per_pixel < 1:
            raise ConfigurationError(
                f"stage {name!r}: bits per pixel must be >= 1, "
                f"got {bits_per_pixel}")
        if not 0.0 < output_compression <= 1.0:
            raise ConfigurationError(
                f"stage {name!r}: output compression must be in (0, 1], "
                f"got {output_compression}")
        self.name = name
        self.output_size = stencil._validated_triple(
            f"stage {name!r} output_size", output_size)
        self.bits_per_pixel = bits_per_pixel
        self.output_compression = output_compression
        self.input_stages: List["Stage"] = []

    # --- DAG wiring -----------------------------------------------------------

    def set_input_stage(self, producer: "Stage") -> "Stage":
        """Declare ``producer`` as one of this stage's inputs."""
        if producer is self:
            raise ConfigurationError(
                f"stage {self.name!r} cannot consume its own output")
        if producer in self.input_stages:
            raise ConfigurationError(
                f"stage {self.name!r} already consumes {producer.name!r}")
        self.input_stages.append(producer)
        return self

    # --- dimensional statistics ---------------------------------------------

    @property
    def output_pixels(self) -> int:
        """Elements produced per frame."""
        return stencil.volume(self.output_size)

    @property
    def output_bytes(self) -> float:
        """Bytes produced per frame, after any output compression."""
        raw = self.output_pixels * self.bits_per_pixel / 8.0
        return raw * self.output_compression

    @property
    def total_ops(self) -> float:
        """Primitive operations per frame (subclass responsibility)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, out={self.output_size})"


class PixelInput(Stage):
    """The raw-pixel source produced by the pixel array."""

    def __init__(self, size: Sequence[int], name: str = "Input",
                 bits_per_pixel: int = 8):
        super().__init__(name, size, bits_per_pixel=bits_per_pixel)

    @property
    def total_ops(self) -> float:
        """One readout operation per pixel."""
        return float(self.output_pixels)

    def set_input_stage(self, producer: "Stage") -> "Stage":
        raise ConfigurationError(
            f"pixel input {self.name!r} cannot have producers")


class ProcessStage(Stage):
    """A stencil operation over a local window of pixels.

    Parameters mirror Fig. 5: ``input_size``, ``output_size``, ``kernel``
    and ``stride`` (``output_size`` may be omitted and derived).  The
    optional ``ops_per_output`` overrides the primitive-op count per output
    element; it defaults to the kernel volume (one op per window tap, e.g.
    MACs of a convolution or additions of a binning average).
    """

    def __init__(self, name: str, input_size: Sequence[int],
                 kernel: Sequence[int], stride: Sequence[int],
                 output_size: Optional[Sequence[int]] = None,
                 ops_per_output: Optional[float] = None,
                 bits_per_pixel: int = 8,
                 output_compression: float = 1.0,
                 padding: str = "valid"):
        self.input_size = stencil._validated_triple(
            f"stage {name!r} input_size", input_size)
        self.kernel = stencil._validated_triple(
            f"stage {name!r} kernel", kernel)
        self.stride = stencil._validated_triple(
            f"stage {name!r} stride", stride)
        self.padding = padding
        derived = stencil.stencil_output_size(self.input_size, self.kernel,
                                              self.stride, padding=padding)
        if output_size is not None:
            declared = stencil._validated_triple(
                f"stage {name!r} output_size", output_size)
            if declared != derived:
                raise ConfigurationError(
                    f"stage {name!r}: declared output size {declared} does "
                    f"not match kernel/stride arithmetic {derived}")
        super().__init__(name, derived, bits_per_pixel=bits_per_pixel,
                         output_compression=output_compression)
        if ops_per_output is not None and ops_per_output <= 0:
            raise ConfigurationError(
                f"stage {name!r}: ops_per_output must be positive, "
                f"got {ops_per_output}")
        self._ops_per_output = ops_per_output

    @property
    def kernel_volume(self) -> int:
        """Window taps per output element."""
        return self.kernel[0] * self.kernel[1] * self.kernel[2]

    @property
    def ops_per_output(self) -> float:
        """Primitive ops per output element (defaults to kernel volume)."""
        if self._ops_per_output is not None:
            return self._ops_per_output
        return float(self.kernel_volume)

    @property
    def total_ops(self) -> float:
        """Primitive operations per frame."""
        return self.output_pixels * self.ops_per_output

    @property
    def input_reads(self) -> float:
        """Input-element touches per frame without reuse buffering."""
        return stencil.stencil_reads(self.output_size, self.kernel)


class DNNProcessStage(ProcessStage):
    """Base class of DNN layers: a stencil stage that also reports MACs."""

    @property
    def num_macs(self) -> float:
        """Multiply-accumulate count per frame."""
        return self.total_ops

    @property
    def weight_bytes(self) -> float:
        """Bytes of weights the layer streams per frame (subclass detail)."""
        return 0.0


class Conv2DStage(DNNProcessStage):
    """Standard 2D convolution: ``num_kernels`` filters over all channels."""

    def __init__(self, name: str, input_size: Sequence[int],
                 num_kernels: int, kernel_size: Sequence[int],
                 stride: Sequence[int] = (1, 1, 1),
                 bits_per_pixel: int = 8,
                 padding: str = "same"):
        if num_kernels < 1:
            raise ConfigurationError(
                f"conv stage {name!r}: num_kernels must be >= 1, "
                f"got {num_kernels}")
        in_h, in_w, in_c = stencil._validated_triple(
            f"stage {name!r} input_size", input_size)
        k_h, k_w = int(kernel_size[0]), int(kernel_size[1])
        kernel = (k_h, k_w, in_c)
        super().__init__(name, (in_h, in_w, in_c), kernel, stride,
                         bits_per_pixel=bits_per_pixel, padding=padding)
        self.num_kernels = num_kernels
        # One filter bank per output channel: widen the output channel dim.
        out_h, out_w, _ = self.output_size
        self.output_size = (out_h, out_w, num_kernels)

    @property
    def total_ops(self) -> float:
        """MACs: every output element touches a full kernel volume."""
        return self.output_pixels * self.kernel_volume

    @property
    def weight_bytes(self) -> float:
        """Filter weights, at the stage's bit depth."""
        weights = self.kernel_volume * self.num_kernels
        return weights * self.bits_per_pixel / 8.0


class DepthwiseConv2DStage(DNNProcessStage):
    """Depthwise convolution: one spatial filter per input channel."""

    def __init__(self, name: str, input_size: Sequence[int],
                 kernel_size: Sequence[int],
                 stride: Sequence[int] = (1, 1, 1),
                 bits_per_pixel: int = 8,
                 padding: str = "same"):
        in_h, in_w, in_c = stencil._validated_triple(
            f"stage {name!r} input_size", input_size)
        k_h, k_w = int(kernel_size[0]), int(kernel_size[1])
        # Depthwise: the window never crosses channels.
        kernel = (k_h, k_w, 1)
        stride3 = stencil._validated_triple(
            f"stage {name!r} stride", stride)
        super().__init__(name, (in_h, in_w, in_c), kernel,
                         (stride3[0], stride3[1], 1),
                         bits_per_pixel=bits_per_pixel, padding=padding)

    @property
    def weight_bytes(self) -> float:
        """One spatial filter per channel."""
        _, _, channels = self.output_size
        return (self.kernel[0] * self.kernel[1] * channels
                * self.bits_per_pixel / 8.0)


class FullyConnectedStage(DNNProcessStage):
    """Fully-connected layer expressed as a degenerate 1x1 stencil."""

    def __init__(self, name: str, in_features: int, out_features: int,
                 bits_per_pixel: int = 8):
        if in_features < 1 or out_features < 1:
            raise ConfigurationError(
                f"fc stage {name!r}: feature counts must be >= 1")
        super().__init__(name, (1, 1, in_features), (1, 1, in_features),
                         (1, 1, in_features), bits_per_pixel=bits_per_pixel)
        self.in_features = in_features
        self.out_features = out_features
        self.output_size = (1, 1, out_features)

    @property
    def total_ops(self) -> float:
        """MACs of the dense matrix-vector product."""
        return float(self.in_features * self.out_features)

    @property
    def weight_bytes(self) -> float:
        """Dense weight matrix at the stage's bit depth."""
        return (self.in_features * self.out_features
                * self.bits_per_pixel / 8.0)
