"""Stencil arithmetic shared by the stage descriptions and the simulator.

CamJ's key interface observation (Sec. 3.3): in-sensor image processing is
stencil-based, so access counts follow from the input/output dimensions,
the kernel window, and the stride alone — no arithmetic details needed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.exceptions import ConfigurationError


def _validated_triple(what: str, value: Sequence[int]) -> Tuple[int, int, int]:
    values = tuple(int(v) for v in value)
    if len(values) == 2:
        values = values + (1,)
    if len(values) != 3:
        raise ConfigurationError(
            f"{what} must have 2 or 3 dimensions, got {value}")
    if any(v < 1 for v in values):
        raise ConfigurationError(
            f"{what} must be positive integers, got {value}")
    return values


def stencil_output_size(input_size: Sequence[int], kernel: Sequence[int],
                        stride: Sequence[int],
                        padding: str = "valid") -> Tuple[int, int, int]:
    """Output dimensions of a stencil sweep.

    All sizes are ``(height, width, channels)``; 2-tuples get an implicit
    channel dimension of 1.  The kernel consumes all input channels and the
    channel stride folds the channel dimension (e.g. a ``[2, 2, 1]`` kernel
    with stride ``[2, 2, 1]`` performs 2x2 spatial binning).

    ``padding`` is ``"valid"`` (no border) or ``"same"`` (border pixels
    padded so ``out = ceil(in / stride)``, the convention image pipelines
    and the paper's Fig. 5 example use).
    """
    in_h, in_w, in_c = _validated_triple("input_size", input_size)
    k_h, k_w, k_c = _validated_triple("kernel", kernel)
    s_h, s_w, s_c = _validated_triple("stride", stride)
    if padding not in ("valid", "same"):
        raise ConfigurationError(
            f"padding must be 'valid' or 'same', got {padding!r}")
    if k_h > in_h or k_w > in_w or k_c > in_c:
        raise ConfigurationError(
            f"kernel {kernel} larger than input {input_size}")
    if padding == "same":
        out_h = -(-in_h // s_h)
        out_w = -(-in_w // s_w)
        out_c = -(-in_c // s_c)
    else:
        out_h = (in_h - k_h) // s_h + 1
        out_w = (in_w - k_w) // s_w + 1
        out_c = (in_c - k_c) // s_c + 1
    return out_h, out_w, out_c


def stencil_ops(output_size: Sequence[int], kernel: Sequence[int],
                ops_per_element: float = 1.0) -> float:
    """Primitive operation count of a stencil sweep.

    Each output element touches the full kernel window once; a convolution
    therefore performs ``kernel volume`` MACs per output (the paper's
    example of deriving Eq. 3's numerator).
    """
    out_h, out_w, out_c = _validated_triple("output_size", output_size)
    k_h, k_w, k_c = _validated_triple("kernel", kernel)
    if ops_per_element <= 0:
        raise ConfigurationError(
            f"ops_per_element must be positive, got {ops_per_element}")
    return out_h * out_w * out_c * k_h * k_w * k_c * ops_per_element


def stencil_reads(output_size: Sequence[int], kernel: Sequence[int]) -> float:
    """Input-element reads of a stencil sweep without any reuse buffering."""
    out_h, out_w, out_c = _validated_triple("output_size", output_size)
    k_h, k_w, k_c = _validated_triple("kernel", kernel)
    return out_h * out_w * out_c * k_h * k_w * k_c


def volume(size: Sequence[int]) -> int:
    """Element count of a 2- or 3-dimensional size."""
    values = _validated_triple("size", size)
    return values[0] * values[1] * values[2]
