"""The algorithm DAG (Sec. 3.3).

:class:`StageGraph` collects stages, validates well-formedness (unique
names, acyclicity, dimensional agreement along edges — the "well-formed
dependencies" pre-simulation check), and provides topological traversal for
the simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Optional

from repro.exceptions import DAGError
from repro.sw.stage import (
    FullyConnectedStage,
    PixelInput,
    ProcessStage,
    Stage,
)


class StageGraph:
    """A validated DAG of algorithm stages."""

    def __init__(self, stages: Sequence[Stage]):
        if not stages:
            raise DAGError("stage graph needs at least one stage")
        self.stages: List[Stage] = list(stages)
        self._by_name: Dict[str, Stage] = {}
        for stage in self.stages:
            if stage.name in self._by_name:
                raise DAGError(f"duplicate stage name {stage.name!r}")
            self._by_name[stage.name] = stage
        self._check_membership()
        self._order: Tuple[Stage, ...] = tuple(self._topological_order())
        # Stages are wired at construction and the graph is validated
        # immediately after ordering, so traversals are cached: the
        # simulator engine walks order and edges on every run.
        self._edges: Tuple[Tuple[Stage, Stage], ...] = tuple(
            (producer, consumer)
            for consumer in self._order
            for producer in consumer.input_stages)
        self._sinks_cache: Optional[Tuple[Stage, ...]] = None
        self._check_shapes()
        self._check_sources()

    # --- lookups -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._order)

    def __len__(self) -> int:
        return len(self.stages)

    def get(self, name: str) -> Stage:
        """Stage by name; raises :class:`DAGError` if absent."""
        if name not in self._by_name:
            raise DAGError(f"unknown stage {name!r}")
        return self._by_name[name]

    @property
    def topological_order(self) -> Sequence[Stage]:
        """Stages ordered so producers precede consumers (cached tuple)."""
        return self._order

    @property
    def sources(self) -> List[Stage]:
        """Stages without producers (normally the :class:`PixelInput`)."""
        return [s for s in self._order if not s.input_stages]

    @property
    def sinks(self) -> Sequence[Stage]:
        """Stages nothing consumes — their output leaves the pipeline."""
        if self._sinks_cache is None:
            consumed = set()
            for stage in self.stages:
                consumed.update(id(p) for p in stage.input_stages)
            self._sinks_cache = tuple(
                s for s in self._order if id(s) not in consumed)
        return self._sinks_cache

    def consumers(self, stage: Stage) -> List[Stage]:
        """Stages that read ``stage``'s output."""
        return [s for s in self._order if stage in s.input_stages]

    def edges(self) -> Iterable[Tuple[Stage, Stage]]:
        """All ``(producer, consumer)`` pairs in topological order (cached)."""
        return self._edges

    # --- validation -----------------------------------------------------------

    def _check_membership(self) -> None:
        member_ids = {id(s) for s in self.stages}
        for stage in self.stages:
            for producer in stage.input_stages:
                if id(producer) not in member_ids:
                    raise DAGError(
                        f"stage {stage.name!r} consumes {producer.name!r}, "
                        f"which is not part of the graph")

    def _topological_order(self) -> List[Stage]:
        """Kahn's algorithm; raises on cycles (the "no circle" check)."""
        indegree = {id(s): len(s.input_stages) for s in self.stages}
        consumers: Dict[int, List[Stage]] = {id(s): [] for s in self.stages}
        for stage in self.stages:
            for producer in stage.input_stages:
                consumers[id(producer)].append(stage)
        ready = [s for s in self.stages if indegree[id(s)] == 0]
        order: List[Stage] = []
        while ready:
            stage = ready.pop()
            order.append(stage)
            for consumer in consumers[id(stage)]:
                indegree[id(consumer)] -= 1
                if indegree[id(consumer)] == 0:
                    ready.append(consumer)
        if len(order) != len(self.stages):
            cyclic = [s.name for s in self.stages
                      if indegree[id(s)] > 0]
            raise DAGError(
                f"stage graph has a cycle involving: {sorted(cyclic)}")
        return order

    def _check_shapes(self) -> None:
        """Every stencil consumer's input size must match a producer output.

        Multi-input stages (e.g. frame subtraction reading the live frame
        and the stored previous frame) may consume several producers; each
        producer's output must match the declared input size.
        """
        for producer, consumer in self.edges():
            if not isinstance(consumer, ProcessStage):
                continue
            if isinstance(consumer, FullyConnectedStage):
                # Dense layers flatten their input: only volume matters.
                produced = (producer.output_size[0]
                            * producer.output_size[1]
                            * producer.output_size[2])
                if produced != consumer.in_features:
                    raise DAGError(
                        f"fc stage {consumer.name!r} expects "
                        f"{consumer.in_features} features but producer "
                        f"{producer.name!r} emits {produced} elements")
                continue
            if producer.output_size != consumer.input_size:
                raise DAGError(
                    f"stage {consumer.name!r} expects input "
                    f"{consumer.input_size} but producer {producer.name!r} "
                    f"emits {producer.output_size}")

    def _check_sources(self) -> None:
        if not any(isinstance(s, PixelInput) for s in self.sources):
            raise DAGError(
                "stage graph needs a PixelInput source (pixels must "
                "originate from the pixel array)")
