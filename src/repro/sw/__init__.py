"""Algorithm description: stencil stages, DNN stages, and the stage DAG."""

from repro.sw.stage import (
    Stage,
    PixelInput,
    ProcessStage,
    DNNProcessStage,
    Conv2DStage,
    DepthwiseConv2DStage,
    FullyConnectedStage,
)
from repro.sw.dag import StageGraph
from repro.sw.stencil import (
    stencil_output_size,
    stencil_ops,
    stencil_reads,
)

__all__ = [
    "Stage",
    "PixelInput",
    "ProcessStage",
    "DNNProcessStage",
    "Conv2DStage",
    "DepthwiseConv2DStage",
    "FullyConnectedStage",
    "StageGraph",
    "stencil_output_size",
    "stencil_ops",
    "stencil_reads",
]
