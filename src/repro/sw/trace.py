"""Memory-trace input for irregular algorithms (Sec. 3.3).

The declarative stencil interface covers the regular algorithms CIS
hardware is built for, but the paper notes CamJ "does accept as input a
memory trace offline collected for an irregular algorithm", to be costed
with external tools like DRAMPower.  This module is that hook: a parsed
:class:`MemoryTrace` can be billed against any digital memory model (our
SRAM/STT-RAM/DRAM stand-ins included).

Trace format: one access per line, ``R <bytes>`` or ``W <bytes>``, with
optional ``# comments`` and an optional third column carrying a timestamp
in seconds (used for active-window leakage accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TraceEvent:
    """One memory access of an offline-collected trace."""

    op: str  # "R" or "W"
    num_bytes: float
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in ("R", "W"):
            raise ConfigurationError(
                f"trace op must be 'R' or 'W', got {self.op!r}")
        if self.num_bytes <= 0:
            raise ConfigurationError(
                f"trace access size must be positive, got {self.num_bytes}")
        if self.timestamp is not None and self.timestamp < 0:
            raise ConfigurationError(
                f"trace timestamp must be non-negative, "
                f"got {self.timestamp}")


class MemoryTrace:
    """An offline-collected sequence of memory accesses."""

    def __init__(self, events: Iterable[TraceEvent]):
        self.events: List[TraceEvent] = list(events)
        if not self.events:
            raise ConfigurationError("memory trace is empty")
        timestamps = [e.timestamp for e in self.events
                      if e.timestamp is not None]
        if timestamps and len(timestamps) != len(self.events):
            raise ConfigurationError(
                "trace timestamps must be present on all events or none")
        if timestamps and timestamps != sorted(timestamps):
            raise ConfigurationError(
                "trace timestamps must be non-decreasing")

    # --- construction -----------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "MemoryTrace":
        """Parse the ``R/W <bytes> [timestamp]`` line format."""
        events = []
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) not in (2, 3):
                raise ConfigurationError(
                    f"trace line {line_number}: expected 'R|W bytes "
                    f"[timestamp]', got {raw!r}")
            op = fields[0].upper()
            try:
                num_bytes = float(fields[1])
                timestamp = float(fields[2]) if len(fields) == 3 else None
            except ValueError as error:
                raise ConfigurationError(
                    f"trace line {line_number}: {error}") from error
            events.append(TraceEvent(op=op, num_bytes=num_bytes,
                                     timestamp=timestamp))
        return cls(events)

    @classmethod
    def from_counts(cls, reads: int, writes: int,
                    bytes_per_access: float = 1.0) -> "MemoryTrace":
        """Build a synthetic trace from aggregate counts."""
        if reads < 0 or writes < 0:
            raise ConfigurationError("access counts must be non-negative")
        if reads + writes == 0:
            raise ConfigurationError("trace needs at least one access")
        events = ([TraceEvent("R", bytes_per_access)] * reads
                  + [TraceEvent("W", bytes_per_access)] * writes)
        return cls(events)

    # --- statistics -----------------------------------------------------------

    @property
    def read_bytes(self) -> float:
        """Total bytes read."""
        return sum(e.num_bytes for e in self.events if e.op == "R")

    @property
    def write_bytes(self) -> float:
        """Total bytes written."""
        return sum(e.num_bytes for e in self.events if e.op == "W")

    @property
    def num_reads(self) -> int:
        return sum(1 for e in self.events if e.op == "R")

    @property
    def num_writes(self) -> int:
        return sum(1 for e in self.events if e.op == "W")

    @property
    def duration(self) -> Optional[float]:
        """Active window covered by timestamps, if present."""
        timestamps = [e.timestamp for e in self.events
                      if e.timestamp is not None]
        if not timestamps:
            return None
        return timestamps[-1] - timestamps[0]

    # --- energy ---------------------------------------------------------------

    def energy_against(self, memory, frame_time: Optional[float] = None
                       ) -> Tuple[float, float]:
        """``(dynamic, leakage)`` energy of running this trace on a memory.

        ``memory`` is any object exposing per-byte read/write energies
        (``read_energy_per_byte`` / ``write_energy_per_byte``) and,
        optionally, ``leakage_power``.  Leakage is billed over the trace's
        own timestamped window when available, else over ``frame_time``.
        """
        read_cost = getattr(memory, "read_energy_per_byte", None)
        write_cost = getattr(memory, "write_energy_per_byte", None)
        if read_cost is None or write_cost is None:
            raise ConfigurationError(
                f"memory {memory!r} lacks per-byte energy attributes")
        dynamic = (self.read_bytes * read_cost
                   + self.write_bytes * write_cost)
        # Standing power: SRAM-style leakage or DRAM-style refresh.
        standing_power = getattr(memory, "leakage_power", None)
        if standing_power is None:
            standing_power = getattr(memory, "refresh_power", 0.0)
        window = self.duration if self.duration else frame_time
        leakage = standing_power * window if window else 0.0
        return dynamic, leakage

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"MemoryTrace({len(self.events)} events, "
                f"{self.read_bytes:g}B read, {self.write_bytes:g}B written)")
