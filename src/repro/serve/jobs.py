"""The daemon's multi-tenant job queue over one shared simulator session.

Every job a ``repro serve`` process accepts — single-design runs and
whole explorations alike — flows through one :class:`JobQueue`: an
``asyncio.Queue`` drained by a bounded set of worker tasks, each of
which ships the blocking simulation work to a dedicated thread pool
while the event loop keeps answering status polls.  All jobs execute
against **one** :class:`repro.api.Simulator`, so its persistent worker
pools, two-tier result cache, and pass memos are shared across every
client of the daemon; concurrent submitters warming each other's cache
is the whole point.

Lifecycle: ``queued -> running -> done | failed | cancelled``.  Queued
jobs cancel instantly; running explore jobs cancel at their next chunk
boundary via :class:`repro.explore.ExplorationInterrupted`.  Shutdown
(:meth:`JobQueue.close`) flushes everything still in flight to a
terminal state before the session itself is closed.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.api.design import Design
from repro.api.result import SimOptions
from repro.api.simulator import Simulator
from repro.exceptions import CamJError
from repro.explore.engine import (ENGINE_COUNTERS, ExplorationInterrupted,
                                  explore_stream)
from repro.explore.spec import ExplorationSpec
from repro.serve.journal import JobJournal
from repro.serve.progress import JobProgress, StreamBuffer

#: How many simulation points one explore chunk covers by default: the
#: cancellation latency / progress granularity vs batching trade-off.
DEFAULT_CHUNK_SIZE = 8

#: Default width of the daemon's job-execution thread pool.
DEFAULT_WORKERS = 2

#: Terminal-job retention bound: oldest finished jobs are forgotten
#: once the registry outgrows this (running/queued jobs never are).
DEFAULT_JOBS_KEPT = 512


def _job_number(job_id: str) -> int:
    """The counter behind a ``job-NNNNNN`` id (0 for foreign ids)."""
    _, _, digits = job_id.partition("-")
    try:
        return int(digits)
    except ValueError:
        return 0


class JobState(enum.Enum):
    """Where in its lifecycle a job is."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED})


class QueueClosed(RuntimeError):
    """Submission after the queue began shutting down."""


class Job:
    """One unit of daemon work and everything observers may ask of it.

    ``kind`` is ``"run"`` (one design, one :class:`SimOptions`),
    ``"explore"`` (an :class:`ExplorationSpec`), or ``"robust"`` (a
    :class:`~repro.robust.spec.RobustSpec`).  Mutable state is
    guarded by ``lock``; ``stream`` carries the incremental event log
    the JSONL/SSE endpoints replay.
    """

    def __init__(self, job_id: str, kind: str, name: str,
                 payload: Any) -> None:
        self.id = job_id
        self.kind = kind
        self.name = name
        self.payload = payload
        self.state = JobState.QUEUED
        self.progress = JobProgress()
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[Dict[str, str]] = None
        self.cancel_requested = False
        self.cancel_event = threading.Event()
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.lock = threading.Lock()
        self.stream = StreamBuffer()

    def to_dict(self) -> Dict[str, Any]:
        """The job's status document (never includes the full result)."""
        with self.lock:
            return {
                "id": self.id,
                "kind": self.kind,
                "name": self.name,
                "state": self.state.value,
                "progress": self.progress.to_dict(),
                "error": dict(self.error) if self.error else None,
                "cancel_requested": self.cancel_requested,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "has_result": self.result is not None,
            }


class JobQueue:
    """Async job queue sharing one :class:`Simulator` across all jobs.

    Construct it anywhere, :meth:`start` it on the event loop that will
    own it.  ``submit_*``/``cancel``/``get`` are called from that loop
    (the HTTP handlers); job execution mutates state from worker
    threads under each job's lock.
    """

    def __init__(self, simulator: Simulator, *,
                 workers: int = DEFAULT_WORKERS,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 max_jobs_kept: int = DEFAULT_JOBS_KEPT,
                 journal: Optional[JobJournal] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.simulator = simulator
        self.workers = workers
        self.chunk_size = chunk_size
        self.journal = journal
        self._recovery: Optional[Dict[str, int]] = None
        self._max_jobs_kept = max_jobs_kept
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._engine_totals: Dict[str, int] = dict.fromkeys(
            ENGINE_COUNTERS, 0)
        self._registry_lock = threading.Lock()
        self._counter = itertools.count(1)
        self._queue: Optional["asyncio.Queue[Optional[Job]]"] = None
        self._tasks: List["asyncio.Task"] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._accepting = False

    # --- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Create the queue and worker tasks on the running loop."""
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve-job")
        self._tasks = [asyncio.create_task(self._worker())
                       for _ in range(self.workers)]
        self._accepting = True

    async def close(self) -> None:
        """Flush every live job to a terminal state and stop the workers.

        Queued jobs become ``cancelled`` immediately; running jobs get
        their cancel flag and reach ``cancelled`` (or ``done``, if they
        beat the flag) at the next chunk boundary.  Idempotent.
        """
        self._accepting = False
        for job in self.jobs():
            self.cancel(job.id)
        if self._queue is not None:
            for _ in self._tasks:
                self._queue.put_nowait(None)
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # --- submission and observation ---------------------------------------

    def submit_run(self, design: Design, options: SimOptions) -> Job:
        """Enqueue one ``(design, options)`` simulation."""
        return self._submit("run", design.name, (design, options))

    def submit_explore(self, spec: ExplorationSpec) -> Job:
        """Enqueue one whole exploration."""
        name = spec.name if spec.name is not None else spec.usecase
        return self._submit("explore", name, spec)

    def submit_robust(self, spec: "RobustSpec") -> Job:  # noqa: F821
        """Enqueue one robustness study (Monte Carlo, corners, ...)."""
        return self._submit("robust", spec.display_name, spec)

    def _submit(self, kind: str, name: str, payload: Any) -> Job:
        if not self._accepting or self._queue is None:
            raise QueueClosed("job queue is not accepting submissions")
        job = Job(f"job-{next(self._counter):06d}", kind, name, payload)
        if self.journal is not None:
            # Write-ahead: the submission is durable before it is
            # acknowledged, so an accepted job survives any crash.
            self.journal.record_submit(job)
        with self._registry_lock:
            self._jobs[job.id] = job
            self._evict_old_terminal()
        self._queue.put_nowait(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._registry_lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._registry_lock:
            return list(self._jobs.values())

    def engine_totals(self) -> Dict[str, int]:
        """Lifetime explore-engine point tallies across finished jobs."""
        with self._registry_lock:
            return dict(self._engine_totals)

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; queued jobs finish immediately.

        Cancelling a terminal job is a no-op.  Raises ``KeyError`` for
        unknown ids.
        """
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        finish_now = False
        with job.lock:
            if job.state in TERMINAL_STATES:
                return job
            job.cancel_requested = True
            job.cancel_event.set()
            if job.state is JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                finish_now = True
        if finish_now:
            self._seal_stream(job)
            self._journal_terminal(job)
        return job

    def counts(self) -> Dict[str, int]:
        """How many known jobs sit in each state."""
        counts = {state.value: 0 for state in JobState}
        for job in self.jobs():
            counts[job.state.value] += 1
        return counts

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return self._queue.qsize() if self._queue is not None else 0

    def _evict_old_terminal(self) -> None:
        """Forget the oldest finished jobs beyond the retention bound.

        Must be called under ``_registry_lock``.  Live jobs are never
        evicted, so a burst of active work can exceed the bound.
        """
        excess = len(self._jobs) - self._max_jobs_kept
        if excess <= 0:
            return
        for job_id in [job_id for job_id, job in self._jobs.items()
                       if job.state in TERMINAL_STATES][:excess]:
            del self._jobs[job_id]

    # --- execution --------------------------------------------------------

    async def _worker(self) -> None:
        """One drain loop: pop, execute in the thread pool, repeat."""
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is None:  # shutdown sentinel
                return
            with job.lock:
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while waiting
                job.state = JobState.RUNNING
                job.started_at = time.time()
            await loop.run_in_executor(self._executor, self._execute, job)

    def _execute(self, job: Job) -> None:
        """Blocking job body (worker thread); never raises."""
        try:
            if job.cancel_event.is_set():
                self._finish(job, JobState.CANCELLED)
            elif job.kind == "run":
                self._execute_run(job)
            elif job.kind == "robust":
                self._execute_robust(job)
            else:
                self._execute_explore(job)
        except ExplorationInterrupted:
            self._finish(job, JobState.CANCELLED)
        except CamJError as error:
            self._finish(job, JobState.FAILED,
                         error={"type": type(error).__name__,
                                "message": str(error)})
        except Exception as error:  # never kill the worker task
            self._finish(job, JobState.FAILED,
                         error={"type": type(error).__name__,
                                "message": str(error)})

    def _execute_run(self, job: Job) -> None:
        design, options = job.payload
        with job.lock:
            job.progress.total = 1
        result = self.simulator.run(design, options)
        with job.lock:
            job.progress.completed = 1
            if result.cached:
                job.progress.cache_hits = 1
        payload = result.to_dict()
        job.stream.append({"event": "result", "result": payload})
        self._finish(job, JobState.DONE, result=payload)

    def _execute_explore(self, job: Job) -> None:
        spec: ExplorationSpec = job.payload
        try:
            with job.lock:
                job.progress.total = len(spec.space)
        except TypeError:
            pass  # unsized space: total arrives with the first chunk

        def on_progress(points, completed, total, cache_hits):
            with job.lock:
                job.progress.total = total
                job.progress.completed = completed
                job.progress.cache_hits += cache_hits
            for point in points:
                job.stream.append({"event": "point",
                                   "point": point.to_dict()})

        result = explore_stream(
            spec.space, spec.usecase, objectives=spec.objectives,
            options=spec.options, simulator=self.simulator,
            name=spec.name, chunk_size=self.chunk_size,
            on_progress=on_progress,
            should_stop=job.cancel_event.is_set,
            engine=spec.engine)
        with self._registry_lock:
            for counter, count in result.engines.items():
                self._engine_totals[counter] = \
                    self._engine_totals.get(counter, 0) + count
        self._finish(job, JobState.DONE, result=result.to_dict())

    def _execute_robust(self, job: Job) -> None:
        spec = job.payload  # a RobustSpec

        def on_progress(completed, total, cache_hits):
            with job.lock:
                job.progress.total = total
                job.progress.completed = completed
                job.progress.cache_hits += cache_hits
            job.stream.append({"event": "progress",
                               "completed": completed, "total": total})

        document = spec.run_document(
            simulator=self.simulator, chunk_size=self.chunk_size,
            on_progress=on_progress,
            should_stop=job.cancel_event.is_set)
        self._finish(job, JobState.DONE, result=document)

    def _finish(self, job: Job, state: JobState,
                result: Optional[Dict[str, Any]] = None,
                error: Optional[Dict[str, str]] = None) -> None:
        with job.lock:
            job.state = state
            job.result = result
            job.error = error
            job.finished_at = time.time()
        self._seal_stream(job)
        self._journal_terminal(job)

    def _seal_stream(self, job: Job) -> None:
        """Emit the terminal event and close the job's stream."""
        job.stream.append({"event": "done", "job": job.to_dict()})
        job.stream.close()

    def _journal_terminal(self, job: Job) -> None:
        """Durably record one terminal transition (if journaling)."""
        if self.journal is None:
            return
        self.journal.record_terminal(job)
        self.journal.maybe_compact(self._max_jobs_kept)

    # --- restart recovery ---------------------------------------------------

    def recover(self) -> Optional[Dict[str, int]]:
        """Re-admit journaled work after a restart.

        Call once, after :meth:`start` and before accepting traffic.
        Jobs with a terminal record are restored — state, error, and
        result intact, so ``/jobs/<id>/result`` keeps working across
        the restart.  Jobs that were queued or running when the
        previous process died are re-enqueued **under their original
        ids** and re-run; with a shared disk cache the re-run is warm
        and the recovered results are bit-identical.  Journaled jobs
        whose spec can no longer be rebuilt fail with a typed error
        instead of vanishing.
        """
        if self.journal is None or self._queue is None:
            return None
        snapshots = self.journal.replay_jobs()
        summary = {"restored": 0, "requeued": 0, "unrecoverable": 0}
        max_seen = 0
        for job_id, snapshot in snapshots.items():
            number = _job_number(job_id)
            max_seen = max(max_seen, number)
            submit, state = snapshot["submit"], snapshot["state"]
            if state is not None:
                job = self._restore_terminal(submit, state)
                summary["restored"] += 1
            else:
                job = self._readmit(submit)
                if job.state is JobState.FAILED:
                    summary["unrecoverable"] += 1
                else:
                    summary["requeued"] += 1
            with self._registry_lock:
                self._jobs[job.id] = job
        self._counter = itertools.count(max_seen + 1)
        # Startup compaction: fold the replayed history (plus any
        # unrecoverable-job terminals just appended) into its bound.
        self.journal.compact(max_terminal=self._max_jobs_kept)
        self._recovery = summary
        return summary

    def _restore_terminal(self, submit: Dict[str, Any],
                          state: Dict[str, Any]) -> Job:
        """A finished job, rebuilt exactly as the journal remembers it."""
        job = Job(submit["id"], submit.get("kind", "run"),
                  submit.get("name", ""), None)
        job.created_at = submit.get("created_at", job.created_at)
        try:
            job.state = JobState(state.get("state"))
        except ValueError:
            job.state = JobState.FAILED
            job.error = {"type": "JournalError",
                         "message": f"unknown terminal state "
                                    f"{state.get('state')!r}"}
        else:
            job.result = state.get("result")
            error = state.get("error")
            job.error = dict(error) if error else None
        job.started_at = state.get("started_at")
        job.finished_at = state.get("finished_at")
        self._seal_stream(job)
        return job

    def _readmit(self, submit: Dict[str, Any]) -> Job:
        """Rebuild one interrupted job's payload and re-enqueue it."""
        kind = submit.get("kind", "run")
        job = Job(submit["id"], kind, submit.get("name", ""), None)
        job.created_at = submit.get("created_at", job.created_at)
        spec = submit.get("spec")
        try:
            if not isinstance(spec, dict):
                raise ValueError(
                    "job was journaled without a rebuildable spec")
            if kind == "run":
                job.payload = (Design.from_dict(spec["design"]),
                               SimOptions.from_dict(spec["options"]))
            elif kind == "robust":
                from repro.robust.spec import robust_spec_from_dict
                job.payload = robust_spec_from_dict(spec)
            else:
                from repro.explore.spec import exploration_spec_from_dict
                job.payload = exploration_spec_from_dict(spec)
        except Exception as error:  # noqa: BLE001 - journal may be stale
            with job.lock:
                job.state = JobState.FAILED
                job.error = {"type": type(error).__name__,
                             "message": str(error)}
                job.finished_at = time.time()
            self._seal_stream(job)
            self._journal_terminal(job)
            return job
        self._queue.put_nowait(job)
        return job

    def journal_info(self) -> Optional[Dict[str, Any]]:
        """Journal state for ``/stats``; ``None`` when not journaling."""
        if self.journal is None:
            return None
        payload = self.journal.info()
        payload["recovery"] = self._recovery
        return payload
