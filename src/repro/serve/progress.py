"""Per-job progress bookkeeping and the streaming event buffer.

Job execution happens on daemon worker threads while HTTP handlers read
job state from the event loop, so both structures here are small,
lock-protected values: :class:`JobProgress` is the points-completed /
cache-hit counter block every status response embeds, and
:class:`StreamBuffer` is the append-only event log that the JSONL/SSE
endpoints replay — a late subscriber sees every event from the start,
a live one tails new events as the worker appends them.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Any, Dict, List, Optional, Tuple

#: How many events one job's stream retains by default.  Far above any
#: realistic explore chunk stream; the cap exists so a pathological
#: million-point job cannot hold every event in memory forever.
DEFAULT_STREAM_EVENTS = 4096


@dataclass
class JobProgress:
    """How far one job has come.

    ``total`` is ``None`` until the job's work has been sized (an
    explore job learns its point count when execution starts; a design
    job is always 1).  ``cache_hits`` counts this job's simulations
    served from the shared session cache — across concurrent clients,
    these are what make the one-session daemon pay off.
    """

    total: Optional[int] = None
    completed: int = 0
    cache_hits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
        }


class StreamBuffer:
    """Bounded, thread-safe event log with absolute cursor reads.

    Writers (worker threads) :meth:`append` event dicts and eventually
    :meth:`close` the buffer; readers (streaming handlers) poll
    :meth:`read_from` with their last cursor and stop once the buffer
    is closed and drained.

    Retention is a ring: the newest ``maxlen`` events are kept and the
    oldest beyond that are dropped, so a million-point job cannot pin
    every event in daemon memory.  Cursors are **absolute** event
    indices (they keep counting across drops); a reader whose cursor
    has fallen out of the retained window gets one synthetic
    ``{"event": "truncated", "dropped": N}`` marker summarizing the
    gap, then the stream continues from the oldest retained event.
    Subscribers inside the window still replay losslessly from the
    start.
    """

    def __init__(self, maxlen: int = DEFAULT_STREAM_EVENTS) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._events: "deque[Dict[str, Any]]" = deque()
        #: Events discarded off the front; the absolute index of the
        #: oldest retained event.
        self._dropped = 0
        self._lock = threading.Lock()
        self._closed = False

    def append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("stream buffer is closed")
            self._events.append(event)
            if len(self._events) > self.maxlen:
                self._events.popleft()
                self._dropped += 1

    def close(self) -> None:
        """No further events will arrive (idempotent)."""
        with self._lock:
            self._closed = True

    def read_from(self, cursor: int
                  ) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Events after ``cursor``; returns ``(events, new_cursor, done)``.

        ``done`` is true only when the buffer is closed *and* the
        returned slice reaches its end — a reader seeing it can stop
        polling without missing events.  ``new_cursor`` counts real
        events only: a synthetic ``truncated`` marker never advances
        it past the events it stands in for.
        """
        with self._lock:
            first_retained = self._dropped
            total = first_retained + len(self._events)
            if cursor >= total:
                return [], max(cursor, total), self._closed
            events: List[Dict[str, Any]] = []
            if cursor < first_retained:
                events.append({"event": "truncated",
                               "dropped": first_retained - cursor})
                cursor = first_retained
            events.extend(islice(self._events,
                                 cursor - first_retained, None))
            return events, total, self._closed

    @property
    def dropped(self) -> int:
        """How many old events the ring has discarded so far."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        """Total events ever appended (retained plus dropped)."""
        with self._lock:
            return self._dropped + len(self._events)
