"""Per-job progress bookkeeping and the streaming event buffer.

Job execution happens on daemon worker threads while HTTP handlers read
job state from the event loop, so both structures here are small,
lock-protected values: :class:`JobProgress` is the points-completed /
cache-hit counter block every status response embeds, and
:class:`StreamBuffer` is the append-only event log that the JSONL/SSE
endpoints replay — a late subscriber sees every event from the start,
a live one tails new events as the worker appends them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class JobProgress:
    """How far one job has come.

    ``total`` is ``None`` until the job's work has been sized (an
    explore job learns its point count when execution starts; a design
    job is always 1).  ``cache_hits`` counts this job's simulations
    served from the shared session cache — across concurrent clients,
    these are what make the one-session daemon pay off.
    """

    total: Optional[int] = None
    completed: int = 0
    cache_hits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
        }


class StreamBuffer:
    """Append-only, thread-safe event log with cursor-based reads.

    Writers (worker threads) :meth:`append` event dicts and eventually
    :meth:`close` the buffer; readers (streaming handlers) poll
    :meth:`read_from` with their last cursor and stop once the buffer
    is closed and drained.  Events are kept for the lifetime of the
    job so any number of subscribers can replay the full stream.
    """

    def __init__(self) -> None:
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._closed = False

    def append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError("stream buffer is closed")
            self._events.append(event)

    def close(self) -> None:
        """No further events will arrive (idempotent)."""
        with self._lock:
            self._closed = True

    def read_from(self, cursor: int
                  ) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Events after ``cursor``; returns ``(events, new_cursor, done)``.

        ``done`` is true only when the buffer is closed *and* the
        returned slice reaches its end — a reader seeing it can stop
        polling without missing events.
        """
        with self._lock:
            events = self._events[cursor:]
            new_cursor = len(self._events)
            return events, new_cursor, self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
