"""``repro serve`` — the long-lived simulation service daemon.

Everything the library can do one-shot — cached ``run_many`` batches,
whole ``explore()`` studies — dies with the process; this package keeps
it alive.  A daemon started with ``repro serve`` exposes an HTTP/JSON
API (stdlib asyncio + http only) over a multi-tenant async job queue in
which **every** job shares one :class:`repro.api.Simulator` session:
its persistent worker pools, two-tier result cache, and pass memos warm
up once and serve every client after that.

* :class:`ServeApp` — the daemon itself (transport, signals, lifecycle);
* :class:`JobQueue` / :class:`Job` / :class:`JobState` — the queue layer;
* :class:`ServeClient` — a typed stdlib client (submit/poll/stream);
* :class:`BackgroundServer` — the same app on a thread, for tests.

Quick taste::

    # terminal 1
    $ repro serve --port 8642 --cache-dir /tmp/repro-cache

    # terminal 2
    >>> from repro.serve import ServeClient
    >>> client = ServeClient(port=8642)
    >>> job = client.submit({"usecase": "edgaze",
    ...                      "space": {"name": "cis_node",
    ...                                "values": [130, 65]}})
    >>> client.wait(job["id"])["state"]
    'done'
"""

from repro.serve.app import BackgroundServer, ServeApp
from repro.serve.client import ServeClient, ServeError, ServeTimeout
from repro.serve.journal import JobJournal
from repro.serve.jobs import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_WORKERS,
    Job,
    JobQueue,
    JobState,
    QueueClosed,
    TERMINAL_STATES,
)
from repro.serve.progress import JobProgress, StreamBuffer

__all__ = [
    "ServeApp",
    "BackgroundServer",
    "ServeClient",
    "ServeError",
    "ServeTimeout",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "JobProgress",
    "StreamBuffer",
    "QueueClosed",
    "TERMINAL_STATES",
    "DEFAULT_WORKERS",
    "DEFAULT_CHUNK_SIZE",
]
