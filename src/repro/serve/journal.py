"""Durable job records: the serve daemon's write-ahead journal.

:class:`JobJournal` wraps one :class:`repro.resilience.JsonlJournal`
with the daemon's record vocabulary, making ``repro serve --journal
DIR`` crash-safe:

``{"type": "submit", ...}``
    Appended (fsync'd) before a submission is acknowledged, carrying
    the job's **fully serialized spec** — a design + options document
    for ``run`` jobs, an exploration spec for ``explore`` jobs — so a
    restarted daemon can re-admit the job and re-run it to the same
    result (bit-identical when the shared disk cache is warm).
``{"type": "state", ...}``
    Appended on every terminal transition (``done``/``failed``/
    ``cancelled``), carrying the result payload for finished jobs so a
    restarted daemon keeps serving their ``/jobs/<id>/result``.

:meth:`replay_jobs` folds the record stream into per-job snapshots;
:meth:`maybe_compact` periodically rewrites the file down to one
submit + one state record per retained job, bounding growth.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.exceptions import SerializationError
from repro.resilience.journal import JsonlJournal

#: Schema tag of every journal record.
JOB_JOURNAL_SCHEMA = "repro.serve-journal/1"

#: Journal file name inside the ``--journal`` directory.
JOURNAL_FILENAME = "jobs.jsonl"

#: Appends between compaction checks: often enough to bound the file,
#: rare enough that fsync'd appends dominate, not rewrites.
COMPACT_EVERY_APPENDS = 256


class JobJournal:
    """The daemon's append-only job ledger under one directory."""

    def __init__(self, directory) -> None:
        import pathlib
        self.directory = pathlib.Path(directory)
        self._journal = JsonlJournal(self.directory / JOURNAL_FILENAME)
        #: One reentrant lock over every append, replay, and rewrite.
        #: Compaction replays and rewrites under the same critical
        #: section an append takes, so a record landing concurrently
        #: with a compaction can never be erased by the rewrite.
        self._lock = threading.RLock()
        self._appends_since_compact = 0

    # --- writing ------------------------------------------------------------

    def record_submit(self, job) -> None:
        """Durably journal one admitted job before acknowledging it.

        A job whose payload cannot be serialized (custom in-memory
        parts) is journaled with ``spec: null`` — it still counts and
        keeps its id, but a restart fails it instead of re-running it.
        """
        record = {
            "schema": JOB_JOURNAL_SCHEMA,
            "type": "submit",
            "id": job.id,
            "kind": job.kind,
            "name": job.name,
            "created_at": job.created_at,
            "spec": self._serialize_payload(job),
        }
        with self._lock:
            self._journal.append(record, sync=True)
            self._appends_since_compact += 1

    def record_terminal(self, job) -> None:
        """Durably journal one terminal transition (with its result)."""
        with job.lock:
            record = {
                "schema": JOB_JOURNAL_SCHEMA,
                "type": "state",
                "id": job.id,
                "state": job.state.value,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "result": job.result,
                "error": dict(job.error) if job.error else None,
            }
        with self._lock:
            self._journal.append(record, sync=True)
            self._appends_since_compact += 1

    def _serialize_payload(self, job) -> Optional[Dict[str, Any]]:
        try:
            if job.kind == "run":
                design, options = job.payload
                return {"design": design.to_dict(),
                        "options": options.to_dict()}
            return job.payload.to_dict()
        except SerializationError:
            return None

    # --- replay -------------------------------------------------------------

    def replay_jobs(self) -> "Dict[str, Dict[str, Any]]":
        """Fold the record stream into one snapshot per job id.

        Returns ``{job_id: {"submit": record, "state": record|None}}``
        in submission order.  Records for foreign schemas, and state
        records without a preceding submit, are ignored.
        """
        snapshots: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            records = list(self._journal.replay())
        for record in records:
            if record.get("schema") != JOB_JOURNAL_SCHEMA:
                continue
            job_id = record.get("id")
            if not isinstance(job_id, str):
                continue
            if record.get("type") == "submit":
                snapshots[job_id] = {"submit": record, "state": None}
            elif record.get("type") == "state" and job_id in snapshots:
                snapshots[job_id]["state"] = record
        return snapshots

    # --- maintenance --------------------------------------------------------

    def compact(self,
                snapshots: "Optional[Dict[str, Dict[str, Any]]]" = None,
                max_terminal: Optional[int] = None) -> int:
        """Rewrite the journal down to one snapshot per job, oldest-first.

        With ``snapshots=None`` (the live-daemon path) the replay and
        the rewrite happen under one critical section with every
        append, so records landing from concurrent submitters are
        either part of the snapshot or appended after the rewrite —
        never erased by it.  Passing explicit ``snapshots`` is for
        single-threaded maintenance (tests, offline tools); the caller
        then owns the staleness risk.

        ``max_terminal`` bounds how many *terminal* jobs survive (the
        oldest beyond it are dropped, mirroring the in-memory
        registry's retention); non-terminal jobs are always kept.
        """
        with self._lock:
            if snapshots is None:
                snapshots = self.replay_jobs()
            retained = list(snapshots.values())
            if max_terminal is not None:
                terminal = [snapshot for snapshot in retained
                            if snapshot["state"] is not None]
                excess = len(terminal) - max_terminal
                if excess > 0:
                    dropped = set(map(id, terminal[:excess]))
                    retained = [snapshot for snapshot in retained
                                if id(snapshot) not in dropped]
            records: List[Dict[str, Any]] = []
            for snapshot in retained:
                records.append(snapshot["submit"])
                if snapshot["state"] is not None:
                    records.append(snapshot["state"])
            count = self._journal.rewrite(records)
            self._appends_since_compact = 0
        return count

    def maybe_compact(self, max_terminal: Optional[int] = None) -> bool:
        """Compact when enough appends have accumulated since the last.

        The rewrite keeps one submit (+ one state) record per retained
        job — dropping superseded duplicates, torn garbage, and the
        oldest terminal jobs beyond ``max_terminal`` — which is what
        bounds the file across a long daemon lifetime.
        """
        with self._lock:
            if self._appends_since_compact < COMPACT_EVERY_APPENDS:
                return False
            self.compact(max_terminal=max_terminal)
        return True

    def close(self) -> None:
        self._journal.close()

    def info(self) -> Dict[str, Any]:
        payload = self._journal.info()
        with self._lock:
            payload["appends_since_compact"] = self._appends_since_compact
        return payload
