"""A typed stdlib client for the ``repro serve`` daemon.

:class:`ServeClient` speaks the daemon's HTTP/JSON API with nothing but
``http.client``: submit specs, poll jobs, fetch results, cancel, tail
JSONL streams.  It is what the tests, the shipped example, and future
distributed workers use instead of hand-rolling requests::

    client = ServeClient(port=8642)
    job = client.submit(json.load(open("examples/explore_edgaze.json")))
    done = client.wait(job["id"])
    result = client.result(job["id"])["result"]

Every request uses its own connection (the daemon is
``Connection: close``), so one client is safe to share across threads.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Any, Dict, Iterator, List, Optional

from repro.serve.jobs import TERMINAL_STATES

#: Job states the client treats as "no further change coming".
TERMINAL_STATE_NAMES = frozenset(state.value for state in TERMINAL_STATES)


class ServeError(Exception):
    """A typed error response (or transport failure) from the daemon."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message} (HTTP {status})")
        self.status = status
        self.error_type = error_type
        self.message = message


class ServeTimeout(ServeError):
    """A :meth:`ServeClient.wait` deadline expired."""

    def __init__(self, job_id: str, timeout: float, state: str) -> None:
        Exception.__init__(
            self, f"job {job_id} still {state} after {timeout:g}s")
        self.status = 0
        self.error_type = "Timeout"
        self.message = str(self)


class ServeClient:
    """Programmatic surface over one daemon address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout: float = 30.0, stream_reconnects: int = 5,
                 stream_backoff_s: float = 0.05,
                 stream_backoff_max_s: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.stream_reconnects = stream_reconnects
        self.stream_backoff_s = stream_backoff_s
        self.stream_backoff_max_s = stream_backoff_max_s

    @classmethod
    def from_url(cls, url: str, *, timeout: float = 30.0) -> "ServeClient":
        """A client from a ``http://host:port`` base URL."""
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r}")
        host = parsed.hostname or "127.0.0.1"
        port = parsed.port or 8642
        return cls(host=host, port=port, timeout=timeout)

    # --- plumbing ---------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        """A fresh connection with Nagle's algorithm disabled.

        ``http.client`` sends request headers and body in separate
        writes; with Nagle on, the body write stalls behind the peer's
        delayed ACK (~40 ms) on every POST — which is most of a
        dispatch worker's claim/complete cycle on a fast network.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        connection.connect()
        connection.sock.setsockopt(socket.IPPROTO_TCP,
                                   socket.TCP_NODELAY, 1)
        return connection

    def _request(self, method: str, path: str,
                 payload: Optional[Any] = None) -> Any:
        connection = self._connect()
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            document = json.loads(raw) if raw else None
            if response.status >= 400:
                error = (document or {}).get("error", {})
                raise ServeError(response.status,
                                 error.get("type", "HTTPError"),
                                 error.get("message", raw.decode(
                                     "utf-8", "replace")))
            return document
        finally:
            connection.close()

    # --- service endpoints ------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    # --- job lifecycle ----------------------------------------------------

    def submit(self, spec: Dict[str, Any],
               kind: Optional[str] = None) -> Dict[str, Any]:
        """Submit a design (``repro.design/1`` scenario) or explore spec.

        ``kind`` (``"run"``/``"explore"``) overrides the daemon's
        schema-based inference.  Returns the job status document.
        """
        payload = {"kind": kind, "spec": spec} if kind is not None else spec
        return self._request("POST", "/jobs", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        """The job's current status document."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished result envelope; raises 409 until terminal."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; returns the (possibly updated) status."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_s: float = 0.05,
             max_poll_s: float = 2.0) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status.

        The poll interval starts at ``poll_s`` and doubles up to
        ``max_poll_s`` — snappy for short jobs, gentle on the daemon
        for long ones — and never sleeps past the deadline.
        """
        deadline = time.monotonic() + timeout
        interval = poll_s
        while True:
            document = self.job(job_id)
            if document["state"] in TERMINAL_STATE_NAMES:
                return document
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeTimeout(job_id, timeout, document["state"])
            time.sleep(min(interval, remaining))
            interval = min(interval * 2, max_poll_s)

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Tail the job's JSONL stream; yields event dicts until done.

        Explore jobs yield ``{"event": "point", ...}`` per finished
        point (in space order) and finally ``{"event": "done", ...}``
        carrying the terminal job document.  A connection dropped
        mid-stream is retried up to ``stream_reconnects`` consecutive
        times under capped exponential backoff (``stream_backoff_s``
        doubling up to ``stream_backoff_max_s``), resuming each time at
        the server-side cursor of the last event consumed — nothing is
        replayed or lost.  The budget resets whenever a reconnection
        actually makes progress, so a long stream over a flaky link
        survives any number of *spread-out* drops; only
        ``stream_reconnects + 1`` failures in a row with no event in
        between raise the typed ``ConnectionLost`` :class:`ServeError`.
        """
        seen = 0  # real events consumed (cursor currency; see handlers)
        drops = 0  # consecutive transport failures since last progress
        while True:
            progressed = False
            try:
                for event in self._stream_once(job_id, cursor=seen):
                    if event.get("event") != "truncated":
                        seen += 1
                        progressed = True
                    yield event
                return
            except (http.client.HTTPException, OSError) as error:
                # ServeError (a typed daemon response) is not caught
                # here and propagates immediately; only transport-level
                # drops draw from the reconnect budget.
                if progressed:
                    drops = 0
                drops += 1
                if drops > self.stream_reconnects:
                    raise ServeError(
                        0, "ConnectionLost",
                        f"stream for {job_id} dropped {drops} times "
                        f"without progress: {error}") from error
                time.sleep(min(
                    self.stream_backoff_s * (2.0 ** (drops - 1)),
                    self.stream_backoff_max_s))

    def _stream_once(self, job_id: str,
                     cursor: int = 0) -> Iterator[Dict[str, Any]]:
        """One streaming connection, resumed from ``cursor``."""
        connection = self._connect()
        try:
            connection.request(
                "GET",
                f"/jobs/{job_id}/stream?format=jsonl&cursor={cursor}")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                error = {}
                try:
                    error = (json.loads(raw) or {}).get("error", {})
                except json.JSONDecodeError:
                    pass
                raise ServeError(response.status,
                                 error.get("type", "HTTPError"),
                                 error.get("message", raw.decode(
                                     "utf-8", "replace")))
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()
