"""Request routing and endpoint logic of the ``repro serve`` daemon.

The transport (:mod:`repro.serve.app`) parses raw HTTP into a
:class:`Request` and writes the :class:`Response` back; everything in
between — routing, spec validation, error shaping, the streaming
generators — lives here, transport-agnostic and directly testable.

Endpoints::

    GET    /healthz             liveness + uptime
    GET    /stats               queue depth, job counts, cache/pass/pool state
    POST   /jobs                submit a design, explore, or robust spec
                                -> job id
    GET    /jobs                all known jobs (status documents)
    GET    /jobs/<id>           one job's status + progress
    GET    /jobs/<id>/result    the finished result (409 until terminal)
    GET    /jobs/<id>/stream    incremental results as JSONL (or SSE)
    POST   /jobs/<id>/cancel    request cancellation
    DELETE /jobs/<id>           alias for cancel

With ``--dispatch`` the daemon additionally coordinates remote
``repro worker`` processes (404 ``DispatchDisabled`` otherwise)::

    GET    /dispatch            work queue + worker liveness document
    POST   /dispatch/register   admit a worker -> id + lease protocol
    POST   /dispatch/claim      lease a task batch to a worker
    POST   /dispatch/complete   accept results for still-held leases
    POST   /dispatch/heartbeat  renew worker liveness + listed leases
    POST   /dispatch/deregister graceful goodbye, leases released

Every error body is typed JSON: ``{"error": {"type", "message"}}``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, Optional

from repro.api.registry import available_usecases
from repro.api.spec import scenario_from_spec
from repro.exceptions import CamJError
from repro.explore.spec import (EXPLORATION_SPEC_SCHEMA,
                                exploration_spec_from_dict)
from repro.robust.spec import ROBUST_SPEC_SCHEMA, robust_spec_from_dict
from repro.serve.jobs import (TERMINAL_STATES, Job, JobQueue, JobState,
                              QueueClosed)

#: Largest request body the daemon accepts.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Schema tags of the daemon's own response documents.
STATS_SCHEMA = "repro.serve-stats/1"
JOB_SCHEMA = "repro.serve-job/1"

#: Seconds between polls of a job's stream buffer while live-tailing.
STREAM_POLL_S = 0.05


class ApiError(Exception):
    """A typed HTTP error the transport renders as a JSON body."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.message = message

    def to_payload(self) -> Dict[str, Any]:
        return {"error": {"type": self.error_type, "message": self.message}}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class Response:
    """What a handler hands back to the transport.

    Exactly one of ``payload`` (buffered JSON) or ``stream`` (an async
    byte-chunk iterator, written incrementally) is set.
    """

    status: int = 200
    payload: Optional[Any] = None
    stream: Optional[AsyncIterator[bytes]] = None
    content_type: str = "application/json"


async def dispatch(app, request: Request) -> Response:
    """Route one request; raises :class:`ApiError` for every failure."""
    parts = [part for part in request.path.split("/") if part]
    if parts == ["healthz"]:
        _require_method(request, "GET")
        return Response(payload=handle_healthz(app))
    if parts == ["stats"]:
        _require_method(request, "GET")
        return Response(payload=handle_stats(app))
    if parts == ["jobs"]:
        if request.method == "POST":
            return await handle_submit(app, request)
        _require_method(request, "GET")
        return Response(payload=handle_list_jobs(app))
    if len(parts) >= 2 and parts[0] == "jobs":
        job = _job_or_404(app.queue, parts[1])
        if len(parts) == 2:
            if request.method == "DELETE":
                return Response(payload=handle_cancel(app, job))
            _require_method(request, "GET")
            return Response(payload=job_document(job))
        if len(parts) == 3 and parts[2] == "result":
            _require_method(request, "GET")
            return Response(payload=handle_result(app, job))
        if len(parts) == 3 and parts[2] == "cancel":
            _require_method(request, "POST")
            return Response(payload=handle_cancel(app, job))
        if len(parts) == 3 and parts[2] == "stream":
            _require_method(request, "GET")
            return stream_response(job, _stream_format(request),
                                   _stream_cursor(request))
    if parts and parts[0] == "dispatch" and len(parts) <= 2:
        return Response(payload=handle_dispatch(app, request, parts[1:]))
    raise ApiError(404, "NotFound", f"no such endpoint: {request.path}")


def _require_method(request: Request, method: str) -> None:
    if request.method != method:
        raise ApiError(405, "MethodNotAllowed",
                       f"{request.path} supports {method}, "
                       f"got {request.method}")


def _job_or_404(queue: JobQueue, job_id: str) -> Job:
    job = queue.get(job_id)
    if job is None:
        raise ApiError(404, "UnknownJob", f"no such job: {job_id}")
    return job


def _stream_format(request: Request) -> str:
    explicit = request.query.get("format")
    if explicit in ("jsonl", "sse"):
        return explicit
    if explicit is not None:
        raise ApiError(400, "BadFormat",
                       f"format must be 'jsonl' or 'sse', got {explicit!r}")
    accept = request.headers.get("accept", "")
    return "sse" if "text/event-stream" in accept else "jsonl"


def _stream_cursor(request: Request) -> int:
    """The ``?cursor=N`` resume offset (0 = from the beginning).

    Cursors are absolute event indices — what a reconnecting client
    already consumed — so a dropped connection resumes where it left
    off instead of replaying (or worse, re-counting) the prefix.
    """
    raw = request.query.get("cursor")
    if raw is None:
        return 0
    try:
        cursor = int(raw)
    except ValueError:
        raise ApiError(400, "BadCursor",
                       f"cursor must be an integer, got {raw!r}") from None
    if cursor < 0:
        raise ApiError(400, "BadCursor",
                       f"cursor must be >= 0, got {cursor}")
    return cursor


# --- endpoint bodies -------------------------------------------------------

def handle_healthz(app) -> Dict[str, Any]:
    return {"status": "ok", "uptime_s": app.uptime_s}


def handle_stats(app) -> Dict[str, Any]:
    """Everything a dashboard wants about the shared session and queue."""
    simulator = app.queue.simulator
    return {
        "schema": STATS_SCHEMA,
        "uptime_s": app.uptime_s,
        "requests_served": app.requests_served,
        "workers": app.queue.workers,
        "chunk_size": app.queue.chunk_size,
        "queue_depth": app.queue.depth,
        "jobs": app.queue.counts(),
        "cache": dataclasses.asdict(simulator.cache_info()),
        "passes": simulator.pass_info(),
        "pools": simulator.pool_info(),
        "resilience": simulator.resilience_info(),
        "engines": app.queue.engine_totals(),
        "journal": app.queue.journal_info(),
        "executor": simulator.executor_info(),
        "dispatch": (app.dispatch.describe()
                     if getattr(app, "dispatch", None) is not None
                     else None),
    }


def handle_dispatch(app, request: Request, parts) -> Dict[str, Any]:
    """The worker-facing lease protocol endpoints.

    All queue methods are fast lock-protected operations, safe to run
    on the event loop.  An unknown (or superseded) worker id is a typed
    409 ``UnknownWorker`` — the worker's cue to re-register, which is
    how the fleet survives a coordinator restart.
    """
    queue = getattr(app, "dispatch", None)
    if queue is None:
        raise ApiError(404, "DispatchDisabled",
                       "this daemon was started without --dispatch")
    if not parts:
        _require_method(request, "GET")
        return queue.describe()
    action = parts[0]
    if action not in ("register", "claim", "complete", "heartbeat",
                      "deregister"):
        raise ApiError(404, "NotFound",
                       f"no such endpoint: {request.path}")
    _require_method(request, "POST")
    payload = _dispatch_payload(request)
    try:
        if action == "register":
            return queue.register_worker(payload.get("meta") or {
                key: value for key, value in payload.items()
                if key in ("pid", "host", "executor")})
        worker_id = payload.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise ApiError(400, "InvalidSpec",
                           "'worker_id' (string) is required")
        if action == "claim":
            max_tasks = payload.get("max_tasks", 1)
            if not isinstance(max_tasks, int) or max_tasks < 1:
                raise ApiError(400, "InvalidSpec",
                               f"'max_tasks' must be a positive integer, "
                               f"got {max_tasks!r}")
            return {"tasks": queue.claim(worker_id, max_tasks)}
        if action == "complete":
            results = payload.get("results")
            if not isinstance(results, list) or any(
                    not isinstance(item, dict) or "task_id" not in item
                    or "result" not in item for item in results):
                raise ApiError(400, "InvalidSpec",
                               "'results' must be a list of objects with "
                               "'task_id' and 'result'")
            return queue.complete(worker_id, results)
        if action == "heartbeat":
            task_ids = payload.get("task_ids") or []
            if not isinstance(task_ids, list):
                raise ApiError(400, "InvalidSpec",
                               "'task_ids' must be a list")
            return queue.heartbeat(worker_id, task_ids)
        return queue.deregister_worker(worker_id)
    except KeyError as error:
        raise ApiError(409, "UnknownWorker",
                       f"no such worker: {error.args[0]}; "
                       f"re-register") from error


def _dispatch_payload(request: Request) -> Dict[str, Any]:
    if not request.body:
        return {}
    try:
        payload = json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ApiError(400, "InvalidJSON",
                       f"request body is not valid JSON: {error}") \
            from error
    if not isinstance(payload, dict):
        raise ApiError(400, "InvalidSpec",
                       f"dispatch body must be a JSON object, "
                       f"got {type(payload).__name__}")
    return payload


def job_document(job: Job) -> Dict[str, Any]:
    """The status document of one job, schema-tagged and linked."""
    payload = job.to_dict()
    payload["schema"] = JOB_SCHEMA
    payload["links"] = {
        "self": f"/jobs/{job.id}",
        "result": f"/jobs/{job.id}/result",
        "stream": f"/jobs/{job.id}/stream",
        "cancel": f"/jobs/{job.id}/cancel",
    }
    return payload


async def handle_submit(app, request: Request) -> Response:
    """Parse, validate, and enqueue one submitted spec.

    The body is either a bare spec (design/scenario, explore, or
    robust) or an envelope ``{"kind": "run"|"explore"|"robust",
    "spec": {...}}``.  Without an explicit kind, robust specs are
    recognized by their schema tag or a robust ``kind`` key, explore
    specs by their schema tag or a ``space`` key.  Bad specs are typed
    400s; building the design happens off the event loop — structural
    payloads can be large.
    """
    import asyncio

    if len(request.body) > MAX_BODY_BYTES:
        raise ApiError(413, "PayloadTooLarge",
                       f"request body exceeds {MAX_BODY_BYTES} bytes")
    try:
        payload = json.loads(request.body.decode("utf-8") or "null")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ApiError(400, "InvalidJSON",
                       f"request body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ApiError(400, "InvalidSpec",
                       f"spec must be a JSON object, "
                       f"got {type(payload).__name__}")
    kind = None
    spec = payload
    if "spec" in payload:
        spec = payload["spec"]
        kind = payload.get("kind")
        if not isinstance(spec, dict):
            raise ApiError(400, "InvalidSpec",
                           f"'spec' must be a JSON object, "
                           f"got {type(spec).__name__}")
        if kind is not None and kind not in ("run", "explore", "robust"):
            raise ApiError(400, "InvalidSpec",
                           f"kind must be 'run', 'explore', or 'robust', "
                           f"got {kind!r}")
    if kind is None:
        if spec.get("schema") == ROBUST_SPEC_SCHEMA or (
                "variation" in spec and "kind" in spec):
            kind = "robust"
        elif spec.get("schema") == EXPLORATION_SPEC_SCHEMA \
                or "space" in spec:
            kind = "explore"
        else:
            kind = "run"

    parse = {"explore": _parse_explore_spec,
             "robust": _parse_robust_spec}.get(kind, _parse_run_spec)
    parsed = await asyncio.get_running_loop().run_in_executor(
        None, parse, spec)
    try:
        if kind == "explore":
            job = app.queue.submit_explore(parsed)
        elif kind == "robust":
            job = app.queue.submit_robust(parsed)
        else:
            design, options = parsed
            job = app.queue.submit_run(design, options)
    except QueueClosed as error:
        raise ApiError(503, "ShuttingDown", str(error)) from error
    return Response(status=202, payload=job_document(job))


def _parse_explore_spec(spec: Dict[str, Any]):
    try:
        parsed = exploration_spec_from_dict(spec)
    except CamJError as error:
        raise ApiError(400, type(error).__name__, str(error)) from error
    if parsed.usecase not in available_usecases():
        raise ApiError(
            400, "ConfigurationError",
            f"unknown usecase {parsed.usecase!r}; "
            f"available: {available_usecases()}")
    return parsed


def _parse_robust_spec(spec: Dict[str, Any]):
    try:
        parsed = robust_spec_from_dict(spec)
    except CamJError as error:
        raise ApiError(400, type(error).__name__, str(error)) from error
    if parsed.usecase is not None \
            and parsed.usecase not in available_usecases():
        raise ApiError(
            400, "ConfigurationError",
            f"unknown usecase {parsed.usecase!r}; "
            f"available: {available_usecases()}")
    return parsed


def _parse_run_spec(spec: Dict[str, Any]):
    try:
        return scenario_from_spec(spec)
    except CamJError as error:
        raise ApiError(400, type(error).__name__, str(error)) from error


def handle_list_jobs(app) -> Dict[str, Any]:
    return {"jobs": [job_document(job) for job in app.queue.jobs()]}


def handle_result(app, job: Job) -> Dict[str, Any]:
    """The finished payload: a SimResult or ExplorationResult document."""
    with job.lock:
        state, result, error = job.state, job.result, job.error
    if state not in TERMINAL_STATES:
        raise ApiError(409, "JobNotFinished",
                       f"job {job.id} is {state.value}; poll /jobs/{job.id}")
    if state is not JobState.DONE:
        detail = f": {error['type']}: {error['message']}" if error else ""
        raise ApiError(409, "JobNotDone",
                       f"job {job.id} finished {state.value}{detail}")
    return {"id": job.id, "kind": job.kind, "result": result}


def handle_cancel(app, job: Job) -> Dict[str, Any]:
    app.queue.cancel(job.id)
    return job_document(job)


# --- streaming -------------------------------------------------------------

def stream_response(job: Job, fmt: str, start: int = 0) -> Response:
    """Tail a job's event stream as JSONL or SSE until it seals."""
    content_type = ("text/event-stream" if fmt == "sse"
                    else "application/x-ndjson")
    return Response(stream=_stream_events(job, fmt, start),
                    content_type=content_type)


def _encode_event(event: Dict[str, Any], fmt: str) -> bytes:
    document = json.dumps(event, sort_keys=True)
    if fmt == "sse":
        return (f"event: {event.get('event', 'message')}\n"
                f"data: {document}\n\n").encode("utf-8")
    return (document + "\n").encode("utf-8")


async def _stream_events(job: Job, fmt: str,
                         start: int = 0) -> AsyncIterator[bytes]:
    """Replay the job's buffer from ``start``, then tail it live.

    Subscribing after completion replays everything and returns at
    once; a live subscriber polls the buffer — cheap reads under the
    job lock — until the terminal ``done`` event seals it.  A cursor
    below the buffer's retained window gets one synthetic
    ``truncated`` event describing the gap (see
    :class:`~repro.serve.progress.StreamBuffer`).
    """
    import asyncio

    cursor = start
    while True:
        events, cursor, closed = job.stream.read_from(cursor)
        for event in events:
            yield _encode_event(event, fmt)
        if closed and not events:
            return
        if not events:
            await asyncio.sleep(STREAM_POLL_S)
