"""The ``repro serve`` daemon: an asyncio HTTP/JSON simulation service.

One :class:`ServeApp` owns one :class:`repro.api.Simulator` session and
one :class:`repro.serve.jobs.JobQueue`; the HTTP layer here is a thin
hand-rolled HTTP/1.1 transport over ``asyncio.start_server`` — the
whole daemon is stdlib-only.  Connections are one-request
(``Connection: close``), which keeps parsing trivial and plays fine
with polling clients; streaming endpoints hold their connection open
and write JSONL/SSE chunks as results land.

``ServeApp.run()`` is the blocking entry point the CLI uses: it
installs SIGINT/SIGTERM handlers, optionally writes a ready-file with
the bound address (how CI scripts find an ephemeral port), and shuts
down cleanly — queue flushed to terminal states, session terminally
closed — when signalled.  :class:`BackgroundServer` runs the same app
on a private event-loop thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from repro.api.result import SimOptions
from repro.api.simulator import Simulator
from repro.serve.handlers import (ApiError, MAX_BODY_BYTES, Request,
                                  Response, dispatch)
from repro.serve.jobs import (DEFAULT_CHUNK_SIZE, DEFAULT_WORKERS,
                              JobQueue)

#: Default bind address of the daemon.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Reason phrases for the status codes the daemon emits.
_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: Patience for reading one request off a connection.
_REQUEST_TIMEOUT_S = 60.0


class ServeApp:
    """The long-lived simulation service.

    All constructor knobs mirror the ``repro serve`` CLI flags.  The
    shared session uses the thread executor — daemon jobs already
    overlap in its pool, and thread workers share the in-memory cache
    tier directly.  ``cache_dir=None`` keeps the ``REPRO_CACHE_DIR``
    default resolution of :class:`Simulator`.
    """

    def __init__(self, *, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT,
                 workers: int = DEFAULT_WORKERS,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 options: Optional[SimOptions] = None,
                 cache_dir: Optional[str] = None,
                 max_workers: Optional[int] = None,
                 executor: str = "thread",
                 journal_dir: Optional[str] = None,
                 dispatch: bool = False,
                 lease_ttl_s: Optional[float] = None,
                 heartbeat_s: Optional[float] = None) -> None:
        self.host = host
        self.port = port
        self.dispatch = None
        simulator_kwargs: Dict[str, Any] = {"max_workers": max_workers,
                                            "executor": executor}
        if dispatch:
            # Coordinator mode: the shared session executes through the
            # lease-based work queue that the /dispatch endpoints feed.
            from repro.exec.distributed import DistributedExecutor
            from repro.exec.queue import WorkQueue
            self.dispatch = WorkQueue(lease_ttl_s=lease_ttl_s,
                                      heartbeat_s=heartbeat_s)
            simulator_kwargs["executor"] = \
                DistributedExecutor(self.dispatch)
        if cache_dir is not None:
            simulator_kwargs["cache_dir"] = cache_dir
        self.simulator = Simulator(options, **simulator_kwargs)
        journal = None
        if journal_dir is not None:
            from repro.serve.journal import JobJournal
            journal = JobJournal(journal_dir)
        self.queue = JobQueue(self.simulator, workers=workers,
                              chunk_size=chunk_size, journal=journal)
        self.requests_served = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._started_monotonic: Optional[float] = None

    # --- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the queue workers.

        With a journal, interrupted work from a previous daemon life is
        re-admitted *before* the socket binds — a client that connects
        right after restart already sees the recovered jobs.
        """
        self._started_monotonic = time.monotonic()
        await self.queue.start()
        self.queue.recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        # Ephemeral binds (port 0) resolve here.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: no new work, flush jobs, close the session."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.close()
        if self.queue.journal is not None:
            self.queue.journal.close()
        self.simulator.close(terminal=True)

    @property
    def uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def run(self, ready_file: Optional[str] = None,
            announce: bool = True) -> None:
        """Serve until SIGINT/SIGTERM; the CLI entry point."""
        asyncio.run(self._run_until_signal(ready_file, announce))

    async def _run_until_signal(self, ready_file: Optional[str],
                                announce: bool) -> None:
        await self.start()
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platforms without loop signals
        try:
            if announce:
                mode = "dispatch, " if self.dispatch is not None else ""
                print(f"repro serve listening on {self.url} "
                      f"({mode}workers={self.queue.workers}, "
                      f"pid={os.getpid()})", flush=True)
            if ready_file:
                self._write_ready_file(ready_file)
            await stop_event.wait()
            if announce:
                print("repro serve shutting down...", flush=True)
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()

    def _write_ready_file(self, path: str) -> None:
        """Atomically publish the bound address (ephemeral-port rendezvous)."""
        document = json.dumps({"host": self.host, "port": self.port,
                               "url": self.url, "pid": os.getpid()})
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        os.replace(tmp, path)

    # --- the HTTP transport -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), timeout=_REQUEST_TIMEOUT_S)
            except asyncio.TimeoutError:
                return
            except ApiError as error:
                await self._write_response(
                    writer, Response(status=error.status,
                                     payload=error.to_payload()))
                return
            if request is None:
                return
            self.requests_served += 1
            try:
                response = await dispatch(self, request)
            except ApiError as error:
                response = Response(status=error.status,
                                    payload=error.to_payload())
            except Exception as error:  # noqa: BLE001 - last-resort shield
                response = Response(
                    status=500,
                    payload={"error": {"type": type(error).__name__,
                                       "message": str(error)}})
            await self._write_response(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Request]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, target, _version = \
                request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise ApiError(400, "BadRequestLine",
                           "malformed HTTP request line") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ApiError(400, "BadContentLength",
                           "Content-Length must be an integer") from None
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "PayloadTooLarge",
                           f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length > 0 else b""
        path, _, raw_query = target.partition("?")
        query = {name: values[-1] for name, values
                 in urllib.parse.parse_qs(raw_query).items()}
        return Request(method=method.upper(),
                       path=urllib.parse.unquote(path),
                       query=query, headers=headers, body=body)

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: Response) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [f"HTTP/1.1 {response.status} {reason}",
                f"Content-Type: {response.content_type}",
                "Connection: close"]
        if response.stream is None:
            body = (json.dumps(response.payload, sort_keys=True)
                    + "\n").encode("utf-8")
            head.append(f"Content-Length: {len(body)}")
            writer.write("\r\n".join(head).encode("latin-1")
                         + b"\r\n\r\n" + body)
            await writer.drain()
            return
        head.append("Cache-Control: no-store")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n")
        await writer.drain()
        async for chunk in response.stream:
            writer.write(chunk)
            await writer.drain()


class BackgroundServer:
    """A :class:`ServeApp` on a private event-loop thread.

    The in-process harness tests and benchmarks drive real HTTP
    through::

        with BackgroundServer(workers=2) as server:
            client = server.client()
            job = client.submit(spec)

    Defaults to an ephemeral port.  Exiting the context performs the
    same graceful shutdown as a signalled daemon; the app object stays
    inspectable afterwards (``server.app.queue.jobs()``).
    """

    def __init__(self, **app_kwargs: Any) -> None:
        app_kwargs.setdefault("port", 0)
        self._app_kwargs = app_kwargs
        self.app: Optional[ServeApp] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-bg", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise RuntimeError("background server failed to start in time")
        if self._error is not None:
            raise RuntimeError("background server failed to start") \
                from self._error
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60.0)
        return False

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surface startup failures
            self._error = error
            self._ready.set()

    async def _amain(self) -> None:
        self.app = ServeApp(**self._app_kwargs)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.app.start()
        except BaseException as error:
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.app.stop()

    @property
    def address(self) -> Tuple[str, int]:
        assert self.app is not None
        return self.app.host, self.app.port

    @property
    def url(self) -> str:
        assert self.app is not None
        return self.app.url

    def client(self, timeout: float = 30.0):
        from repro.serve.client import ServeClient
        host, port = self.address
        return ServeClient(host=host, port=port, timeout=timeout)
