"""The ISSCC/IEDM CIS design survey behind Fig. 1 and Fig. 3.

The paper surveys every CIS paper published at ISSCC and IEDM between 2000
and 2022 and derives two motivating trends:

* **Fig. 1** — the share of *computational* CIS (and, within those,
  *stacked* computational CIS) grows steadily at the expense of pure
  imaging designs;
* **Fig. 3** — the CIS process node starts lagging the IRDS CMOS roadmap
  around Year 2000 with a widening gap, and its scaling slope tracks the
  pixel-pitch slope (pixels cannot shrink without losing photons).

The embedded dataset is a synthetic reconstruction of those survey
statistics: per-year design counts and (year, node) / (year, pitch) scatter
points whose regression slopes reproduce the published trends.
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.exceptions import ConfigurationError


class YearCounts(NamedTuple):
    """Surveyed CIS papers of one year, split by design style."""

    year: int
    imaging: int
    computational: int
    stacked_computational: int

    @property
    def total(self) -> int:
        return self.imaging + self.computational + self.stacked_computational


class DesignPoint(NamedTuple):
    """One surveyed design: publication year and a numeric attribute."""

    year: int
    value: float


def _build_counts() -> Tuple[YearCounts, ...]:
    """Per-year counts following Fig. 1's published shape.

    The computational share ramps from a few percent around 2000 to about
    half of all CIS papers by 2022, with stacked computational designs
    emerging around 2012 and growing to roughly a fifth of the total.
    """
    counts: List[YearCounts] = []
    for year in range(2000, 2023):
        progress = (year - 2000) / 22.0
        total = 9 + round(5 * progress) + (year % 3)
        computational_share = 0.05 + 0.45 * progress ** 1.2
        stacked_share = 0.0 if year < 2012 else 0.22 * ((year - 2012) / 10.0)
        stacked = round(total * stacked_share)
        computational = max(0, round(total * computational_share) - stacked)
        imaging = total - computational - stacked
        counts.append(YearCounts(year=year, imaging=imaging,
                                 computational=computational,
                                 stacked_computational=stacked))
    return tuple(counts)


def _scatter(year: int, index: int) -> float:
    """Deterministic multiplicative scatter in roughly [0.8, 1.25]."""
    phase = math.sin(7.31 * year + 13.7 * index)
    return 1.25 ** phase


def _build_node_points() -> Tuple[DesignPoint, ...]:
    """CIS process nodes by year: ~350 nm in 2000 easing to ~65 nm by 2022.

    The halving period is far slower than the CMOS roadmap's ~2 years;
    leading designs occasionally dip lower (stacked logic dies), trailing
    ones stay on very old nodes.
    """
    points: List[DesignPoint] = []
    for year in range(2000, 2023):
        trend = 350.0 * 0.5 ** ((year - 2000) / 9.0)
        for index in range(4):
            points.append(DesignPoint(year=year,
                                      value=trend * _scatter(year, index)))
    return tuple(points)


def _build_pitch_points() -> Tuple[DesignPoint, ...]:
    """Pixel pitches by year: ~7 um in 2000 easing to ~1.2 um by 2022.

    The same gentle halving period as the CIS node — the correlation the
    paper reads off Fig. 3.
    """
    points: List[DesignPoint] = []
    for year in range(2000, 2023):
        trend = 7.0 * 0.5 ** ((year - 2000) / 9.0)
        for index in range(3):
            points.append(DesignPoint(year=year,
                                      value=trend * _scatter(year, index + 7)))
    return tuple(points)


SURVEY_COUNTS: Sequence[YearCounts] = _build_counts()
CIS_NODE_POINTS: Sequence[DesignPoint] = _build_node_points()
PIXEL_PITCH_POINTS: Sequence[DesignPoint] = _build_pitch_points()

#: IRDS / ITRS CMOS logic node by year (nm), the blue line of Fig. 3.
IRDS_NODE_BY_YEAR: Dict[int, float] = {
    2000: 180, 2002: 130, 2004: 90, 2006: 65, 2008: 45, 2010: 32,
    2012: 22, 2014: 14, 2016: 10, 2018: 7, 2020: 5, 2022: 3,
}


def percentages_by_year() -> List[Dict[str, float]]:
    """The Fig. 1 series: normalized percentage per design style per year."""
    series = []
    for counts in SURVEY_COUNTS:
        total = counts.total
        series.append({
            "year": counts.year,
            "imaging": 100.0 * counts.imaging / total,
            "computational": 100.0 * counts.computational / total,
            "stacked_computational":
                100.0 * counts.stacked_computational / total,
        })
    return series


def _log_linear_slope(points: Sequence[DesignPoint]) -> Tuple[float, float]:
    """Least-squares fit of ``log2(value) = slope * year + intercept``.

    The slope's negative reciprocal is the halving period in years.
    """
    n = len(points)
    if n < 2:
        raise ConfigurationError("trend fit needs at least two points")
    xs = [p.year for p in points]
    ys = [math.log2(p.value) for p in points]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    slope = cov / var
    intercept = mean_y - slope * mean_x
    return slope, intercept


def cis_node_trend() -> Tuple[float, float]:
    """``(slope, intercept)`` of log2(CIS node) vs year."""
    return _log_linear_slope(CIS_NODE_POINTS)


def pixel_pitch_trend() -> Tuple[float, float]:
    """``(slope, intercept)`` of log2(pixel pitch) vs year."""
    return _log_linear_slope(PIXEL_PITCH_POINTS)


def irds_node(year: int) -> float:
    """IRDS CMOS node at ``year`` (step-wise, latest milestone)."""
    milestones = sorted(IRDS_NODE_BY_YEAR)
    if year < milestones[0]:
        raise ConfigurationError(
            f"IRDS roadmap starts at {milestones[0]}, got {year}")
    node = IRDS_NODE_BY_YEAR[milestones[0]]
    for milestone in milestones:
        if milestone <= year:
            node = IRDS_NODE_BY_YEAR[milestone]
    return node


def node_gap_by_year() -> List[Dict[str, float]]:
    """The Fig. 3 gap: fitted CIS node vs IRDS node, per roadmap year."""
    slope, intercept = cis_node_trend()
    rows = []
    for year in sorted(IRDS_NODE_BY_YEAR):
        fitted_cis = 2.0 ** (slope * year + intercept)
        rows.append({
            "year": year,
            "cis_node_nm": fitted_cis,
            "irds_node_nm": irds_node(year),
            "gap_ratio": fitted_cis / irds_node(year),
        })
    return rows
