"""CIS design-trend survey (Fig. 1 and Fig. 3 of the paper)."""

from repro.survey.cis_trends import (
    YearCounts,
    DesignPoint,
    SURVEY_COUNTS,
    CIS_NODE_POINTS,
    PIXEL_PITCH_POINTS,
    IRDS_NODE_BY_YEAR,
    percentages_by_year,
    cis_node_trend,
    pixel_pitch_trend,
    irds_node,
    node_gap_by_year,
)

__all__ = [
    "YearCounts",
    "DesignPoint",
    "SURVEY_COUNTS",
    "CIS_NODE_POINTS",
    "PIXEL_PITCH_POINTS",
    "IRDS_NODE_BY_YEAR",
    "percentages_by_year",
    "cis_node_trend",
    "pixel_pitch_trend",
    "irds_node",
    "node_gap_by_year",
]
