"""Analytical 6T SRAM energy/area model (DESTINY [57] stand-in).

The model captures the first-order physics CamJ needs:

* dynamic read energy: partial bitline swing on every column plus full-swing
  wordline, scaled by array geometry and node capacitance;
* dynamic write energy: full bitline swing on the written columns;
* leakage power: per-cell subthreshold current, following the node leakage
  factor (the 65 nm leakage bump matters for the paper's Findings 1–3);
* area: bitcell area times cell count plus periphery overhead.

Geometry is derived from capacity and word width the way memory compilers
do: a near-square macro with one row activated per access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import units
from repro.exceptions import ConfigurationError
from repro.tech.nodes import ProcessNode, get_node

#: Per-cell bitline capacitance contribution at 65 nm.
_BITLINE_CAP_PER_CELL_65NM = 0.08 * units.fF
#: Per-cell wordline capacitance contribution at 65 nm.
_WORDLINE_CAP_PER_CELL_65NM = 0.05 * units.fF
#: Read bitline swing as a fraction of Vdd (sense-amp limited).
_READ_SWING_FRACTION = 0.15
#: Periphery (decoder, sense amps, drivers) energy overhead factor.
_PERIPHERY_OVERHEAD = 1.6
#: Effective per-cell leakage current at 65 nm.  This is a DESTINY-style
#: *macro* number: it folds the periphery (decoders, sense amps, drivers)
#: into the per-cell figure, which is why it sits well above a bare 6T
#: cell's subthreshold current.  High 65 nm SRAM leakage is load-bearing
#: for the paper's Findings 1-3 (the Ed-Gaze frame buffer cannot be
#: power-gated, so leakage dominates the in-sensor energy).
_LEAKAGE_CURRENT_PER_CELL_65NM = 6.0 * units.nA
#: 6T bitcell area at 65 nm.
_BITCELL_AREA_65NM = 0.525 * units.um2
#: Periphery area overhead factor.
_AREA_OVERHEAD = 1.35


#: Cell-type adjustments relative to the 6T baseline.  8T cells decouple
#: the read port: slightly cheaper reads, one extra transistor of leakage,
#: and ~30 % more area — the customized-8T-vs-standard-6T mismatch the
#: paper calls out for the TCAS-I'22 chip (Sec. 5).
_CELL_TYPES = {
    "6T": {"read": 1.0, "write": 1.0, "leakage": 1.0, "area": 1.0},
    "8T": {"read": 0.8, "write": 1.05, "leakage": 1.33, "area": 1.3},
}


@dataclass
class SRAMModel:
    """Energy/area model of one SRAM macro.

    Parameters
    ----------
    capacity_bytes:
        Total macro capacity in bytes.
    word_bits:
        Access word width in bits (columns activated per access).
    node_nm:
        Process node the macro is fabricated in.
    cell_type:
        ``"6T"`` (standard, default) or ``"8T"`` (decoupled read port).
    """

    capacity_bytes: float
    word_bits: int = 64
    node_nm: float = 65
    cell_type: str = "6T"
    _node: ProcessNode = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"SRAM capacity must be positive, got {self.capacity_bytes}")
        if self.word_bits < 1:
            raise ConfigurationError(
                f"SRAM word width must be >= 1 bit, got {self.word_bits}")
        total_bits = self.capacity_bytes * 8
        if total_bits < self.word_bits:
            raise ConfigurationError(
                f"SRAM capacity ({self.capacity_bytes} B) smaller than one "
                f"word ({self.word_bits} bits)")
        if self.cell_type not in _CELL_TYPES:
            known = ", ".join(sorted(_CELL_TYPES))
            raise ConfigurationError(
                f"unknown SRAM cell type {self.cell_type!r}; "
                f"supported: {known}")
        self._node = get_node(self.node_nm)

    @property
    def _cell_factors(self) -> dict:
        return _CELL_TYPES[self.cell_type]

    # --- geometry -----------------------------------------------------------

    @property
    def total_cells(self) -> int:
        """Number of 6T bitcells in the macro."""
        return int(self.capacity_bytes * 8)

    @property
    def num_rows(self) -> int:
        """Rows in the (near-square) cell array; one row fires per access."""
        words = self.total_cells / self.word_bits
        rows = int(round(math.sqrt(words * self.word_bits) / math.sqrt(
            self.word_bits)))
        return max(1, rows)

    @property
    def num_columns(self) -> int:
        """Columns in the cell array (multiple words may share a row)."""
        return max(self.word_bits,
                   int(math.ceil(self.total_cells / self.num_rows)))

    # --- capacitances ---------------------------------------------------------

    def _feature_ratio(self) -> float:
        return self._node.feature_nm / 65.0

    def _bitline_capacitance(self) -> float:
        """Capacitance of one full bitline (scales with rows and node)."""
        return (_BITLINE_CAP_PER_CELL_65NM * self._feature_ratio()
                * self.num_rows)

    def _wordline_capacitance(self) -> float:
        """Capacitance of one full wordline (scales with columns and node)."""
        return (_WORDLINE_CAP_PER_CELL_65NM * self._feature_ratio()
                * self.num_columns)

    # --- energies -------------------------------------------------------------

    @property
    def read_energy_per_word(self) -> float:
        """Energy of one word read: partial bitline swing + wordline."""
        vdd = self._node.vdd
        bitline = (self._bitline_capacitance() * vdd
                   * (vdd * _READ_SWING_FRACTION) * self.word_bits)
        wordline = self._wordline_capacitance() * vdd ** 2
        return ((bitline + wordline) * _PERIPHERY_OVERHEAD
                * self._cell_factors["read"])

    @property
    def write_energy_per_word(self) -> float:
        """Energy of one word write: full bitline swing + wordline."""
        vdd = self._node.vdd
        bitline = self._bitline_capacitance() * vdd ** 2 * self.word_bits
        wordline = self._wordline_capacitance() * vdd ** 2
        return ((bitline + wordline) * _PERIPHERY_OVERHEAD
                * self._cell_factors["write"])

    @property
    def read_energy_per_byte(self) -> float:
        """Per-byte read energy, for interfaces that bill by the byte."""
        return self.read_energy_per_word / (self.word_bits / 8.0)

    @property
    def write_energy_per_byte(self) -> float:
        """Per-byte write energy."""
        return self.write_energy_per_word / (self.word_bits / 8.0)

    @property
    def leakage_power(self) -> float:
        """Static leakage power of the whole macro when not power-gated."""
        per_cell_current = (_LEAKAGE_CURRENT_PER_CELL_65NM
                            * self._node.leakage_factor
                            * self._cell_factors["leakage"])
        return per_cell_current * self._node.vdd * self.total_cells

    @property
    def area(self) -> float:
        """Macro silicon area in square meters."""
        cell_area = (_BITCELL_AREA_65NM * self._node.area_factor
                     * self._cell_factors["area"])
        return cell_area * self.total_cells * _AREA_OVERHEAD

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"SRAM {self.capacity_bytes / units.KB:.1f} KB @ "
                f"{self.node_nm:.0f} nm: "
                f"read {units.format_energy(self.read_energy_per_word)}/word, "
                f"write {units.format_energy(self.write_energy_per_word)}/word, "
                f"leak {units.format_power(self.leakage_power)}")
