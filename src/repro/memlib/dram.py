"""Simple stacked-DRAM access model.

Three-layer stacked CIS (Sony IMX 400 [25]) put a DRAM layer between the
pixel and logic layers.  CamJ only needs a per-byte access energy plus
refresh power, so a first-order model suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.exceptions import ConfigurationError

#: Typical stacked-DRAM access energy (activation + IO over short 3D hops).
_ACCESS_ENERGY_PER_BYTE = 4.0 * units.pJ
#: Refresh power per megabyte (64 ms retention, low-power mode).
_REFRESH_POWER_PER_MB = 40.0 * units.uW


@dataclass
class DRAMModel:
    """Energy model of one stacked-DRAM layer."""

    capacity_bytes: float
    access_energy_per_byte: float = _ACCESS_ENERGY_PER_BYTE

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"DRAM capacity must be positive, got {self.capacity_bytes}")
        if self.access_energy_per_byte <= 0:
            raise ConfigurationError(
                "DRAM access energy must be positive, got "
                f"{self.access_energy_per_byte}")

    @property
    def read_energy_per_byte(self) -> float:
        """Per-byte read energy."""
        return self.access_energy_per_byte

    @property
    def write_energy_per_byte(self) -> float:
        """Per-byte write energy."""
        return self.access_energy_per_byte

    @property
    def refresh_power(self) -> float:
        """Standing refresh power for the whole layer."""
        return _REFRESH_POWER_PER_MB * (self.capacity_bytes / units.MB)

    def access_energy(self, num_bytes: float) -> float:
        """Dynamic energy of moving ``num_bytes`` in or out of the DRAM."""
        if num_bytes < 0:
            raise ConfigurationError(
                f"byte count must be non-negative, got {num_bytes}")
        return num_bytes * self.access_energy_per_byte
