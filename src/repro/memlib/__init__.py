"""Memory-technology substrate.

Analytical stand-ins for the external memory modeling tools the paper uses:
DESTINY [57] for SRAM, NVMExplorer [55] for STT-RAM, plus a simple DRAM
interface model for three-layer stacked designs (Sony IMX 400 style).

Each model exposes the same scalar interface CamJ consumes: per-word read
energy, per-word write energy, leakage power, and area.
"""

from repro.memlib.sram import SRAMModel
from repro.memlib.sttram import STTRAMModel
from repro.memlib.dram import DRAMModel

__all__ = ["SRAMModel", "STTRAMModel", "DRAMModel"]
