"""Analytical STT-RAM energy/area model (NVMExplorer [55] stand-in).

The paper's 3D-In-STT configuration replaces the compute-layer SRAM with
STT-RAM to remove frame-buffer leakage (Sec. 6.2).  The qualitative contract
this model must honor:

* reads cost about the same order as SRAM reads;
* writes are markedly more expensive (spin-torque switching current);
* leakage is near zero — only CMOS periphery leaks, not the cell array;
* bitcells are denser than 6T SRAM.

Like NVMExplorer, the model refuses tiny capacities where the periphery
would dominate beyond the model's validity (the paper notes NVMExplorer
cannot model Rhythmic's 2 KB memory, which is why Fig. 9a has no STT bar).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.exceptions import ConfigurationError
from repro.memlib.sram import SRAMModel

#: Minimum capacity NVM macro the model supports (matches the paper's note
#: that the 2 KB Rhythmic memory is below what NVMExplorer handles).
MIN_CAPACITY_BYTES = 4 * units.KB

#: Read energy relative to an equally-sized SRAM.
_READ_RATIO = 1.2
#: Write energy relative to an equally-sized SRAM (spin-torque switching).
_WRITE_RATIO = 6.0
#: Leakage relative to an equally-sized SRAM (periphery only).
_LEAKAGE_RATIO = 0.015
#: Bitcell area relative to a 6T SRAM cell.
_AREA_RATIO = 0.45


@dataclass
class STTRAMModel:
    """Energy/area model of one STT-RAM macro.

    Internally derives its scalars from an SRAM macro of identical geometry,
    applying NVM read/write/leakage/area ratios — the same relative-contrast
    approach cross-stack NVM comparisons use.
    """

    capacity_bytes: float
    word_bits: int = 64
    node_nm: float = 22
    _sram: SRAMModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes < MIN_CAPACITY_BYTES:
            raise ConfigurationError(
                f"STT-RAM model supports >= {MIN_CAPACITY_BYTES / units.KB:.0f}"
                f" KB macros, got {self.capacity_bytes / units.KB:.2f} KB "
                f"(periphery-dominated small macros are out of model range)")
        self._sram = SRAMModel(capacity_bytes=self.capacity_bytes,
                               word_bits=self.word_bits,
                               node_nm=self.node_nm)

    @property
    def total_cells(self) -> int:
        """Number of 1T-1MTJ bitcells in the macro."""
        return self._sram.total_cells

    @property
    def read_energy_per_word(self) -> float:
        """Energy of one word read."""
        return self._sram.read_energy_per_word * _READ_RATIO

    @property
    def write_energy_per_word(self) -> float:
        """Energy of one word write (dominated by MTJ switching)."""
        return self._sram.write_energy_per_word * _WRITE_RATIO

    @property
    def read_energy_per_byte(self) -> float:
        """Per-byte read energy."""
        return self.read_energy_per_word / (self.word_bits / 8.0)

    @property
    def write_energy_per_byte(self) -> float:
        """Per-byte write energy."""
        return self.write_energy_per_word / (self.word_bits / 8.0)

    @property
    def leakage_power(self) -> float:
        """Near-zero leakage: the MTJ array is non-volatile."""
        return self._sram.leakage_power * _LEAKAGE_RATIO

    @property
    def area(self) -> float:
        """Macro silicon area in square meters."""
        return self._sram.area * _AREA_RATIO

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"STT-RAM {self.capacity_bytes / units.KB:.1f} KB @ "
                f"{self.node_nm:.0f} nm: "
                f"read {units.format_energy(self.read_energy_per_word)}/word, "
                f"write {units.format_energy(self.write_energy_per_word)}/word, "
                f"leak {units.format_power(self.leakage_power)}")
