"""Per-node technology parameters.

Each :class:`ProcessNode` carries the relative factors needed by the energy
model: dynamic energy per operation, leakage power per device, area per
device, and gate delay — all normalized to the 65 nm node, which is the node
the paper's reference MAC synthesis result [5] comes from.

The factors follow the published scaling-equation trends [60, 64]:

* dynamic energy tracks ``C * Vdd^2`` with ``C`` shrinking linearly in the
  feature size and ``Vdd`` flattening below 45 nm;
* leakage *peaks* around 90–65 nm (pre high-k/metal-gate), the anomaly the
  paper cites from Gielen & Dehaene [20] to explain why a 65 nm 2D-In design
  can consume more energy than its 130 nm counterpart;
* area tracks the square of the feature size;
* delay tracks the feature size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ProcessNode:
    """Technology parameters of one CMOS process node.

    All ``*_factor`` attributes are unitless ratios normalized to 65 nm.
    """

    feature_nm: float
    vdd: float
    energy_factor: float
    leakage_factor: float
    area_factor: float
    delay_factor: float

    def __post_init__(self) -> None:
        for name in ("feature_nm", "vdd", "energy_factor",
                     "leakage_factor", "area_factor", "delay_factor"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(
                    f"ProcessNode.{name} must be positive, got {value}")


def _node(feature_nm: float, vdd: float, leakage_factor: float) -> ProcessNode:
    """Build a node with energy/area/delay factors derived from scaling laws."""
    reference_feature = 65.0
    reference_vdd = 1.1
    energy_factor = ((feature_nm / reference_feature)
                     * (vdd / reference_vdd) ** 2)
    area_factor = (feature_nm / reference_feature) ** 2
    delay_factor = feature_nm / reference_feature
    return ProcessNode(
        feature_nm=feature_nm,
        vdd=vdd,
        energy_factor=energy_factor,
        leakage_factor=leakage_factor,
        area_factor=area_factor,
        delay_factor=delay_factor,
    )


#: Leakage factors encode the pre-high-k leakage bump peaking at 65 nm.
NODE_TABLE = {
    180: _node(180.0, 1.8, 0.06),
    130: _node(130.0, 1.3, 0.18),
    110: _node(110.0, 1.2, 0.35),
    90: _node(90.0, 1.1, 0.65),
    65: _node(65.0, 1.1, 1.00),
    45: _node(45.0, 1.0, 0.55),
    40: _node(40.0, 1.0, 0.50),
    32: _node(32.0, 0.95, 0.42),
    28: _node(28.0, 0.90, 0.38),
    22: _node(22.0, 0.85, 0.30),
    16: _node(16.0, 0.80, 0.22),
    14: _node(14.0, 0.80, 0.20),
    10: _node(10.0, 0.75, 0.16),
    7: _node(7.0, 0.70, 0.13),
}

SUPPORTED_NODES = tuple(sorted(NODE_TABLE))


def get_node(feature_nm: float) -> ProcessNode:
    """Look up a process node by its feature size in nanometers.

    Raises :class:`ConfigurationError` for nodes outside the table; the
    framework deliberately refuses to extrapolate silently.
    """
    key = int(round(feature_nm))
    if key not in NODE_TABLE:
        supported = ", ".join(str(n) for n in SUPPORTED_NODES)
        raise ConfigurationError(
            f"unsupported process node {feature_nm} nm; "
            f"supported nodes: {supported}")
    return NODE_TABLE[key]
