"""Process/voltage/temperature (PVT) corner physics.

The scaling tables in :mod:`repro.tech.nodes` describe the *typical*
(TT, nominal VDD, 25 C) silicon every nominal simulation assumes.  Real
silicon arrives spread around that point, and sign-off evaluates the
spread at named corners: slow/fast process splits, +/-10% supply, and
the hot/cold temperature extremes.  This module holds the physics that
turns one such corner into multiplicative factors on the quantities the
energy model actually consumes — dynamic energy, leakage power, and
achievable clock — so higher layers (:mod:`repro.robust`) can map them
onto concrete design parameters without re-deriving CMOS first
principles.

The factor models are the standard first-order ones:

* dynamic energy follows ``C * V^2``, so a supply ratio ``v`` scales it
  by ``v**2`` on top of a process capacitance spread;
* subthreshold leakage is exponential in temperature — it roughly
  doubles every :data:`LEAKAGE_DOUBLING_C` degrees — and strongly
  process-split dependent (fast silicon means short channels and low
  thresholds);
* gate delay improves with overdrive, so clock scales roughly linearly
  with the supply ratio around nominal, shifted by the process split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ConfigurationError

#: Recognized process splits: slow-slow, typical, fast-fast.
PROCESS_SPLITS = ("ss", "tt", "ff")

#: Temperature at which the leakage tables are characterized.
NOMINAL_TEMP_C = 25.0

#: Leakage roughly doubles for every this many degrees of heating.
LEAKAGE_DOUBLING_C = 30.0

#: Switched-capacitance spread of the process split (SS -> +8%).
PROCESS_ENERGY_SPREAD = 0.08

#: Achievable-frequency spread of the process split (SS -> -10%).
PROCESS_SPEED_SPREAD = 0.10

#: Leakage multiplier of the fast split (FF leaks ~2x TT; SS ~0.5x).
PROCESS_LEAKAGE_SPREAD = 2.0

#: Sign convention of a split: SS = +1 (slow, high-C, low-leak),
#: FF = -1 (fast, low-C, high-leak).
_SPLIT_SIGN = {"ss": 1.0, "tt": 0.0, "ff": -1.0}


@dataclass(frozen=True)
class PvtPoint:
    """One named (process, voltage, temperature) operating point.

    ``vdd_ratio`` is the supply relative to nominal (1.0 = nominal,
    0.9 = -10%); ``temp_c`` is the junction temperature in Celsius.
    """

    name: str
    process: str = "tt"
    vdd_ratio: float = 1.0
    temp_c: float = NOMINAL_TEMP_C

    def __post_init__(self) -> None:
        if self.process not in PROCESS_SPLITS:
            raise ConfigurationError(
                f"corner {self.name!r}: process must be one of "
                f"{PROCESS_SPLITS}, got {self.process!r}")
        if not self.vdd_ratio > 0:
            raise ConfigurationError(
                f"corner {self.name!r}: vdd_ratio must be > 0, "
                f"got {self.vdd_ratio}")

    # --- first-order factor models ---------------------------------------

    def dynamic_energy_factor(self) -> float:
        """Switching-energy multiplier: process C spread times ``V^2``."""
        spread = 1.0 + _SPLIT_SIGN[self.process] * PROCESS_ENERGY_SPREAD
        return spread * self.vdd_ratio ** 2

    def leakage_power_factor(self) -> float:
        """Static-power multiplier: exponential in T, split dependent."""
        split = PROCESS_LEAKAGE_SPREAD ** (-_SPLIT_SIGN[self.process])
        thermal = 2.0 ** ((self.temp_c - NOMINAL_TEMP_C)
                          / LEAKAGE_DOUBLING_C)
        return split * thermal * self.vdd_ratio

    def clock_factor(self) -> float:
        """Achievable-clock multiplier: overdrive and process speed."""
        spread = 1.0 - _SPLIT_SIGN[self.process] * PROCESS_SPEED_SPREAD
        return spread * self.vdd_ratio

    def supply_factor(self) -> float:
        """Analog supply/swing multiplier (rails track VDD directly)."""
        return self.vdd_ratio


def standard_pvt_points() -> Tuple[PvtPoint, ...]:
    """The classic five-corner sign-off set.

    Typical plus the four (process split x supply x temperature)
    extremes: slow silicon at low supply brackets speed and dynamic
    energy, fast silicon at high supply and heat brackets leakage.
    """
    return (
        PvtPoint("TT", "tt", 1.0, NOMINAL_TEMP_C),
        PvtPoint("SS-Vmin-hot", "ss", 0.9, 125.0),
        PvtPoint("SS-Vmin-cold", "ss", 0.9, -40.0),
        PvtPoint("FF-Vmax-hot", "ff", 1.1, 125.0),
        PvtPoint("FF-Vmax-cold", "ff", 1.1, -40.0),
    )
