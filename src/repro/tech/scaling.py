"""Scaling of reference energies, leakage, area, and delay between nodes.

CamJ asks users for per-access energies of digital structures at whatever
node their reference design was characterized in; these helpers move such a
number to another node, the way the paper scales the 65 nm synthesized MAC
energy [5] to the other nodes in Table 2 and Section 6.
"""

from __future__ import annotations

from repro import units
from repro.tech.nodes import get_node

#: The node the paper's reference MAC synthesis result comes from [5].
REFERENCE_NODE_NM = 65

#: Per-MAC energy of the 65 nm synthesized 8-bit MAC unit the paper uses.
#: The reference design is the ultra-low-power CNN processor of Bong et
#: al. [5] (a 0.62 mW always-on chip), hence sub-pJ per MAC.
REFERENCE_MAC_ENERGY_65NM = 0.65 * units.pJ


def scale_energy(energy: float, from_nm: float, to_nm: float) -> float:
    """Scale a dynamic per-operation energy from one node to another."""
    source = get_node(from_nm)
    target = get_node(to_nm)
    return energy * target.energy_factor / source.energy_factor


def scale_leakage_power(power: float, from_nm: float, to_nm: float) -> float:
    """Scale a leakage power from one node to another.

    Unlike dynamic energy, leakage is non-monotonic in the feature size: it
    peaks at 65 nm (see :mod:`repro.tech.nodes`).
    """
    source = get_node(from_nm)
    target = get_node(to_nm)
    return power * target.leakage_factor / source.leakage_factor


def scale_area(area: float, from_nm: float, to_nm: float) -> float:
    """Scale a silicon area from one node to another (quadratic in feature)."""
    source = get_node(from_nm)
    target = get_node(to_nm)
    return area * target.area_factor / source.area_factor


def scale_delay(delay: float, from_nm: float, to_nm: float) -> float:
    """Scale a gate delay from one node to another (linear in feature)."""
    source = get_node(from_nm)
    target = get_node(to_nm)
    return delay * target.delay_factor / source.delay_factor


def mac_energy(node_nm: float) -> float:
    """Per-MAC energy at ``node_nm``, scaled from the 65 nm reference."""
    return scale_energy(REFERENCE_MAC_ENERGY_65NM, REFERENCE_NODE_NM, node_nm)
