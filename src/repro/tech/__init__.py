"""Process-technology substrate.

Stand-in for the classic CMOS scaling equations (Stillmaker & Baas [64],
DeepScaleTool [60]) the paper uses to move per-operation energies between
process nodes, including the well-known 65 nm leakage anomaly [20] that
drives Finding 1/2 of the paper.
"""

from repro.tech.nodes import (
    ProcessNode,
    NODE_TABLE,
    SUPPORTED_NODES,
    get_node,
)
from repro.tech.corners import (
    PvtPoint,
    PROCESS_SPLITS,
    LEAKAGE_DOUBLING_C,
    NOMINAL_TEMP_C,
    standard_pvt_points,
)
from repro.tech.scaling import (
    scale_energy,
    scale_leakage_power,
    scale_area,
    scale_delay,
    REFERENCE_MAC_ENERGY_65NM,
    REFERENCE_NODE_NM,
    mac_energy,
)

__all__ = [
    "ProcessNode",
    "NODE_TABLE",
    "SUPPORTED_NODES",
    "get_node",
    "PvtPoint",
    "PROCESS_SPLITS",
    "LEAKAGE_DOUBLING_C",
    "NOMINAL_TEMP_C",
    "standard_pvt_points",
    "scale_energy",
    "scale_leakage_power",
    "scale_area",
    "scale_delay",
    "REFERENCE_MAC_ENERGY_65NM",
    "REFERENCE_NODE_NM",
    "mac_energy",
]
