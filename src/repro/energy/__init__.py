"""Energy models (Sec. 4) and the per-component energy report."""

from repro.energy.report import (
    Category,
    EnergyEntry,
    EnergyReport,
)
from repro.energy.analog_model import analog_energy
from repro.energy.digital_model import digital_energy
from repro.energy.comm_model import communication_energy

__all__ = [
    "Category",
    "EnergyEntry",
    "EnergyReport",
    "analog_energy",
    "digital_energy",
    "communication_energy",
]
