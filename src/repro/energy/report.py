"""The component-level energy report CamJ produces.

Entries are tagged with the categories the paper's figures roll up to:
``SEN`` (pixel sensing and A/D conversion), analog compute/memory
(``COMP-A``/``MEM-A``), digital compute/memory (``COMP-D``/``MEM-D``), and
the two communication interfaces (``MIPI``/``uTSV``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import units
from repro.exceptions import ConfigurationError


class Category(enum.Enum):
    """Roll-up category of one energy entry (Fig. 9 / Fig. 11 legends)."""

    SEN = "SEN"
    COMP_A = "COMP-A"
    MEM_A = "MEM-A"
    COMP_D = "COMP-D"
    MEM_D = "MEM-D"
    MIPI = "MIPI"
    UTSV = "uTSV"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class EnergyEntry:
    """Energy attributed to one hardware component."""

    name: str
    category: Category
    layer: str
    energy: float
    stage: Optional[str] = None

    def __post_init__(self) -> None:
        if self.energy < 0:
            raise ConfigurationError(
                f"energy entry {self.name!r}: energy must be non-negative, "
                f"got {self.energy}")


@dataclass(frozen=True)
class VectorEntry:
    """Column-oriented :class:`EnergyEntry`: one component across a batch.

    ``energy`` is either a NumPy array (one element per explored point)
    or a plain float for components whose energy does not depend on the
    swept options; arithmetic broadcasts either way.  Produced by the
    batch energy models (``analog_energy_batch`` et al.) and consumed by
    the vectorized explore path, which materializes per-point
    :class:`EnergyEntry` rows from it on demand.
    """

    name: str
    category: Category
    layer: str
    energy: Any
    stage: Optional[str] = None


@dataclass
class EnergyReport:
    """Per-frame energy breakdown of a simulated sensor system.

    The report also carries the timing facts the energy depends on so that
    downstream analyses (power density, per-stage normalization) need no
    re-simulation.
    """

    system_name: str
    frame_rate: float
    frame_time: float
    digital_latency: float
    analog_stage_delay: float
    entries: List[EnergyEntry] = field(default_factory=list)

    # --- accumulation ----------------------------------------------------------

    def add(self, entry: EnergyEntry) -> None:
        """Append one entry."""
        self.entries.append(entry)

    def extend(self, entries) -> None:
        """Append many entries."""
        self.entries.extend(entries)

    # --- rollups --------------------------------------------------------------

    @property
    def total_energy(self) -> float:
        """Total energy per frame (Eq. 1)."""
        return sum(e.energy for e in self.entries)

    @property
    def total_power(self) -> float:
        """Average power at the configured frame rate."""
        return self.total_energy * self.frame_rate

    def by_category(self) -> Dict[Category, float]:
        """Energy per roll-up category (absent categories omitted)."""
        rollup: Dict[Category, float] = {}
        for entry in self.entries:
            rollup[entry.category] = rollup.get(entry.category, 0.0) \
                + entry.energy
        return rollup

    def by_layer(self) -> Dict[str, float]:
        """Energy per layer of the stack."""
        rollup: Dict[str, float] = {}
        for entry in self.entries:
            rollup[entry.layer] = rollup.get(entry.layer, 0.0) + entry.energy
        return rollup

    def by_component(self) -> Dict[str, float]:
        """Energy per named hardware component."""
        rollup: Dict[str, float] = {}
        for entry in self.entries:
            rollup[entry.name] = rollup.get(entry.name, 0.0) + entry.energy
        return rollup

    def by_stage(self) -> Dict[str, float]:
        """Energy per algorithm stage, for stage-attributed entries."""
        rollup: Dict[str, float] = {}
        for entry in self.entries:
            if entry.stage is None:
                continue
            rollup[entry.stage] = rollup.get(entry.stage, 0.0) + entry.energy
        return rollup

    def category_energy(self, category: Category) -> float:
        """Energy of one category (0 when absent)."""
        return self.by_category().get(category, 0.0)

    @property
    def communication_energy(self) -> float:
        """MIPI + uTSV energy (Eq. 17 result)."""
        return (self.category_energy(Category.MIPI)
                + self.category_energy(Category.UTSV))

    @property
    def analog_energy(self) -> float:
        """SEN + analog compute + analog memory."""
        return (self.category_energy(Category.SEN)
                + self.category_energy(Category.COMP_A)
                + self.category_energy(Category.MEM_A))

    @property
    def digital_energy(self) -> float:
        """Digital compute + digital memory."""
        return (self.category_energy(Category.COMP_D)
                + self.category_energy(Category.MEM_D))

    def energy_per_pixel(self, num_pixels: int) -> float:
        """Total frame energy normalized per pixel (Fig. 7's metric)."""
        if num_pixels < 1:
            raise ConfigurationError(
                f"pixel count must be >= 1, got {num_pixels}")
        return self.total_energy / num_pixels

    # --- rendering --------------------------------------------------------------

    def to_table(self) -> str:
        """Human-readable per-category table."""
        lines = [f"Energy report — {self.system_name} @ "
                 f"{self.frame_rate:g} FPS",
                 f"  frame time    {units.format_time(self.frame_time)}",
                 f"  total energy  {units.format_energy(self.total_energy)} "
                 f"({units.format_power(self.total_power)})"]
        rollup = self.by_category()
        total = self.total_energy or 1.0
        for category in Category:
            if category not in rollup:
                continue
            energy = rollup[category]
            lines.append(f"  {category.value:<7} "
                         f"{units.format_energy(energy):>12}  "
                         f"({100.0 * energy / total:5.1f}%)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form, for downstream tooling and archiving."""
        return {
            "system": self.system_name,
            "frame_rate": self.frame_rate,
            "frame_time": self.frame_time,
            "digital_latency": self.digital_latency,
            "analog_stage_delay": self.analog_stage_delay,
            "total_energy": self.total_energy,
            "entries": [
                {
                    "name": entry.name,
                    "category": entry.category.value,
                    "layer": entry.layer,
                    "energy": entry.energy,
                    "stage": entry.stage,
                }
                for entry in self.entries
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EnergyReport":
        """Inverse of :meth:`to_dict`."""
        try:
            report = cls(system_name=payload["system"],
                         frame_rate=payload["frame_rate"],
                         frame_time=payload["frame_time"],
                         digital_latency=payload["digital_latency"],
                         analog_stage_delay=payload["analog_stage_delay"])
            for raw in payload["entries"]:
                report.add(EnergyEntry(
                    name=raw["name"],
                    category=Category(raw["category"]),
                    layer=raw["layer"],
                    energy=raw["energy"],
                    stage=raw.get("stage")))
        except (KeyError, ValueError) as error:
            raise ConfigurationError(
                f"malformed energy-report payload: {error}") from error
        return report

    def __repr__(self) -> str:
        return (f"EnergyReport({self.system_name!r}, "
                f"total={units.format_energy(self.total_energy)})")
