"""Digital energy modeling (Sec. 4.3, Eqs. 14–16).

Compute energy is per-cycle energy times simulated cycle counts (Eq. 15);
memory energy is dynamic read/write energy times simulated access counts
plus leakage over the powered fraction of the frame (Eq. 16).
"""

from __future__ import annotations

from typing import List
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sim
    from repro.sim.cycle_sim import DigitalTimeline


from repro.energy.report import Category, EnergyEntry, VectorEntry
from repro.exceptions import VectorUnsupported
from repro.hw.chip import SensorSystem


def digital_energy(system: SensorSystem, timeline: DigitalTimeline,
                   frame_time: float) -> List[EnergyEntry]:
    """Per-unit digital energy entries for one frame (Eq. 14)."""
    entries: List[EnergyEntry] = []
    entries.extend(_compute_entries(system, timeline))
    entries.extend(_memory_entries(system, timeline, frame_time))
    return entries


def _compute_entries(system: SensorSystem, timeline: DigitalTimeline
                     ) -> List[EnergyEntry]:
    by_unit = {unit.name: unit for unit in system.compute_units}
    entries = []
    for activity in timeline.activities:
        unit = by_unit[activity.unit_name]
        entries.append(EnergyEntry(
            name=activity.unit_name,
            category=Category.COMP_D,
            layer=unit.layer,
            energy=activity.energy,
            stage=activity.stage_name))
    return entries


def _memory_entries(system: SensorSystem, timeline: DigitalTimeline,
                    frame_time: float) -> List[EnergyEntry]:
    entries = []
    for memory in system.memories:
        reads = timeline.memory_reads.get(memory.name, 0.0)
        writes = timeline.memory_writes.get(memory.name, 0.0)
        dynamic = memory.read_energy(reads) + memory.write_energy(writes)
        leakage = memory.leakage_energy(frame_time)
        if dynamic == 0.0 and leakage == 0.0:
            continue
        if reads == 0.0 and writes == 0.0 and memory.duty_alpha == 0.0:
            continue
        entries.append(EnergyEntry(
            name=memory.name,
            category=Category.MEM_D,
            layer=memory.layer,
            energy=dynamic + leakage,
            stage=timeline.memory_stage.get(memory.name)))
    return entries


def digital_energy_batch(system: SensorSystem, timeline: DigitalTimeline,
                         frame_time) -> List[VectorEntry]:
    """Vector mirror of :func:`digital_energy`: ``frame_time`` is a vector.

    Compute entries are option-independent (the timeline is a design-only
    pass), so they pass through as constants; memory leakage replays the
    stock :meth:`~repro.hw.digital.memory.DigitalMemory.leakage_energy`
    formula element-wise — the method itself starts with a scalar
    positivity check and cannot take an array, so overriding subclasses
    raise :class:`VectorUnsupported` (the explore engine pre-screens for
    this before routing a group here).

    The scalar model skips a memory when its dynamic energy and leakage
    are both zero; leakage is ``P_leak * t_frame * alpha`` with
    ``t_frame > 0``, so that condition is option-independent too
    (``P_leak == 0 or alpha == 0``) and skipped entries match per point.
    """
    from repro.hw.digital.memory import DigitalMemory

    entries: List[VectorEntry] = []
    by_unit = {unit.name: unit for unit in system.compute_units}
    for activity in timeline.activities:
        unit = by_unit[activity.unit_name]
        entries.append(VectorEntry(
            name=activity.unit_name,
            category=Category.COMP_D,
            layer=unit.layer,
            energy=activity.energy,
            stage=activity.stage_name))
    for memory in system.memories:
        if getattr(type(memory), "leakage_energy", None) \
                is not DigitalMemory.leakage_energy:
            raise VectorUnsupported(
                f"memory {getattr(memory, 'name', memory)!r} overrides "
                f"leakage_energy")
        reads = timeline.memory_reads.get(memory.name, 0.0)
        writes = timeline.memory_writes.get(memory.name, 0.0)
        dynamic = memory.read_energy(reads) + memory.write_energy(writes)
        leakage_is_zero = (memory.leakage_power == 0.0
                           or memory.duty_alpha == 0.0)
        if dynamic == 0.0 and leakage_is_zero:
            continue
        if reads == 0.0 and writes == 0.0 and memory.duty_alpha == 0.0:
            continue
        leakage = memory.leakage_power * frame_time * memory.duty_alpha
        entries.append(VectorEntry(
            name=memory.name,
            category=Category.MEM_D,
            layer=memory.layer,
            energy=dynamic + leakage,
            stage=timeline.memory_stage.get(memory.name)))
    return entries
