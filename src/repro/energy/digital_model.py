"""Digital energy modeling (Sec. 4.3, Eqs. 14–16).

Compute energy is per-cycle energy times simulated cycle counts (Eq. 15);
memory energy is dynamic read/write energy times simulated access counts
plus leakage over the powered fraction of the frame (Eq. 16).
"""

from __future__ import annotations

from typing import List
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sim
    from repro.sim.cycle_sim import DigitalTimeline


from repro.energy.report import Category, EnergyEntry
from repro.hw.chip import SensorSystem


def digital_energy(system: SensorSystem, timeline: DigitalTimeline,
                   frame_time: float) -> List[EnergyEntry]:
    """Per-unit digital energy entries for one frame (Eq. 14)."""
    entries: List[EnergyEntry] = []
    entries.extend(_compute_entries(system, timeline))
    entries.extend(_memory_entries(system, timeline, frame_time))
    return entries


def _compute_entries(system: SensorSystem, timeline: DigitalTimeline
                     ) -> List[EnergyEntry]:
    by_unit = {unit.name: unit for unit in system.compute_units}
    entries = []
    for activity in timeline.activities:
        unit = by_unit[activity.unit_name]
        entries.append(EnergyEntry(
            name=activity.unit_name,
            category=Category.COMP_D,
            layer=unit.layer,
            energy=activity.energy,
            stage=activity.stage_name))
    return entries


def _memory_entries(system: SensorSystem, timeline: DigitalTimeline,
                    frame_time: float) -> List[EnergyEntry]:
    entries = []
    for memory in system.memories:
        reads = timeline.memory_reads.get(memory.name, 0.0)
        writes = timeline.memory_writes.get(memory.name, 0.0)
        dynamic = memory.read_energy(reads) + memory.write_energy(writes)
        leakage = memory.leakage_energy(frame_time)
        if dynamic == 0.0 and leakage == 0.0:
            continue
        if reads == 0.0 and writes == 0.0 and memory.duty_alpha == 0.0:
            continue
        entries.append(EnergyEntry(
            name=memory.name,
            category=Category.MEM_D,
            layer=memory.layer,
            energy=dynamic + leakage,
            stage=timeline.memory_stage.get(memory.name)))
    return entries
