"""Communication energy modeling (Sec. 4.4, Eq. 17).

Two interfaces are billed by the byte: MIPI CSI-2 for data leaving the
sensor package and the micro-TSV hops between stacked layers.  Data volume
follows from the algorithm description and the mapping: every DAG edge
whose endpoints are mapped to hardware on different layers moves the
producer's output bytes across the corresponding interface, and sink
stages that finish on-chip ship their (possibly ROI-compressed) result to
the host over MIPI.
"""

from __future__ import annotations

from typing import Dict, List, Optional
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sim
    from repro.sim.mapping import Mapping


from repro.energy.report import Category, EnergyEntry
from repro.hw.chip import SensorSystem
from repro.hw.layer import OFF_CHIP
from repro.sw.dag import StageGraph


def communication_energy(graph: StageGraph, system: SensorSystem,
                         mapping: Mapping, *,
                         resolved: Optional[Dict[str, object]] = None
                         ) -> List[EnergyEntry]:
    """MIPI and uTSV energy entries for one frame (Eq. 17).

    ``resolved`` accepts a pre-computed ``mapping.resolve`` result so the
    engine resolves the mapping exactly once per run.
    """
    if resolved is None:
        resolved = mapping.resolve(graph, system)
    entries: List[EnergyEntry] = []

    for producer, consumer in graph.edges():
        p_unit = resolved[producer.name]
        c_unit = resolved[consumer.name]
        hops = _layer_path(p_unit, c_unit)
        if len(hops) < 2:
            continue
        num_bytes = producer.output_bytes
        if OFF_CHIP in hops:
            interface = system.offchip_interface
            category = Category.MIPI
            num_crossings = 1  # one package boundary, however routed
        else:
            interface = system.interlayer_interface
            category = Category.UTSV
            num_crossings = len(hops) - 1
        entries.append(EnergyEntry(
            name=f"{interface.name}:{producer.name}->{consumer.name}",
            category=category,
            layer=p_unit.layer,
            energy=interface.energy(num_bytes) * num_crossings,
            stage=producer.name))

    # Results produced on-chip leave via the off-chip interface.
    for sink in graph.sinks:
        unit = resolved[sink.name]
        if unit.layer == OFF_CHIP:
            continue
        interface = system.offchip_interface
        entries.append(EnergyEntry(
            name=f"{interface.name}:{sink.name}->host",
            category=Category.MIPI,
            layer=unit.layer,
            energy=interface.energy(sink.output_bytes),
            stage=sink.name))
    return entries


def _layer_path(producer_unit, consumer_unit):
    """Ordered distinct layers data traverses between two units.

    Data flows producer layer → (layer of the memory the consumer reads
    from, for digital consumers) → consumer layer.  In a three-layer
    stack (pixel / DRAM / logic) a pixel-to-ISP edge therefore crosses
    two micro-TSV hops.
    """
    layers = [producer_unit.layer]
    input_memories = getattr(consumer_unit, "input_memories", None)
    if input_memories:
        memory_layer = input_memories[0].layer
        if memory_layer != layers[-1]:
            layers.append(memory_layer)
    if consumer_unit.layer != layers[-1]:
        layers.append(consumer_unit.layer)
    return layers


def communication_volume(graph: StageGraph, system: SensorSystem,
                         mapping: Mapping) -> Dict[str, float]:
    """Bytes per interface per frame — the Fig. 4 'communication volume'."""
    volumes = {"mipi": 0.0, "utsv": 0.0}
    for entry in communication_energy(graph, system, mapping):
        interface = (system.offchip_interface
                     if entry.category is Category.MIPI
                     else system.interlayer_interface)
        if interface.energy_per_byte > 0:
            key = "mipi" if entry.category is Category.MIPI else "utsv"
            volumes[key] += entry.energy / interface.energy_per_byte
    return volumes
