"""Analog energy modeling (Sec. 4.2, Eqs. 2–13).

The per-frame analog energy is the per-access energy of every A-Component
weighted by its access count (Eq. 2).  Access counts follow from stencil
regularity (Eq. 3): operations mapped onto an AFA divide evenly over its
components.  Arrays with no mapped stage (e.g. the ADC array of Fig. 5)
process whatever the upstream array produces, so operation counts propagate
along the analog wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sim
    from repro.sim.mapping import Mapping

from repro.exceptions import SimulationError
from repro.energy.report import Category, EnergyEntry, VectorEntry
from repro.hw.analog.array import AnalogArray
from repro.hw.chip import SensorSystem
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput

_CATEGORY_BY_ARRAY = {
    "sensing": Category.SEN,
    "compute": Category.COMP_A,
    "memory": Category.MEM_A,
}


@dataclass
class ArrayUsage:
    """Per-frame usage of one analog array."""

    array: AnalogArray
    ops: float
    outgoing_items: float
    stage_name: Optional[str]


def analog_usage(graph: StageGraph, system: SensorSystem,
                 mapping: Mapping, *,
                 resolved: Optional[Dict[str, object]] = None
                 ) -> List[ArrayUsage]:
    """Operation counts of every participating analog array.

    ``ops`` counts component-level accesses: a stage's primitive-op count
    divided by how many primitives one component access performs (the
    input volume of the array's leading component — e.g. a shared 2x2
    binning pixel performs four reads per access, a 9-tap switched-cap MAC
    performs nine MACs per access).
    """
    if resolved is None:
        # Only validation is needed here; the engine passes a ``resolved``
        # it already validated, direct callers validate on entry.
        mapping.validate(graph, system)
    usages: Dict[str, ArrayUsage] = {}

    # Pass 1: arrays with mapped stages.
    for array in system.analog_arrays:
        stage_names = mapping.stages_on(array.name)
        stages = [graph.get(name) for name in stage_names
                  if name in graph]
        if not stages:
            continue
        compute_stages = [s for s in stages if not isinstance(s, PixelInput)]
        basis = _ops_basis(array)
        if compute_stages:
            ops = sum(s.total_ops for s in compute_stages) / basis
            primary = compute_stages[-1]
        else:
            ops = stages[0].total_ops / basis
            primary = stages[0]
        outgoing = ops * _output_volume(array)
        usages[array.name] = ArrayUsage(array=array, ops=ops,
                                        outgoing_items=outgoing,
                                        stage_name=primary.name)

    # Pass 2: propagate through unmapped arrays along the analog wiring.
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > len(system.analog_arrays) + 2:
            raise SimulationError(
                "analog wiring propagation failed to converge; "
                "check for wiring cycles between analog arrays")
        for array in system.analog_arrays:
            if array.name in usages:
                continue
            producers = [p for p in array.input_arrays]
            if not producers:
                continue
            if any(p.name not in usages for p in producers):
                continue
            incoming = sum(usages[p.name].outgoing_items for p in producers)
            basis = _ops_basis(array)
            ops = incoming / basis
            stage_name = usages[producers[0].name].stage_name
            usages[array.name] = ArrayUsage(
                array=array, ops=ops,
                outgoing_items=ops * _output_volume(array),
                stage_name=stage_name)
            changed = True

    return [usages[a.name] for a in system.analog_arrays
            if a.name in usages]


def analog_energy(graph: StageGraph, system: SensorSystem, mapping: Mapping,
                  analog_stage_delay: float, *,
                  resolved: Optional[Dict[str, object]] = None
                  ) -> List[EnergyEntry]:
    """Per-component analog energy entries for one frame (Eq. 2)."""
    entries: List[EnergyEntry] = []
    for usage in analog_usage(graph, system, mapping, resolved=resolved):
        array = usage.array
        if usage.ops <= 0:
            continue
        category = _CATEGORY_BY_ARRAY[array.category]
        breakdown = array.energy_breakdown(usage.ops, analog_stage_delay)
        for component_name, energy in breakdown.items():
            entries.append(EnergyEntry(
                name=f"{array.name}/{component_name}",
                category=category,
                layer=array.layer,
                energy=energy,
                stage=usage.stage_name))
    return entries


def _ops_basis(array: AnalogArray) -> float:
    """Primitive ops one access of the array's leading component performs."""
    components = array.components
    if not components:
        raise SimulationError(f"analog array {array.name!r} is empty")
    leading = components[0][0]
    return float(leading.input_volume)


def _output_volume(array: AnalogArray) -> float:
    """Items the array emits per leading-component access."""
    components = array.components
    last = components[-1][0]
    return float(last.output_volume)


def analog_energy_batch(usages: List[ArrayUsage], analog_stage_delay,
                        breakdowns) -> list:
    """Vector mirror of :func:`analog_energy` over precomputed usages.

    ``analog_stage_delay`` is a per-point delay vector; ``breakdowns``
    aligns with ``usages`` and carries each array's lowered
    ``energy_breakdown`` kernel (see :mod:`repro.hw.analog.vector`;
    ``None`` for arrays the scalar path skips because ``ops <= 0``).
    Emits :class:`VectorEntry` columns in exactly the scalar model's
    entry order, with per-element energies bit-identical to the scalar
    entries.
    """
    entries = []
    for usage, breakdown_kernel in zip(usages, breakdowns):
        array = usage.array
        if usage.ops <= 0:
            continue
        category = _CATEGORY_BY_ARRAY[array.category]
        breakdown = breakdown_kernel(usage.ops, analog_stage_delay)
        for component_name, energy in breakdown.items():
            entries.append(VectorEntry(
                name=f"{array.name}/{component_name}",
                category=category,
                layer=array.layer,
                energy=energy,
                stage=usage.stage_name))
    return entries
