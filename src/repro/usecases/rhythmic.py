"""Rhythmic Pixel Regions [37] use case (Fig. 8a / Fig. 9a, Sec. 6.1).

A 1280x720 sensor feeds a Compare & Sample accelerator that encodes
multi-resolution regions of interest: ~7.4e6 arithmetic operations per
frame, halving the data volume that must leave the chip (ROI = 50 % of the
full image).  The original system runs the encoder on the host SoC; the
exploration moves it inside the (2D or stacked) sensor.
"""

from __future__ import annotations

from typing import List

from repro import units
from repro.api.design import Design
from repro.api.result import SimOptions
from repro.api.simulator import run_design
from repro.energy.report import EnergyReport
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import FIFO
from repro.hw.layer import COMPUTE_LAYER, Layer, SENSOR_LAYER
from repro.memlib import SRAMModel
from repro.sw.stage import PixelInput, ProcessStage
from repro.tech import mac_energy
from repro.usecases.common import FRAME_RATE, UseCaseConfig

_ROWS, _COLS = 720, 1280
#: Arithmetic operations of the Compare & Sample encoder per frame (paper).
TOTAL_OPS = 7.4e6
#: The ROI encoding halves the transmitted image (paper).
ROI_COMPRESSION = 0.5
#: Digital PE lanes (Fig. 8a).
NUM_PE_LANES = 16


def build_rhythmic(config: UseCaseConfig) -> Design:
    """Build the Rhythmic scenario for one configuration.

    Returns a :class:`Design` (which still unpacks like the legacy
    ``(stages, system, mapping)`` triple).
    """
    source = PixelInput((_ROWS, _COLS, 1), name="Input")
    ops_per_pixel = TOTAL_OPS / (_ROWS * _COLS)
    encode = ProcessStage("CompareSample", input_size=(_ROWS, _COLS, 1),
                          kernel=(1, 1, 1), stride=(1, 1, 1),
                          ops_per_output=ops_per_pixel,
                          output_compression=ROI_COMPRESSION)
    encode.set_input_stage(source)

    layers = [Layer(SENSOR_LAYER, config.cis_node)]
    if config.is_stacked:
        layers.append(Layer(COMPUTE_LAYER, config.digital_node))
    system = SensorSystem(f"Rhythmic {config.label}", layers=layers)
    if config.placement == "2D-Off":
        system.add_offchip_host(config.host_node)

    pixels = AnalogArray("PixelArray", SENSOR_LAYER,
                         num_input=(1, _COLS), num_output=(1, _COLS))
    pixels.add_component(
        ActivePixelSensor(
            num_transistors=4,
            pd_capacitance=8 * units.fF,
            load_capacitance=1.4 * units.pF,
            voltage_swing=1.0,
            vdda=2.5),
        (_ROWS, _COLS))
    adcs = AnalogArray("ADCArray", SENSOR_LAYER,
                       num_input=(1, _COLS), num_output=(1, _COLS))
    adcs.add_component(ColumnADC(bits=10), (1, _COLS))
    pixels.set_output(adcs)

    digital_layer = config.digital_layer
    node = config.digital_node
    # Per-word FIFO energies follow a small SRAM macro at the digital node.
    fifo_macro = SRAMModel(capacity_bytes=2560, word_bits=8, node_nm=node)
    fifo = FIFO("PixelFIFO", digital_layer, size=(1, 2560),
                write_energy_per_word=fifo_macro.write_energy_per_word,
                read_energy_per_word=fifo_macro.read_energy_per_word,
                leakage_power=fifo_macro.leakage_power,
                num_read_ports=NUM_PE_LANES,
                num_write_ports=NUM_PE_LANES,
                area=fifo_macro.area)
    adcs.set_output(fifo)
    # 16 op lanes per cycle; at ~8 ops per pixel the pixel throughput is
    # 2 px/cycle, reproducing the paper's 7.4e6 operations per frame.  One
    # Compare & Sample op costs about two MAC-equivalents (compare, sample,
    # and region-header bookkeeping).
    encoder = ComputeUnit("CompareSamplePE", digital_layer,
                          input_pixels_per_cycle=(1, 2),
                          output_pixels_per_cycle=(1, 2),
                          energy_per_cycle=(NUM_PE_LANES * 2
                                            * mac_energy(node)),
                          num_stages=2,
                          clock_hz=200 * units.MHz,
                          area=fifo_macro.area * 4)
    encoder.set_input(fifo)
    encoder.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(fifo)
    system.add_compute_unit(encoder)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=3.0 * units.um)

    mapping = {"Input": "PixelArray", "CompareSample": "CompareSamplePE"}
    return Design([source, encode], system, mapping)


def run_rhythmic(config: UseCaseConfig) -> EnergyReport:
    """Simulate one Rhythmic configuration at the 30 FPS target."""
    return run_design(build_rhythmic(config),
                      SimOptions(frame_rate=FRAME_RATE)).unwrap()


def rhythmic_configs() -> List[UseCaseConfig]:
    """The Fig. 9a grid: {2D-In, 2D-Off, 3D-In} x {130 nm, 65 nm}."""
    return [UseCaseConfig(placement, node)
            for node in (130, 65)
            for placement in ("2D-In", "2D-Off", "3D-In")]


def rhythmic_space():
    """The Fig. 9a grid as a parameter space for the exploration engine.

    Enumerates the same points, in the same order, as
    :func:`rhythmic_configs`; the axis names match the registered
    ``"rhythmic"`` use-case builder's parameters.
    """
    from repro.explore.space import choice, product
    return product(choice("cis_node", [130, 65]),
                   choice("placement", ["2D-In", "2D-Off", "3D-In"]))
