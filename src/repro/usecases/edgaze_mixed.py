"""Mixed-signal Ed-Gaze (Fig. 10 / Figs. 11-13, Sec. 6.3).

The first two algorithm stages move into the analog domain: 2x2
downsampling happens as charge-domain pixel binning inside the pixel
array, the downsampled values live in an *analog* frame buffer (active
memories biased over the whole frame), and a switched-capacitor
subtractor plus comparator produce the digitized frame delta.  The ROI
DNN stays digital.

Per the paper's conservative sizing, every capacitor in the analog PE is
100 fF; despite this over-sizing, the analog path removes the column ADCs
and the leaky digital frame buffer, which is where the energy savings
come from (Finding 3).
"""

from __future__ import annotations

from repro import units
from repro.api.design import Design
from repro.api.result import SimOptions
from repro.api.simulator import run_design
from repro.energy.report import EnergyReport
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.cells import DynamicCell, OpAmp
from repro.hw.analog.components import (
    ActiveAnalogMemory,
    ActivePixelSensor,
    AnalogComparator,
    AnalogComponent,
    CellUsage,
)
from repro.hw.analog.domain import SignalDomain
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import SystolicArray
from repro.hw.digital.memory import DoubleBuffer
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.memlib import SRAMModel
from repro.tech import mac_energy
from repro.usecases.common import FRAME_RATE
from repro.usecases.edgaze import (
    _COLS,
    _DS_COLS,
    _DS_ROWS,
    _ROWS,
    edgaze_stages,
)

#: The paper conservatively sets every analog-PE capacitor to 100 fF.
ANALOG_CAPACITANCE = 100 * units.fF


def build_edgaze_mixed(cis_node: int) -> Design:
    """Build the Fig. 10 mixed-signal Ed-Gaze at one CIS node.

    Returns a :class:`Design` (which still unpacks like the legacy
    ``(stages, system, mapping)`` triple).
    """
    stages = edgaze_stages()

    system = SensorSystem(f"Ed-Gaze 2D-In-Mixed ({cis_node}nm)",
                          layers=[Layer(SENSOR_LAYER, cis_node)])

    # 2x2 binning inside the pixel array (shared-FD charge binning).
    pixels = AnalogArray("PixelArray", SENSOR_LAYER,
                         num_input=(1, _COLS), num_output=(1, _DS_COLS))
    pixels.add_component(
        ActivePixelSensor(
            "BinningPixel",
            num_transistors=4,
            pd_capacitance=8 * units.fF,
            load_capacitance=1.0 * units.pF,
            voltage_swing=1.0,
            vdda=2.5,
            num_shared_pixels=4),
        (_DS_ROWS, _DS_COLS))
    # Analog frame buffer: one actively-held value per downsampled pixel.
    frame_buffer = AnalogArray("AnalogFrameBuffer", SENSOR_LAYER,
                               num_input=(1, _DS_COLS),
                               num_output=(1, _DS_COLS),
                               category="memory")
    frame_buffer.add_component(
        ActiveAnalogMemory(
            "HoldCell",
            bits=8,
            voltage_swing=1.0,
            capacitance=ANALOG_CAPACITANCE,
            hold_time=1.0 / FRAME_RATE,
            vdda=2.5),
        (_DS_ROWS, _DS_COLS))
    # Column-parallel analog PEs: switched-cap subtract + comparator.
    # Each subtraction cycles the two 100 fF branch capacitors through a
    # sample and a transfer phase (temporal = 2), and the OpAmp must keep
    # 8-bit settling accuracy: a closed-loop gain of 2 over ~6.2 time
    # constants of loop bandwidth (ln 2**9), i.e. an effective
    # gain-bandwidth multiplier of ~13 in Eq. 10 — the Eq. 6 precision
    # cost the paper highlights as the reason analog *compute* energy
    # slightly increases in the mixed design.
    # The OpAmp drives the two branch capacitors plus the comparator input
    # and wiring — four conservatively-sized 100 fF loads in total.
    subtractor_component = AnalogComponent(
        "SCSubtract", SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
        [
            CellUsage(DynamicCell(
                "SubCaps", [(ANALOG_CAPACITANCE, 1.0)] * 2), temporal=2),
            CellUsage(OpAmp("SubAmp",
                            load_capacitance=4 * ANALOG_CAPACITANCE,
                            gain=13.0, vdda=2.5)),
        ],
        num_input=(2, 1))
    subtractors = AnalogArray("AnalogSubtractArray", SENSOR_LAYER,
                              num_input=(1, _DS_COLS),
                              num_output=(1, _DS_COLS))
    subtractors.add_component(subtractor_component, (1, _DS_COLS))
    comparators = AnalogArray("DeltaComparatorArray", SENSOR_LAYER,
                              num_input=(1, _DS_COLS),
                              num_output=(1, _DS_COLS),
                              category="compute")
    comparators.add_component(AnalogComparator("DeltaCmp"), (1, _DS_COLS))
    pixels.set_output(frame_buffer)
    frame_buffer.set_output(subtractors)
    subtractors.set_output(comparators)

    # Digital side: unchanged ROI DNN at the CIS node (Fig. 10's "SRAM +
    # Digital PE 3").
    dnn_macro = SRAMModel(capacity_bytes=32 * units.KB, word_bits=64,
                          node_nm=cis_node)
    dnn_buffer = DoubleBuffer.from_model("DNNBuffer", dnn_macro,
                                         layer=SENSOR_LAYER,
                                         duty_alpha=1.0,
                                         num_read_ports=16,
                                         num_write_ports=16)
    comparators.set_output(dnn_buffer)
    dnn = SystolicArray("DNNArray", SENSOR_LAYER,
                        dimensions=(16, 16),
                        energy_per_mac=mac_energy(cis_node),
                        utilization=0.85,
                        clock_hz=200 * units.MHz,
                        area=dnn_macro.area)
    dnn.set_input(dnn_buffer)
    dnn.set_sink()

    system.add_analog_array(pixels)
    system.add_analog_array(frame_buffer)
    system.add_analog_array(subtractors)
    system.add_analog_array(comparators)
    system.add_memory(dnn_buffer)
    system.add_compute_unit(dnn)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=2.5 * units.um)

    mapping = {"Input": "PixelArray", "Downsample": "PixelArray",
               "FrameSubtract": "AnalogSubtractArray",
               "RoiDNN": "DNNArray"}
    return Design(stages, system, mapping)


def run_edgaze_mixed(cis_node: int) -> EnergyReport:
    """Simulate the mixed-signal Ed-Gaze at one CIS node, 30 FPS."""
    return run_design(build_edgaze_mixed(cis_node),
                      SimOptions(frame_rate=FRAME_RATE)).unwrap()
