"""The paper's running example (Fig. 5 / Fig. 6).

A 32x32 pixel array with 2x2 charge-domain binning, column ADCs, a line
buffer, and a 3x3 digital edge-detection unit.  Shared by the quickstart
example, the test fixtures, and the Fig. 6 bench.
"""

from __future__ import annotations

from typing import Dict, List

from repro import units
from repro.api.design import Design
from repro.api.result import SimOptions
from repro.api.simulator import run_design
from repro.energy.report import EnergyReport
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import LineBuffer
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sw.stage import PixelInput, ProcessStage

FIG5_MAPPING: Dict[str, str] = {
    "Input": "PixelArray",
    "Binning": "PixelArray",
    "EdgeDetection": "EdgeUnit",
}


def build_fig5_stages() -> List:
    """The binning + edge-detection DAG of Fig. 5's ``camj_sw_config``."""
    source = PixelInput((32, 32, 1), name="Input")
    binning = ProcessStage("Binning", input_size=(32, 32, 1),
                           kernel=(2, 2, 1), stride=(2, 2, 1))
    edge = ProcessStage("EdgeDetection", input_size=(16, 16, 1),
                        kernel=(3, 3, 1), stride=(1, 1, 1), padding="same")
    binning.set_input_stage(source)
    edge.set_input_stage(binning)
    return [source, binning, edge]


def build_fig5_system() -> SensorSystem:
    """The hardware of Fig. 5's ``camj_hw_config``."""
    system = SensorSystem("Fig5", layers=[Layer(SENSOR_LAYER, 65)])
    pixel_array = AnalogArray("PixelArray", num_input=(1, 32),
                              num_output=(1, 16))
    pixel_array.add_component(
        ActivePixelSensor("BinningPixel", num_shared_pixels=4), (16, 16))
    adc_array = AnalogArray("ADCArray", num_input=(1, 16),
                            num_output=(1, 16))
    adc_array.add_component(ColumnADC(bits=10), (1, 16))
    line_buffer = LineBuffer("LineBuffer", size=(3, 16),
                             write_energy_per_word=0.3 * units.pJ,
                             read_energy_per_word=0.3 * units.pJ)
    edge_unit = ComputeUnit("EdgeUnit",
                            input_pixels_per_cycle=(1, 3, 1),
                            output_pixels_per_cycle=(1, 1, 1),
                            energy_per_cycle=3.0 * units.pJ,
                            num_stages=2)
    pixel_array.set_output(adc_array)
    adc_array.set_output(line_buffer)
    edge_unit.set_input(line_buffer)
    edge_unit.set_sink()
    system.add_analog_array(pixel_array)
    system.add_analog_array(adc_array)
    system.add_memory(line_buffer)
    system.add_compute_unit(edge_unit)
    system.set_pixel_array_geometry(32, 32)
    return system


def build_fig5_design() -> Design:
    """The complete Fig. 5 scenario as a first-class :class:`Design`."""
    return Design(build_fig5_stages(), build_fig5_system(),
                  dict(FIG5_MAPPING), name="Fig5")


def run_fig5(frame_rate: float = 30.0,
             cycle_accurate: bool = False) -> EnergyReport:
    """Simulate the Fig. 5 example at an FPS target."""
    return run_design(build_fig5_design(),
                      SimOptions(frame_rate=frame_rate,
                                 cycle_accurate=cycle_accurate)).unwrap()
