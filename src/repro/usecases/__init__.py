"""Architectural-exploration use cases of Sec. 6 (Figs. 8-13, Table 3)."""

from repro.usecases.common import UseCaseConfig, CIS_NODES, HOST_NODE
from repro.usecases.rhythmic import (
    build_rhythmic,
    run_rhythmic,
    rhythmic_configs,
    rhythmic_space,
)
from repro.usecases.edgaze import (
    build_edgaze,
    run_edgaze,
    edgaze_configs,
    edgaze_space,
)
from repro.usecases.edgaze_mixed import (
    build_edgaze_mixed,
    run_edgaze_mixed,
)
from repro.usecases.fig5 import (
    build_fig5_design,
    run_fig5,
)
from repro.usecases.threelayer import (
    build_three_layer,
    run_three_layer,
)

__all__ = [
    "UseCaseConfig",
    "CIS_NODES",
    "HOST_NODE",
    "build_rhythmic",
    "run_rhythmic",
    "rhythmic_configs",
    "rhythmic_space",
    "build_edgaze",
    "run_edgaze",
    "edgaze_configs",
    "edgaze_space",
    "build_edgaze_mixed",
    "run_edgaze_mixed",
    "build_fig5_design",
    "run_fig5",
    "build_three_layer",
    "run_three_layer",
]
