"""Ed-Gaze [17] use case (Fig. 8b / Fig. 9b, Sec. 6.1-6.2).

A 640x400 sensor is 2x2-downsampled, subtracted against the previous frame
to produce an event map, and a ROI DNN (~5.76e7 MACs per frame) extracts
the eye region, cutting the transmitted image by 25 % (ROI = 75 % of the
full frame).  The defining hardware fact: the frame buffer must retain the
previous frame for the subtraction, so it can never be power-gated
(``duty_alpha = 1``) — at 65 nm its leakage dominates, producing the
paper's Finding 1/2.
"""

from __future__ import annotations

from typing import List

from repro import units
from repro.api.design import Design
from repro.api.result import SimOptions
from repro.api.simulator import run_design
from repro.energy.report import EnergyReport
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit, SystolicArray
from repro.hw.digital.memory import DoubleBuffer, LineBuffer
from repro.hw.layer import COMPUTE_LAYER, Layer, SENSOR_LAYER
from repro.memlib import SRAMModel, STTRAMModel
from repro.sw.stage import Conv2DStage, PixelInput, ProcessStage
from repro.tech import mac_energy
from repro.usecases.common import FRAME_RATE, UseCaseConfig

_ROWS, _COLS = 400, 640
#: ROI DNN multiply-accumulates per frame (paper).
DNN_MACS = 5.76e7
#: The ROI cuts the transmitted image by 25 % (ROI = 75 % of the frame).
ROI_FRACTION = 0.75
#: Downsampled frame dimensions (the paper's 320x201 frame buffer ~ 200x320).
_DS_ROWS, _DS_COLS = _ROWS // 2, _COLS // 2


def edgaze_stages() -> List:
    """The Fig. 8b algorithm DAG."""
    source = PixelInput((_ROWS, _COLS, 1), name="Input")
    downsample = ProcessStage("Downsample", input_size=(_ROWS, _COLS, 1),
                              kernel=(2, 2, 1), stride=(2, 2, 1))
    subtract = ProcessStage("FrameSubtract",
                            input_size=(_DS_ROWS, _DS_COLS, 1),
                            kernel=(1, 1, 1), stride=(1, 1, 1),
                            ops_per_output=2.0,  # subtract + threshold
                            bits_per_pixel=1)  # binary event map
    # ROI DNN: a 30x30 stencil per output gives the paper's 5.76e7 MACs
    # (200 * 320 * 900).  The 24-bit output packs the ROI: 75 % of the
    # full-resolution 256000-byte frame = 192000 bytes.
    dnn = Conv2DStage("RoiDNN", input_size=(_DS_ROWS, _DS_COLS, 1),
                      num_kernels=1, kernel_size=(30, 30),
                      bits_per_pixel=24)
    downsample.set_input_stage(source)
    subtract.set_input_stage(downsample)
    dnn.set_input_stage(subtract)
    return [source, downsample, subtract, dnn]


def build_edgaze(config: UseCaseConfig) -> Design:
    """Build the Ed-Gaze scenario for one configuration.

    Returns a :class:`Design` (which still unpacks like the legacy
    ``(stages, system, mapping)`` triple).
    """
    stages = edgaze_stages()

    layers = [Layer(SENSOR_LAYER, config.cis_node)]
    if config.is_stacked:
        layers.append(Layer(COMPUTE_LAYER, config.digital_node))
    system = SensorSystem(f"Ed-Gaze {config.label}", layers=layers)
    if config.placement == "2D-Off":
        system.add_offchip_host(config.host_node)

    pixels = AnalogArray("PixelArray", SENSOR_LAYER,
                         num_input=(1, _COLS), num_output=(1, _COLS))
    pixels.add_component(
        ActivePixelSensor(
            num_transistors=4,
            pd_capacitance=8 * units.fF,
            load_capacitance=1.0 * units.pF,
            voltage_swing=1.0,
            vdda=2.5),
        (_ROWS, _COLS))
    adcs = AnalogArray("ADCArray", SENSOR_LAYER,
                       num_input=(1, _COLS), num_output=(1, _COLS))
    adcs.add_component(ColumnADC(bits=10), (1, _COLS))
    pixels.set_output(adcs)

    digital_layer = config.digital_layer
    node = config.digital_node

    line_macro = SRAMModel(capacity_bytes=2 * _COLS, word_bits=8,
                           node_nm=node)
    line_buffer = LineBuffer("LineBuffer", digital_layer, size=(2, _COLS),
                             write_energy_per_word=(
                                 line_macro.write_energy_per_word),
                             read_energy_per_word=(
                                 line_macro.read_energy_per_word),
                             leakage_power=line_macro.leakage_power,
                             num_read_ports=4,
                             num_write_ports=2,
                             area=line_macro.area)
    adcs.set_output(line_buffer)

    frame_macro = SRAMModel(
        capacity_bytes=_DS_ROWS * _DS_COLS, word_bits=64, node_nm=node)
    # The previous frame must survive the whole frame time: never gated.
    frame_buffer = DoubleBuffer.from_model("FrameBuffer", frame_macro,
                                           layer=digital_layer,
                                           duty_alpha=1.0,
                                           num_read_ports=8,
                                           num_write_ports=8)
    dnn_macro_cls = STTRAMModel if config.uses_stt_ram else SRAMModel
    dnn_macro = dnn_macro_cls(capacity_bytes=32 * units.KB, word_bits=64,
                              node_nm=node)
    # Weights/activations also persist across the frame in this design.
    dnn_buffer = DoubleBuffer.from_model("DNNBuffer", dnn_macro,
                                         layer=digital_layer,
                                         duty_alpha=1.0,
                                         num_read_ports=16,
                                         num_write_ports=16)
    if config.uses_stt_ram:
        stt_frame = STTRAMModel(capacity_bytes=_DS_ROWS * _DS_COLS,
                                word_bits=64, node_nm=node)
        frame_buffer = DoubleBuffer.from_model("FrameBuffer", stt_frame,
                                               layer=digital_layer,
                                               duty_alpha=1.0,
                                               num_read_ports=8,
                                               num_write_ports=8)

    downsampler = ComputeUnit("DownsamplePE", digital_layer,
                              input_pixels_per_cycle=(2, 2),
                              output_pixels_per_cycle=(1, 1),
                              energy_per_cycle=mac_energy(node),
                              num_stages=2,
                              clock_hz=200 * units.MHz)
    downsampler.set_input(line_buffer).set_output(frame_buffer)
    subtractor = ComputeUnit("SubtractPE", digital_layer,
                             input_pixels_per_cycle=(1, 2),
                             output_pixels_per_cycle=(1, 1),
                             energy_per_cycle=2 * mac_energy(node),
                             num_stages=2,
                             clock_hz=200 * units.MHz)
    subtractor.set_input(frame_buffer).set_output(dnn_buffer)
    dnn = SystolicArray("DNNArray", digital_layer,
                        dimensions=(16, 16),
                        energy_per_mac=mac_energy(node),
                        utilization=0.85,
                        clock_hz=200 * units.MHz,
                        area=dnn_macro.area)
    dnn.set_input(dnn_buffer)
    dnn.set_sink()

    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(line_buffer)
    system.add_memory(frame_buffer)
    system.add_memory(dnn_buffer)
    system.add_compute_unit(downsampler)
    system.add_compute_unit(subtractor)
    system.add_compute_unit(dnn)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=2.5 * units.um)

    mapping = {"Input": "PixelArray", "Downsample": "DownsamplePE",
               "FrameSubtract": "SubtractPE", "RoiDNN": "DNNArray"}
    return Design(stages, system, mapping)


def run_edgaze(config: UseCaseConfig) -> EnergyReport:
    """Simulate one Ed-Gaze configuration at the 30 FPS target."""
    return run_design(build_edgaze(config),
                      SimOptions(frame_rate=FRAME_RATE)).unwrap()


def edgaze_configs() -> List[UseCaseConfig]:
    """The Fig. 9b grid: {2D-In, 2D-Off, 3D-In, 3D-In-STT} x {130, 65} nm."""
    return [UseCaseConfig(placement, node)
            for node in (130, 65)
            for placement in ("2D-In", "2D-Off", "3D-In", "3D-In-STT")]


def edgaze_space():
    """The Fig. 9b grid as a parameter space for the exploration engine.

    Enumerates the same points, in the same order, as
    :func:`edgaze_configs`; the axis names match the registered
    ``"edgaze"`` use-case builder's parameters.
    """
    from repro.explore.space import choice, product
    return product(choice("cis_node", [130, 65]),
                   choice("placement",
                          ["2D-In", "2D-Off", "3D-In", "3D-In-STT"]))
