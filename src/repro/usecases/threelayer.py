"""Three-layer stacked CIS (Sony IMX 400 style, Sec. 2.1).

The paper's survey highlights three-layer stacks: a pixel layer, a DRAM
layer buffering full frames, and a logic layer with an ISP.  The flagship
use is slow-motion burst capture: the sensor reads out at a very high
frame rate into the DRAM, and the ISP drains buffered frames at a normal
output rate.  This module builds that design with the public API — an
exploration the paper's framework enables beyond its own evaluation.
"""

from __future__ import annotations

from repro import units
from repro.api.design import Design
from repro.api.result import SimOptions
from repro.api.simulator import run_design
from repro.energy.report import EnergyReport
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import DoubleBuffer, FIFO
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.memlib import DRAMModel, SRAMModel
from repro.sw.stage import PixelInput, ProcessStage

#: Layer names of the three-die stack.
DRAM_LAYER = "dram"
LOGIC_LAYER = "logic"

_ROWS, _COLS = 1080, 1920


def build_three_layer(burst_fps: float = 960.0) -> Design:
    """A 1080p burst-capture stack: pixel / DRAM / logic layers.

    Returns a :class:`Design` (which still unpacks like the legacy
    ``(stages, system, mapping)`` triple).
    """
    source = PixelInput((_ROWS, _COLS, 1), name="Input", bits_per_pixel=10)
    isp = ProcessStage("ISP", input_size=(_ROWS, _COLS, 1),
                       kernel=(3, 3, 1), stride=(1, 1, 1), padding="same",
                       output_compression=0.5)  # encoded output
    isp.set_input_stage(source)

    system = SensorSystem("IMX400-style",
                          layers=[Layer(SENSOR_LAYER, 90),
                                  Layer(DRAM_LAYER, 65),
                                  Layer(LOGIC_LAYER, 28)])

    pixels = AnalogArray("PixelArray", SENSOR_LAYER,
                         num_input=(1, _COLS), num_output=(1, _COLS))
    pixels.add_component(
        ActivePixelSensor(num_transistors=4,
                          pd_capacitance=7 * units.fF,
                          load_capacitance=1.6 * units.pF,
                          voltage_swing=1.0, vdda=2.8),
        (_ROWS, _COLS))
    adcs = AnalogArray("ADCArray", SENSOR_LAYER,
                       num_input=(1, _COLS), num_output=(1, _COLS))
    adcs.add_component(ColumnADC(bits=10), (1, _COLS))
    pixels.set_output(adcs)

    dram_model = DRAMModel(capacity_bytes=16 * units.MB)
    frame_dram = DoubleBuffer(
        "FrameDRAM", DRAM_LAYER,
        size=(int(16 * units.MB), 1),
        capacity_bytes=16 * units.MB,
        write_energy_per_word=dram_model.write_energy_per_byte,
        read_energy_per_word=dram_model.read_energy_per_byte,
        leakage_power=dram_model.refresh_power,
        duty_alpha=1.0,  # DRAM must refresh as long as frames are held
        num_read_ports=64, num_write_ports=64)
    adcs.set_output(frame_dram)

    line_macro = SRAMModel(capacity_bytes=8 * units.KB, word_bits=64,
                           node_nm=28)
    isp_buffer = FIFO("ISPBuffer", LOGIC_LAYER,
                      size=(int(8 * units.KB), 1),
                      write_energy_per_word=line_macro.write_energy_per_byte,
                      read_energy_per_word=line_macro.read_energy_per_byte,
                      leakage_power=line_macro.leakage_power,
                      duty_alpha=0.5,
                      num_read_ports=16,
                      num_write_ports=16,
                      area=line_macro.area)
    isp_unit = ComputeUnit("ISPCore", LOGIC_LAYER,
                           input_pixels_per_cycle=(1, 8),
                           output_pixels_per_cycle=(1, 8),
                           energy_per_cycle=16 * units.pJ,
                           num_stages=6,
                           clock_hz=600 * units.MHz,
                           area=line_macro.area * 8)
    isp_unit.set_input(frame_dram)
    isp_unit.set_output(isp_buffer)
    encoder = ComputeUnit("Encoder", LOGIC_LAYER,
                          input_pixels_per_cycle=(1, 8),
                          output_pixels_per_cycle=(1, 4),
                          energy_per_cycle=10 * units.pJ,
                          num_stages=4,
                          clock_hz=600 * units.MHz)
    encoder.set_input(isp_buffer)
    encoder.set_sink()

    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(frame_dram)
    system.add_memory(isp_buffer)
    system.add_compute_unit(isp_unit)
    system.add_compute_unit(encoder)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=1.6 * units.um)

    encode = ProcessStage("Encode", input_size=(_ROWS, _COLS, 1),
                          kernel=(1, 1, 1), stride=(1, 1, 1),
                          output_compression=0.25)
    encode.set_input_stage(isp)
    mapping = {"Input": "PixelArray", "ISP": "ISPCore",
               "Encode": "Encoder"}
    return Design([source, isp, encode], system, mapping)


def run_three_layer(burst_fps: float = 960.0) -> EnergyReport:
    """Simulate the burst-capture stack at the burst frame rate."""
    return run_design(build_three_layer(burst_fps),
                      SimOptions(frame_rate=burst_fps)).unwrap()
