"""Shared scaffolding of the Sec. 6 use cases.

The explorations sweep two CIS process nodes (130 nm and 65 nm, both common
in Table 2) against a 22 nm host SoC, across four placements:

* ``2D-In``      — everything inside a single-layer CIS;
* ``2D-Off``     — everything after the ADC on the host SoC;
* ``3D-In``      — post-ADC processing on a stacked 22 nm compute layer;
* ``3D-In-STT``  — 3D-In with the compute-layer SRAM swapped for STT-RAM.

Ed-Gaze additionally has ``2D-In-Mixed`` (Sec. 6.3), built in
:mod:`repro.usecases.edgaze_mixed`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.hw.layer import COMPUTE_LAYER, OFF_CHIP, SENSOR_LAYER

#: CIS nodes the paper sweeps (Sec. 6.1).
CIS_NODES = (130, 65)
#: The host SoC node (Sec. 6.1).
HOST_NODE = 22

#: Frame-rate target of both workloads.
FRAME_RATE = 30.0

PLACEMENTS = ("2D-In", "2D-Off", "3D-In", "3D-In-STT", "2D-In-Mixed")


@dataclass(frozen=True)
class UseCaseConfig:
    """One point of the exploration grid."""

    placement: str
    cis_node: int
    host_node: int = HOST_NODE

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; "
                f"choose from {PLACEMENTS}")
        if self.cis_node not in CIS_NODES:
            raise ConfigurationError(
                f"CIS node must be one of {CIS_NODES}, got {self.cis_node}")

    @property
    def label(self) -> str:
        """Figure label, e.g. ``'2D-In (65nm)'``."""
        return f"{self.placement} ({self.cis_node}nm)"

    @property
    def digital_layer(self) -> str:
        """Layer name hosting the post-ADC digital processing."""
        if self.placement == "2D-Off":
            return OFF_CHIP
        if self.placement in ("3D-In", "3D-In-STT"):
            return COMPUTE_LAYER
        return SENSOR_LAYER

    @property
    def digital_node(self) -> int:
        """Process node of the digital processing."""
        if self.placement in ("2D-Off", "3D-In", "3D-In-STT"):
            return self.host_node
        return self.cis_node

    @property
    def uses_stt_ram(self) -> bool:
        """Whether the compute-layer memory is STT-RAM."""
        return self.placement == "3D-In-STT"

    @property
    def is_stacked(self) -> bool:
        """Whether the design has a separate on-chip compute layer."""
        return self.placement in ("3D-In", "3D-In-STT")
