"""Pixel-level noise sources of the sensing chain.

Signals are electron counts (or volts after conversion); every source
follows the standard CIS noise physics:

* photon shot noise — Poisson statistics of photon arrival;
* dark current — thermally generated electrons, Poisson over the exposure,
  doubling roughly every 6-8 K (the thermal coupling of Sec. 6.2);
* read noise — Gaussian noise of the readout chain, in electrons RMS;
* fixed-pattern noise — static per-pixel offset and gain mismatch;
* quantization noise — uniform error of the ADC's finite resolution.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.exceptions import ConfigurationError


class NoiseSource:
    """Base class: a deterministic, seedable transform of a signal array."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def apply(self, signal: np.ndarray) -> np.ndarray:
        """Return the noisy version of ``signal`` (electrons)."""
        raise NotImplementedError

    def apply_stack(self, stack: np.ndarray) -> np.ndarray:
        """Apply the source to a ``(num_frames, *frame_shape)`` stack.

        The default is a single vectorized :meth:`apply` over the whole
        stack — statistically identical to per-frame application for
        every i.i.d. per-element source (shot, dark, read,
        quantization), and one RNG draw instead of ``num_frames``.
        Sources with cross-frame structure (FPN) override this to keep
        their per-frame statistics.
        """
        return self.apply(stack)

    def reseed(self, seed: int) -> None:
        """Reset the generator (reproducible experiment sweeps)."""
        self._rng = np.random.default_rng(seed)


class PhotonShotNoise(NoiseSource):
    """Poisson photon-arrival statistics: variance equals the mean."""

    def apply(self, signal: np.ndarray) -> np.ndarray:
        if np.any(signal < 0):
            raise ConfigurationError(
                "photon signal must be non-negative electron counts")
        return self._rng.poisson(signal).astype(float)


class DarkCurrentNoise(NoiseSource):
    """Dark electrons integrated over the exposure, Poisson-distributed.

    ``dark_current_e_per_s`` is specified at ``reference_temperature``; the
    current doubles every ``doubling_kelvin`` — the mechanism by which the
    power density of stacked designs worsens imaging quality.
    """

    def __init__(self, dark_current_e_per_s: float, exposure_time: float,
                 temperature: float = units.ROOM_TEMPERATURE,
                 reference_temperature: float = units.ROOM_TEMPERATURE,
                 doubling_kelvin: float = 7.0, seed: int = 0):
        super().__init__(seed)
        if dark_current_e_per_s < 0:
            raise ConfigurationError(
                f"dark current must be non-negative, "
                f"got {dark_current_e_per_s}")
        if exposure_time <= 0:
            raise ConfigurationError(
                f"exposure time must be positive, got {exposure_time}")
        if doubling_kelvin <= 0:
            raise ConfigurationError(
                f"doubling interval must be positive, got {doubling_kelvin}")
        self.dark_current_e_per_s = dark_current_e_per_s
        self.exposure_time = exposure_time
        self.temperature = temperature
        self.reference_temperature = reference_temperature
        self.doubling_kelvin = doubling_kelvin

    @property
    def mean_dark_electrons(self) -> float:
        """Expected dark electrons per pixel per exposure."""
        delta = self.temperature - self.reference_temperature
        thermal_factor = 2.0 ** (delta / self.doubling_kelvin)
        return (self.dark_current_e_per_s * thermal_factor
                * self.exposure_time)

    def apply(self, signal: np.ndarray) -> np.ndarray:
        dark = self._rng.poisson(self.mean_dark_electrons,
                                 size=signal.shape)
        return signal + dark


class ReadNoise(NoiseSource):
    """Gaussian readout noise in electrons RMS."""

    def __init__(self, sigma_electrons: float, seed: int = 0):
        super().__init__(seed)
        if sigma_electrons < 0:
            raise ConfigurationError(
                f"read noise sigma must be non-negative, "
                f"got {sigma_electrons}")
        self.sigma_electrons = sigma_electrons

    def apply(self, signal: np.ndarray) -> np.ndarray:
        if self.sigma_electrons == 0:
            return signal.copy()
        return signal + self._rng.normal(0.0, self.sigma_electrons,
                                         size=signal.shape)


class FixedPatternNoise(NoiseSource):
    """Static per-pixel offset and gain mismatch (DSNU and PRNU).

    The pattern is drawn once per instance and reused across frames — the
    defining property of FPN, which correlated double sampling or
    calibration can remove.
    """

    def __init__(self, offset_sigma_electrons: float = 0.0,
                 gain_sigma_fraction: float = 0.0, seed: int = 0):
        super().__init__(seed)
        if offset_sigma_electrons < 0 or gain_sigma_fraction < 0:
            raise ConfigurationError("FPN sigmas must be non-negative")
        self.offset_sigma_electrons = offset_sigma_electrons
        self.gain_sigma_fraction = gain_sigma_fraction
        self._offsets = None
        self._gains = None

    def _pattern(self, shape):
        if self._offsets is None or self._offsets.shape != shape:
            self._offsets = self._rng.normal(
                0.0, self.offset_sigma_electrons, size=shape) \
                if self.offset_sigma_electrons else np.zeros(shape)
            self._gains = 1.0 + (self._rng.normal(
                0.0, self.gain_sigma_fraction, size=shape)
                if self.gain_sigma_fraction else np.zeros(shape))
        return self._offsets, self._gains

    def apply(self, signal: np.ndarray) -> np.ndarray:
        offsets, gains = self._pattern(signal.shape)
        return signal * gains + offsets

    def apply_stack(self, stack: np.ndarray) -> np.ndarray:
        """One *frame-shaped* pattern, broadcast over every frame.

        FPN is static across frames by definition: a naive vectorized
        draw over the stacked shape would fabricate a fresh pattern per
        frame and masquerade as temporal noise.
        """
        offsets, gains = self._pattern(stack.shape[1:])
        return stack * gains + offsets


class QuantizationNoise(NoiseSource):
    """ADC quantization: ``bits`` resolution over ``full_scale`` electrons."""

    def __init__(self, bits: int, full_scale_electrons: float,
                 seed: int = 0):
        super().__init__(seed)
        if bits < 1:
            raise ConfigurationError(f"ADC bits must be >= 1, got {bits}")
        if full_scale_electrons <= 0:
            raise ConfigurationError(
                f"full scale must be positive, got {full_scale_electrons}")
        self.bits = bits
        self.full_scale_electrons = full_scale_electrons

    @property
    def lsb_electrons(self) -> float:
        """Electrons per ADC code."""
        return self.full_scale_electrons / (2 ** self.bits)

    def apply(self, signal: np.ndarray) -> np.ndarray:
        clipped = np.clip(signal, 0.0, self.full_scale_electrons)
        codes = np.round(clipped / self.lsb_electrons)
        return codes * self.lsb_electrons


def thermal_noise_sigma(capacitance: float,
                        conversion_gain_uv_per_e: float,
                        temperature: float = units.ROOM_TEMPERATURE
                        ) -> float:
    """kT/C noise expressed in electrons RMS (links Eq. 6 to imaging SNR).

    ``conversion_gain_uv_per_e`` is the pixel conversion gain in
    microvolts per electron.
    """
    if conversion_gain_uv_per_e <= 0:
        raise ConfigurationError(
            f"conversion gain must be positive, "
            f"got {conversion_gain_uv_per_e}")
    sigma_volts = units.thermal_noise_voltage(capacitance, temperature)
    return sigma_volts / (conversion_gain_uv_per_e * units.uV)
