"""Power-density → temperature → imaging-quality coupling.

Section 6.2 of the paper closes with: "higher power density increases the
thermal-induced noise and worsens the imaging and computing quality...
an exploration that CamJ enables and that we leave to future work."  This
module implements that loop:

1. the energy report's power density heats the die through a lumped
   thermal resistance (the Kodukula et al. [36] style first-order model);
2. the temperature rise feeds the dark-current doubling law;
3. a functional pipeline at the elevated temperature quantifies the
   low-light SNR cost of the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.area.model import layer_power_density
from repro.energy.report import EnergyReport
from repro.exceptions import ConfigurationError
from repro.hw.chip import SensorSystem
from repro.noise.pipeline import FunctionalPipeline, FunctionalPixel

#: Lumped junction-to-ambient thermal resistance of a sensor package,
#: expressed against power *density*: kelvin per (mW/mm^2).  Small mobile
#: CIS packages sit around a few K per mW/mm^2 of die loading.
THERMAL_RESISTANCE_K_PER_MW_MM2 = 2.5

#: Ambient temperature.
AMBIENT_K = units.ROOM_TEMPERATURE


@dataclass(frozen=True)
class ThermalOperatingPoint:
    """The thermal consequence of one architecture's power draw."""

    power_density: float  # W/m^2 (hottest layer)
    temperature_rise: float  # K above ambient
    temperature: float  # K

    def describe(self) -> str:
        density = self.power_density / (units.mW / units.mm2)
        return (f"{density:.2f} mW/mm^2 -> +{self.temperature_rise:.2f} K "
                f"(die at {self.temperature:.1f} K)")


def thermal_operating_point(system: SensorSystem, report: EnergyReport,
                            thermal_resistance:
                            float = THERMAL_RESISTANCE_K_PER_MW_MM2,
                            ambient: float = AMBIENT_K
                            ) -> ThermalOperatingPoint:
    """Die temperature implied by the hottest layer's power density."""
    if thermal_resistance <= 0:
        raise ConfigurationError(
            f"thermal resistance must be positive, "
            f"got {thermal_resistance}")
    densities = layer_power_density(system, report)
    if not densities:
        raise ConfigurationError(
            f"system {system.name!r} has no on-chip power density; "
            f"set pixel geometry or memory areas")
    hottest = max(densities.values())
    rise = thermal_resistance * hottest / (units.mW / units.mm2)
    return ThermalOperatingPoint(power_density=hottest,
                                 temperature_rise=rise,
                                 temperature=ambient + rise)


def imaging_snr_at_operating_point(system: SensorSystem,
                                   report: EnergyReport,
                                   pixel: FunctionalPixel,
                                   illumination_electrons: float = 100.0,
                                   seed: int = 0) -> float:
    """Low-light SNR (dB) of ``pixel`` heated by this architecture.

    The pixel's dark current is re-evaluated at the die temperature the
    power density implies; exposure is one frame time.
    """
    point = thermal_operating_point(system, report)
    heated = FunctionalPixel(
        full_well_electrons=pixel.full_well_electrons,
        dark_current_e_per_s=pixel.dark_current_e_per_s,
        read_noise_electrons=pixel.read_noise_electrons,
        fpn_offset_electrons=pixel.fpn_offset_electrons,
        fpn_gain_fraction=pixel.fpn_gain_fraction,
        adc_bits=pixel.adc_bits,
        temperature=point.temperature)
    pipeline = FunctionalPipeline(heated, exposure_time=report.frame_time,
                                  seed=seed)
    return pipeline.measure_snr(illumination_electrons)
