"""Functional (noise-aware) simulation of the sensing chain.

The paper's energy model flags that 3D stacking raises power density and
hence thermal noise, "an exploration that CamJ enables" (Sec. 6.2); the
authors' public framework ships a functional simulation layer for exactly
this.  This subpackage reproduces it: pixel-level noise sources (photon
shot, dark current, read noise, fixed-pattern noise, quantization) and a
functional pipeline that pushes images through the modeled sensing chain
to measure SNR.
"""

from repro.noise.sources import (
    NoiseSource,
    PhotonShotNoise,
    DarkCurrentNoise,
    ReadNoise,
    FixedPatternNoise,
    QuantizationNoise,
    thermal_noise_sigma,
)
from repro.noise.pipeline import (
    FunctionalPixel,
    FunctionalPipeline,
    snr_db,
)
from repro.noise.thermal import (
    ThermalOperatingPoint,
    thermal_operating_point,
    imaging_snr_at_operating_point,
)

__all__ = [
    "NoiseSource",
    "PhotonShotNoise",
    "DarkCurrentNoise",
    "ReadNoise",
    "FixedPatternNoise",
    "QuantizationNoise",
    "thermal_noise_sigma",
    "FunctionalPixel",
    "FunctionalPipeline",
    "snr_db",
    "ThermalOperatingPoint",
    "thermal_operating_point",
    "imaging_snr_at_operating_point",
]
