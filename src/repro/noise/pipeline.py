"""Functional simulation of the sensing chain.

A :class:`FunctionalPipeline` chains the noise sources of one pixel design
in physical order — shot noise at photon arrival, dark current during
exposure, FPN at the pixel, read noise at the readout chain, quantization
at the ADC — and pushes synthetic scenes through it to measure signal
quality (SNR), the metric the thermal argument of Sec. 6.2 affects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro import units
from repro.exceptions import ConfigurationError
from repro.noise.sources import (
    DarkCurrentNoise,
    FixedPatternNoise,
    NoiseSource,
    PhotonShotNoise,
    QuantizationNoise,
    ReadNoise,
)


@dataclass
class FunctionalPixel:
    """Noise parameters of one pixel design."""

    full_well_electrons: float = 10000.0
    dark_current_e_per_s: float = 10.0
    read_noise_electrons: float = 2.5
    fpn_offset_electrons: float = 1.0
    fpn_gain_fraction: float = 0.01
    adc_bits: int = 10
    temperature: float = units.ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if self.full_well_electrons <= 0:
            raise ConfigurationError(
                f"full well must be positive, got {self.full_well_electrons}")
        if self.adc_bits < 1:
            raise ConfigurationError(
                f"ADC bits must be >= 1, got {self.adc_bits}")


class FunctionalPipeline:
    """The noise chain of one sensing design."""

    def __init__(self, pixel: FunctionalPixel, exposure_time: float,
                 seed: int = 0):
        if exposure_time <= 0:
            raise ConfigurationError(
                f"exposure time must be positive, got {exposure_time}")
        self.pixel = pixel
        self.exposure_time = exposure_time
        self.seed = seed
        self._sources: List[NoiseSource] = [
            PhotonShotNoise(seed=seed),
            DarkCurrentNoise(pixel.dark_current_e_per_s, exposure_time,
                             temperature=pixel.temperature, seed=seed + 1),
            FixedPatternNoise(pixel.fpn_offset_electrons,
                              pixel.fpn_gain_fraction, seed=seed + 2),
            ReadNoise(pixel.read_noise_electrons, seed=seed + 3),
            QuantizationNoise(pixel.adc_bits, pixel.full_well_electrons,
                              seed=seed + 4),
        ]

    def capture(self, photo_electrons: np.ndarray) -> np.ndarray:
        """One noisy capture of a scene given in mean photo-electrons."""
        if np.any(photo_electrons < 0):
            raise ConfigurationError(
                "scene must be non-negative photo-electron counts")
        signal = np.asarray(photo_electrons, dtype=float)
        for source in self._sources:
            signal = source.apply(signal)
        return signal

    def capture_stack(self, photo_electrons: np.ndarray,
                      num_frames: int) -> np.ndarray:
        """``num_frames`` noisy captures of one scene, as one stack.

        Vectorized: each noise source makes a single
        ``(num_frames, *scene.shape)`` draw
        (:meth:`~repro.noise.sources.NoiseSource.apply_stack`) instead
        of re-running the chain per frame, with FPN still drawing one
        frame-shaped pattern shared by every frame.  Statistically
        equivalent to ``num_frames`` :meth:`capture` calls; the exact
        per-pixel values differ from the sequential path because the
        generators consume their streams in one block per source.
        """
        if num_frames < 1:
            raise ConfigurationError(
                f"frame count must be >= 1, got {num_frames}")
        if np.any(photo_electrons < 0):
            raise ConfigurationError(
                "scene must be non-negative photo-electron counts")
        scene = np.asarray(photo_electrons, dtype=float)
        stack = np.broadcast_to(scene, (num_frames,) + scene.shape)
        for source in self._sources:
            stack = source.apply_stack(stack)
        return stack

    def measure_snr(self, mean_electrons: float,
                    shape=(64, 64), num_frames: int = 8) -> float:
        """SNR (dB) of a flat scene at ``mean_electrons`` illumination.

        Temporal noise is estimated from a vectorized
        :meth:`capture_stack` — one RNG draw per noise source for all
        ``num_frames`` frames, preserving the seeded statistics of the
        frame-by-frame loop within sampling tolerance.
        """
        if mean_electrons < 0:
            raise ConfigurationError(
                f"illumination must be non-negative, got {mean_electrons}")
        scene = np.full(shape, float(mean_electrons))
        stack = self.capture_stack(scene, num_frames)
        return snr_db(signal=mean_electrons,
                      noise_sigma=float(np.mean(np.std(stack, axis=0))))

    def dynamic_range_db(self) -> float:
        """Full-well over the dark noise floor, in dB."""
        pixel = self.pixel
        dark = DarkCurrentNoise(pixel.dark_current_e_per_s,
                                self.exposure_time,
                                temperature=pixel.temperature)
        floor = np.sqrt(dark.mean_dark_electrons
                        + pixel.read_noise_electrons ** 2)
        return snr_db(pixel.full_well_electrons, float(floor))


def snr_db(signal: float, noise_sigma: float) -> float:
    """Signal-to-noise ratio in decibels."""
    if noise_sigma <= 0:
        raise ConfigurationError(
            f"noise sigma must be positive, got {noise_sigma}")
    if signal <= 0:
        raise ConfigurationError(f"signal must be positive, got {signal}")
    return 20.0 * float(np.log10(signal / noise_sigma))
