"""The exploration engine: spaces in, Pareto-analyzed results out.

:func:`explore` enumerates a :class:`~repro.explore.space.ParameterSpace`,
binds each point into a design builder (a callable or a registered
use-case name), runs the whole batch through
:meth:`repro.api.Simulator.run_many` — cached, deduplicated, parallel —
and evaluates the requested objective :class:`~repro.explore.metrics.Metric`
on every feasible point.  Points whose builder, simulation, or metric
extraction fails with a framework error stay in the result as typed
infeasible points: infeasibility boundaries are data, not crashes.

The :class:`ExplorationResult` exposes N-objective Pareto frontier
extraction, dominance ranking (iterated non-dominated sorting), and a
per-point energy-bottleneck annotation, and round-trips through JSON
under the ``repro.explore/1`` schema.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.api.design import Design
from repro.api.registry import build_usecase
from repro.api.result import SimOptions, SimResult
from repro.api.simulator import Simulator
from repro.energy.report import EnergyReport
from repro.exceptions import CamJError, ConfigurationError, \
    SerializationError, VectorUnsupported
from repro.explore.annotate import Bottleneck, identify_bottlenecks
from repro.resilience.faults import get_injector
from repro.explore.metrics import Metric, metric as _lookup_metric, \
    resolve_metrics
from repro.explore.space import OPTIONS_PREFIX, ParameterSpace

#: Schema tag of a serialized exploration result.
EXPLORATION_SCHEMA = "repro.explore/1"

#: The per-batch resilience counters an exploration aggregates.
RESILIENCE_COUNTERS = ("retries", "timeouts", "pool_rebuilds",
                       "quarantined")

#: Per-engine point tallies an exploration reports: how many points the
#: structure-of-arrays fast path evaluated vs. how many went through the
#: per-point object path (``run_many``).  Under ``engine="object"`` both
#: stay zero — nothing was routed.
ENGINE_COUNTERS = ("vectorized", "fallback")

#: Valid values of the ``engine`` parameter.
ENGINE_CHOICES = ("auto", "vector", "object")

#: Objectives used when the caller names none: the Sec. 6 trade-off
#: (energy vs. power density) plus the latency the frame budget gates.
DEFAULT_OBJECTIVES = ("energy_per_frame", "power_density", "latency")

#: What a builder may produce: a Design or the legacy triple.
BuilderResult = Union[Design, tuple]
Builder = Union[str, Callable[..., BuilderResult]]


# --- N-objective dominance -------------------------------------------------

def dominates(a: Sequence[float], b: Sequence[float],
              goals: Sequence[str]) -> bool:
    """Strict Pareto dominance of vector ``a`` over ``b``.

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one, where "better" follows each
    objective's goal (``"min"`` or ``"max"``).  Ties — equal on every
    objective — dominate in neither direction.  Vectors containing NaN
    are incomparable: they never dominate and are never dominated.
    """
    if len(a) != len(b) or len(a) != len(goals):
        raise ConfigurationError(
            f"objective vectors must match the goal list: "
            f"{len(a)}/{len(b)} values vs {len(goals)} goals")
    bad_goals = [goal for goal in goals if goal not in ("min", "max")]
    if bad_goals:
        raise ConfigurationError(
            f"goals must be 'min' or 'max', got {sorted(set(bad_goals))}")
    if any(math.isnan(value) for value in a) \
            or any(math.isnan(value) for value in b):
        return False
    better = False
    for ours, theirs, goal in zip(a, b, goals):
        if goal == "max":
            ours, theirs = -ours, -theirs
        if ours > theirs:
            return False
        if ours < theirs:
            better = True
    return better


def _sort_key(vector: Sequence[float], goals: Sequence[str]
              ) -> Tuple[float, ...]:
    """Goal-adjusted vector: ascending sort puts better points first."""
    return tuple(-value if goal == "max" else value
                 for value, goal in zip(vector, goals))


def pareto_indices(vectors: Sequence[Sequence[float]],
                   goals: Sequence[str]) -> List[int]:
    """Indices of the non-dominated vectors, deterministically ordered.

    The order is by goal-adjusted objective vector (first objective
    first), index as the final tie-break — stable across runs and input
    permutations of equal multisets.  NaN-containing vectors are never
    part of the frontier.
    """
    front = [index for index, vector in enumerate(vectors)
             if not any(math.isnan(value) for value in vector)
             and not any(dominates(other, vector, goals)
                         for other in vectors)]
    return sorted(front,
                  key=lambda index: (_sort_key(vectors[index], goals), index))


def dominance_ranks(vectors: Sequence[Sequence[float]],
                    goals: Sequence[str]) -> List[Optional[int]]:
    """Non-dominated sorting rank per vector (0 = Pareto frontier).

    Rank ``k`` is the frontier of what remains after peeling ranks
    ``0..k-1`` away.  NaN-containing vectors get rank ``None``.
    """
    ranks: List[Optional[int]] = [None] * len(vectors)
    remaining = [index for index, vector in enumerate(vectors)
                 if not any(math.isnan(value) for value in vector)]
    rank = 0
    while remaining:
        layer = [index for index in remaining
                 if not any(dominates(vectors[other], vectors[index], goals)
                            for other in remaining)]
        if not layer:  # pragma: no cover - dominance is a strict order
            break
        for index in layer:
            ranks[index] = rank
        layer_set = set(layer)
        remaining = [index for index in remaining
                     if index not in layer_set]
        rank += 1
    return ranks


# --- result model ---------------------------------------------------------

@dataclass(frozen=True)
class ExplorationPoint:
    """One evaluated point of an exploration.

    ``params`` are the space coordinates that produced the point;
    ``metrics`` maps objective names to values (empty when infeasible).
    The in-memory :class:`EnergyReport` is attached for downstream
    analysis but is deliberately not part of the serialized form — the
    metrics are the durable record.
    """

    params: Dict[str, Any]
    metrics: Dict[str, float] = field(default_factory=dict)
    design_name: Optional[str] = None
    design_hash: Optional[str] = None
    failure_type: Optional[str] = None
    failure: Optional[str] = None
    bottleneck: Optional[Bottleneck] = None
    report: Optional[EnergyReport] = field(default=None, repr=False,
                                           compare=False)

    @property
    def feasible(self) -> bool:
        return self.failure is None

    def objective_vector(self, objectives: Sequence[Metric]
                         ) -> Tuple[float, ...]:
        """The point's values for ``objectives``, in order."""
        return tuple(self.metrics[objective.name]
                     for objective in objectives)

    def label(self) -> str:
        """Compact ``name=value`` rendering of the coordinates."""
        return " ".join(f"{name}={value}"
                        for name, value in self.params.items())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "params": dict(self.params),
            "design": self.design_name,
            "design_hash": self.design_hash,
            "feasible": self.feasible,
            "metrics": dict(self.metrics),
            "failure": ({"type": self.failure_type, "message": self.failure}
                        if self.failure is not None else None),
            "bottleneck": (self.bottleneck.to_dict()
                           if self.bottleneck is not None else None),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExplorationPoint":
        try:
            failure = payload.get("failure")
            bottleneck = payload.get("bottleneck")
            return cls(
                params=dict(payload["params"]),
                metrics=dict(payload["metrics"]),
                design_name=payload.get("design"),
                design_hash=payload.get("design_hash"),
                failure_type=(failure or {}).get("type"),
                failure=(failure or {}).get("message"),
                bottleneck=(Bottleneck.from_dict(bottleneck)
                            if bottleneck is not None else None))
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed exploration point: {error}") from error


@dataclass
class ExplorationResult:
    """Everything one exploration produced, Pareto analysis included.

    ``resilience`` tallies the fault-tolerance events the run absorbed
    (``retries``/``timeouts``/``pool_rebuilds``/``quarantined`` — see
    :class:`repro.api.simulator.BatchStats`); all zeros on a healthy
    run, so healthy documents stay byte-identical across retries of
    the same study.  ``engines`` tallies how many points each
    evaluation engine handled (``vectorized``/``fallback`` — see
    :data:`ENGINE_COUNTERS`); old documents without the key load as
    all zeros.
    """

    name: str
    objectives: List[Metric]
    options: SimOptions
    points: List[ExplorationPoint]
    resilience: Dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(RESILIENCE_COUNTERS, 0))
    engines: Dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(ENGINE_COUNTERS, 0))

    @property
    def goals(self) -> Tuple[str, ...]:
        return tuple(objective.goal for objective in self.objectives)

    @property
    def feasible_points(self) -> List[ExplorationPoint]:
        return [point for point in self.points if point.feasible]

    @property
    def infeasible_points(self) -> List[ExplorationPoint]:
        return [point for point in self.points if not point.feasible]

    # --- Pareto analysis --------------------------------------------------

    def frontier_indices(self) -> List[int]:
        """Indices (into ``points``) of the Pareto frontier, in
        deterministic objective order."""
        feasible = [(index, point.objective_vector(self.objectives))
                    for index, point in enumerate(self.points)
                    if point.feasible]
        if not feasible:
            return []
        local = pareto_indices([vector for _, vector in feasible],
                               self.goals)
        return [feasible[position][0] for position in local]

    def frontier(self) -> List[ExplorationPoint]:
        """The non-dominated feasible points, deterministically ordered."""
        return [self.points[index] for index in self.frontier_indices()]

    def dominance_ranks(self) -> List[Optional[int]]:
        """Per-point non-dominated-sorting rank (None for infeasible)."""
        feasible = [(index, point.objective_vector(self.objectives))
                    for index, point in enumerate(self.points)
                    if point.feasible]
        ranks: List[Optional[int]] = [None] * len(self.points)
        if feasible:
            local = dominance_ranks([vector for _, vector in feasible],
                                    self.goals)
            for (index, _), rank in zip(feasible, local):
                ranks[index] = rank
        return ranks

    # --- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Versioned JSON-compatible payload (schema ``repro.explore/1``).

        The frontier indices and dominance ranks are derived from the
        points deterministically, so a round-tripped result re-emits the
        identical document.
        """
        return {
            "schema": EXPLORATION_SCHEMA,
            "name": self.name,
            "objectives": [{"name": objective.name, "goal": objective.goal,
                            "unit": objective.unit}
                           for objective in self.objectives],
            "options": self.options.to_dict(),
            "points": [point.to_dict() for point in self.points],
            "frontier": self.frontier_indices(),
            "ranks": self.dominance_ranks(),
            "resilience": {key: int(self.resilience.get(key, 0))
                           for key in RESILIENCE_COUNTERS},
            "engines": {key: int(self.engines.get(key, 0))
                        for key in ENGINE_COUNTERS},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExplorationResult":
        """Inverse of :meth:`to_dict` (frontier/ranks are recomputed)."""
        if not isinstance(payload, dict):
            raise SerializationError(
                f"exploration payload must be an object, "
                f"got {type(payload).__name__}")
        if payload.get("schema") != EXPLORATION_SCHEMA:
            raise SerializationError(
                f"expected schema {EXPLORATION_SCHEMA!r}, "
                f"got {payload.get('schema')!r}")
        try:
            objectives = [_metric_from_payload(raw)
                          for raw in payload["objectives"]]
            options = SimOptions.from_dict(payload["options"])
            points = [ExplorationPoint.from_dict(raw)
                      for raw in payload["points"]]
            name = payload["name"]
        except KeyError as error:
            raise SerializationError(
                f"exploration payload missing {error}") from error
        raw_resilience = payload.get("resilience") or {}
        resilience = {key: int(raw_resilience.get(key, 0))
                      for key in RESILIENCE_COUNTERS}
        raw_engines = payload.get("engines") or {}
        engines = {key: int(raw_engines.get(key, 0))
                   for key in ENGINE_COUNTERS}
        return cls(name=name, objectives=objectives, options=options,
                   points=points, resilience=resilience, engines=engines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The result as a canonical JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "ExplorationResult":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"exploration document is not valid JSON: {error}") \
                from error
        return cls.from_dict(payload)

    def save(self, path) -> None:
        """Write the result to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "ExplorationResult":
        """Read a result written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # --- rendering --------------------------------------------------------

    def to_table(self) -> str:
        """Human-readable summary: all points, frontier starred."""
        frontier = set(self.frontier_indices())
        ranks = self.dominance_ranks()
        lines = [f"Exploration — {self.name}: {len(self.points)} points, "
                 f"{len(self.feasible_points)} feasible, "
                 f"{len(self.infeasible_points)} infeasible, "
                 f"frontier {len(frontier)}",
                 "objectives: " + ", ".join(
                     f"{objective.name} [{objective.unit}, {objective.goal}]"
                     for objective in self.objectives)]
        for index, point in enumerate(self.points):
            if not point.feasible:
                lines.append(f"    {point.label():<36} infeasible: "
                             f"{point.failure_type}: {point.failure}")
                continue
            marker = "*" if index in frontier else " "
            values = "  ".join(
                f"{objective.name}={point.metrics[objective.name]:.6g}"
                for objective in self.objectives)
            lines.append(f"  {marker} {point.label():<36} {values}  "
                         f"[rank {ranks[index]}]")
        annotated = [self.points[index] for index in
                     sorted(frontier)
                     if self.points[index].bottleneck is not None]
        if annotated:
            lines.append("frontier bottlenecks:")
            for point in annotated:
                bottleneck = point.bottleneck
                lines.append(
                    f"    {point.label():<36} {bottleneck.name} "
                    f"({bottleneck.category.value}, "
                    f"{100 * bottleneck.share:.1f}%) -> {bottleneck.hint}")
        return "\n".join(lines)


def _metric_from_payload(raw: Dict[str, Any]) -> Metric:
    """A Metric from its serialized (name, goal, unit) triple.

    The extractor is re-attached from the registry when the name is
    still registered; otherwise the metric deserializes as data-only and
    raises if re-evaluated.
    """
    if not isinstance(raw, dict) or "name" not in raw:
        raise SerializationError(
            f"objective spec must be an object with a 'name', got {raw!r}")
    name = raw["name"]
    vector = None
    try:
        registered = _lookup_metric(name)
        extract = registered.extract
        vector = registered.vector
    except ConfigurationError:
        def extract(design, report, _name=name):
            raise ConfigurationError(
                f"metric {_name!r} was deserialized without an extractor; "
                f"register it before re-evaluating")
    return Metric(name=name, unit=raw.get("unit", ""), extract=extract,
                  goal=raw.get("goal", "min"), vector=vector)


# --- the engine -----------------------------------------------------------

class ExplorationInterrupted(Exception):
    """An exploration stopped early because ``should_stop()`` said so.

    Deliberately *not* a :class:`CamJError`: interruption is control
    flow (a cancelled job, a shutting-down daemon), never an infeasible
    point or a framework failure, so nothing that maps framework errors
    onto typed results may swallow it.
    """


def _as_design(built: BuilderResult) -> Design:
    if isinstance(built, Design):
        return built
    stages, system, mapping = built
    return Design(stages, system, mapping)


def _split_plan(names: Tuple[str, ...]) -> Tuple[tuple, tuple, tuple]:
    """Split plan for one key-set: builder names, full and short
    (prefix-stripped) option-override names."""
    build_names = tuple(name for name in names
                        if not name.startswith(OPTIONS_PREFIX))
    override_full = tuple(name for name in names
                          if name.startswith(OPTIONS_PREFIX))
    override_short = tuple(name[len(OPTIONS_PREFIX):]
                           for name in override_full)
    return build_names, override_full, override_short


def explore(space: ParameterSpace,
            builder: Builder,
            objectives: Sequence[Union[str, Metric]] = DEFAULT_OBJECTIVES,
            options: Optional[SimOptions] = None,
            simulator: Optional[Simulator] = None,
            name: Optional[str] = None,
            annotate: bool = True,
            engine: str = "auto") -> ExplorationResult:
    """Run ``builder`` across ``space`` and analyze the objectives.

    Parameters
    ----------
    space:
        The parameter space to enumerate.  Names prefixed ``options.``
        override :class:`SimOptions` fields per point; all other names
        are keyword arguments of the builder.
    builder:
        ``builder(**params) -> Design`` (or the legacy triple), or the
        name of a registered use case.
    objectives:
        Metric names (or :class:`Metric` values) to evaluate per point.
    options:
        Base simulation options; defaults to the simulator session's.
    simulator:
        An existing session to run (and cache) through.  Passing one
        session across repeated explorations reuses its worker pool and
        both result-cache tiers; a session created here is closed before
        returning.
    annotate:
        Attach the top energy bottleneck to every feasible point.
    engine:
        Point-evaluation strategy.  ``"auto"`` (default) routes groups
        of :data:`~repro.explore.vector.VECTOR_MIN_POINTS`-or-more
        points that share one design and vary only in options through
        the vectorized structure-of-arrays path
        (:mod:`repro.explore.vector`) — bit-identical results, orders
        of magnitude faster — and everything else through the object
        path.  ``"vector"`` vectorizes every group it can (any size)
        and raises :class:`ConfigurationError` when the objectives (or
        a missing numpy) make vectorization impossible; unsupported
        *designs* still fall back per group.  ``"object"`` forces
        today's per-point path for everything.

    Builder failures, simulation failures (timing, stalls), and metric
    extraction failures are all :class:`CamJError`-typed infeasible
    points in the result, never exceptions — infeasibility boundaries
    are exactly what an exploration maps out.
    """
    return explore_stream(space, builder, objectives=objectives,
                          options=options, simulator=simulator, name=name,
                          annotate=annotate, engine=engine)


def explore_stream(space: ParameterSpace,
                   builder: Builder,
                   objectives: Sequence[Union[str, Metric]]
                   = DEFAULT_OBJECTIVES,
                   options: Optional[SimOptions] = None,
                   simulator: Optional[Simulator] = None,
                   name: Optional[str] = None,
                   annotate: bool = True,
                   chunk_size: Optional[int] = None,
                   on_progress: Optional[Callable[
                       [List[ExplorationPoint], int, int, int], None]] = None,
                   should_stop: Optional[Callable[[], bool]] = None,
                   engine: str = "auto") -> ExplorationResult:
    """:func:`explore`, incrementally: points surface as they complete.

    The space is evaluated in chunks of ``chunk_size`` points
    (``None``: one chunk, exactly :func:`explore`).  After each chunk,
    ``on_progress(points, completed, total, cache_hits)`` receives the
    chunk's finished :class:`ExplorationPoint` values (in space order),
    the running completed count, the total point count, and how many of
    the chunk's simulations were served from the result cache — the
    hook streaming consumers (the ``repro serve`` daemon, JSONL
    writers) build on.  Before every chunk ``should_stop()`` is
    consulted; returning true aborts the exploration by raising
    :class:`ExplorationInterrupted`, which is how daemon jobs cancel
    mid-flight without losing the session.

    Results, ordering, and infeasible-point semantics are identical to
    :func:`explore`; chunking only changes *when* work becomes visible.
    """
    resolved_objectives = resolve_metrics(objectives)
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(
            f"chunk_size must be >= 1 or None, got {chunk_size}")
    if engine not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"engine must be one of {ENGINE_CHOICES}, got {engine!r}")
    if engine == "vector":
        from repro.explore import vector as vector_engine
        support_error = vector_engine.vector_support_error(
            resolved_objectives)
        if support_error is not None:
            raise ConfigurationError(
                f"engine 'vector' is unavailable: {support_error}")
    owns_session = simulator is None
    simulator = simulator if simulator is not None else Simulator(options)
    base_options = options if options is not None else simulator.options
    if isinstance(builder, str):
        usecase = builder
        build = lambda **params: build_usecase(usecase, **params)  # noqa: E731
        result_name = name if name is not None else usecase
    else:
        build = builder
        result_name = name if name is not None else \
            getattr(builder, "__name__", "exploration")
        if result_name == "<lambda>":
            result_name = "exploration"

    option_fields = set(SimOptions().to_dict())
    bad_axes = [axis for axis in space.names
                if axis.startswith(OPTIONS_PREFIX)
                and axis[len(OPTIONS_PREFIX):] not in option_fields]
    if bad_axes:
        raise ConfigurationError(
            f"unknown SimOptions axes {sorted(bad_axes)}; "
            f"supported: {sorted(OPTIONS_PREFIX + f for f in option_fields)}")

    all_params = list(space)
    total = len(all_params)
    step = chunk_size if chunk_size is not None else max(total, 1)
    built_cache: Dict[tuple, Union[Design, CamJError]] = {}
    options_cache: Dict[tuple, SimOptions] = {}
    points: List[ExplorationPoint] = []
    resilience = dict.fromkeys(RESILIENCE_COUNTERS, 0)
    engines = dict.fromkeys(ENGINE_COUNTERS, 0)
    # A session we created exists only for this exploration: release its
    # pool workers once done (caller-provided sessions keep theirs for
    # the next exploration).
    try:
        for start in range(0, total, step):
            if should_stop is not None and should_stop():
                raise ExplorationInterrupted(
                    f"exploration {result_name!r} stopped after "
                    f"{len(points)}/{total} points")
            chunk_points, chunk_hits, chunk_resilience, chunk_engines = \
                _run_chunk(
                    all_params[start:start + step], build, base_options,
                    built_cache, simulator, resolved_objectives, annotate,
                    engine, options_cache)
            points.extend(chunk_points)
            for counter, count in chunk_resilience.items():
                resilience[counter] += count
            for counter, count in chunk_engines.items():
                engines[counter] += count
            if on_progress is not None:
                on_progress(chunk_points, len(points), total, chunk_hits)
    except (KeyboardInterrupt, SystemExit):
        # Interrupted mid-exploration (Ctrl-C, SIGTERM): reclaim pool
        # workers without draining the remaining queue, so no process
        # workers linger behind a dying CLI.
        simulator.close(cancel_pending=True)
        raise
    finally:
        if owns_session:
            simulator.close()

    return ExplorationResult(name=result_name,
                             objectives=resolved_objectives,
                             options=base_options, points=points,
                             resilience=resilience, engines=engines)


def _run_chunk(chunk_params: List[Dict[str, Any]],
               build: Callable[..., BuilderResult],
               base_options: SimOptions,
               built_cache: Dict[tuple, Union[Design, CamJError]],
               simulator: Simulator,
               objectives: Sequence[Metric],
               annotate: bool,
               engine: str = "auto",
               options_cache: Optional[Dict[tuple, SimOptions]] = None,
               ) -> Tuple[List[ExplorationPoint], int, Dict[str, int],
                          Dict[str, int]]:
    """Build, simulate, and evaluate one chunk of space points.

    Identical builder params build the design once — ``built_cache``
    persists across chunks, so option-only sweeps build exactly one
    design no matter how finely the run is chunked (``options_cache``
    does the same for validated per-point option overrides).  Returns
    the chunk's points (in input order), its result-cache hit count,
    the resilience counters its one ``run_many`` batch reported, and
    the engine counters (vector-evaluated vs object-fallback point
    counts).
    """
    if options_cache is None:
        options_cache = {}
    # Phase 1: enumerate and build.  Failures of either the builder or
    # the per-point options become typed infeasible points.
    slots: List[Tuple[Dict[str, Any], Optional[Design],
                      Optional[SimOptions], Optional[CamJError]]] = []
    # Points of one space share their key tuple, so the name split is
    # computed once per distinct key-set instead of once per point.
    split_plans: Dict[tuple, Tuple[tuple, tuple]] = {}
    for params in chunk_params:
        names = tuple(params)
        plan = split_plans.get(names)
        if plan is None:
            plan = _split_plan(names)
            split_plans[names] = plan
        build_names, override_full, override_short = plan
        if override_full:
            # Validated options dedup across points (and chunks): a
            # frame-rate axis shared by many designs replays the same
            # overrides for every design.  The key is built straight
            # from the point — no intermediate dict on the hot path —
            # with unhashable values falling through to a fresh build.
            try:
                options_key = (override_short,
                               tuple(map(params.__getitem__,
                                         override_full)))
                point_options = options_cache.get(options_key)
            except TypeError:
                options_key = None
                point_options = None
            if point_options is None:
                overrides = dict(zip(override_short,
                                     map(params.__getitem__,
                                         override_full)))
                try:
                    point_options = base_options.replace(**overrides)
                except CamJError as error:
                    slots.append((params, None, None, error))
                    continue
                if options_key is not None:
                    options_cache[options_key] = point_options
        else:
            point_options = base_options
        try:
            key = (build_names, tuple(map(params.__getitem__, build_names)))
            cached = built_cache.get(key)
        except TypeError:
            key = None
            cached = None
        if cached is None:
            build_params = {name: params[name] for name in build_names}
            try:
                cached = _as_design(build(**build_params))
            except CamJError as error:
                cached = error
            if key is not None:
                built_cache[key] = cached
        if isinstance(cached, CamJError):
            slots.append((params, None, None, cached))
        else:
            slots.append((params, cached, point_options, None))

    # Phase 2a: the vector fast path takes eligible groups (same design
    # object, numeric-only variation) out of the object batch entirely.
    engines = dict.fromkeys(ENGINE_COUNTERS, 0)
    vector_points: Dict[int, ExplorationPoint] = {}
    vector_hits = 0
    if engine != "object":
        vector_points, vector_hits = _run_vector_groups(
            slots, simulator, objectives, annotate, engine)
        engines["vectorized"] = len(vector_points)

    # Phase 2b: one parallel, deduplicated batch over the buildable
    # points the vector path did not claim.
    job_indices = [index for index, (_, _, _, error) in enumerate(slots)
                   if error is None and index not in vector_points]
    jobs = [(slots[index][1], slots[index][2]) for index in job_indices]
    results = simulator.run_many(jobs) if jobs else []
    if engine != "object":
        engines["fallback"] = len(jobs)
    # Per-result ``cached`` flags are race-free under concurrent batches
    # on a shared session, unlike the session-wide counters.  The batch
    # stats must be read *here*, right after our own run_many call (an
    # empty chunk never ran a batch, so its counters are all zero).
    chunk_hits = sum(1 for result in results if result.cached) + vector_hits
    resilience = dict.fromkeys(RESILIENCE_COUNTERS, 0)
    if jobs:
        stats = simulator.last_batch_stats
        if stats is not None:
            for counter in RESILIENCE_COUNTERS:
                resilience[counter] = getattr(stats, counter, 0)

    # Phase 3: evaluate objectives and annotate.  When the vector path
    # claimed the whole chunk (so no error slots existed either), the
    # merge is a straight read-out.
    if len(vector_points) == len(slots):
        return [vector_points[index] for index in range(len(slots))], \
            chunk_hits, resilience, engines
    points: List[ExplorationPoint] = []
    cursor = iter(results)
    for index, (params, design, _, error) in enumerate(slots):
        if error is not None:
            points.append(ExplorationPoint(
                params=params, failure_type=type(error).__name__,
                failure=str(error)))
            continue
        if index in vector_points:
            points.append(vector_points[index])
            continue
        points.append(_evaluate_point(params, design, next(cursor),
                                      objectives, annotate))

    return points, chunk_hits, resilience, engines


def _run_vector_groups(slots, simulator: Simulator,
                       objectives: Sequence[Metric], annotate: bool,
                       engine: str
                       ) -> Tuple[Dict[int, ExplorationPoint], int]:
    """Route eligible slot groups through the vector fast path.

    Groups slots by design identity (the built-design cache already
    collapses option-only sweeps onto one object) and hands each
    large-enough group to :func:`repro.explore.vector.evaluate_group`.
    Returns the points it produced keyed by slot index, plus the
    number of them served from the result cache.  Any group the
    lowering rejects (:class:`VectorUnsupported`) is silently left for
    the object path — under ``engine="auto"`` that is the contract;
    under ``engine="vector"`` unsupported *objectives* were already
    rejected up front, and design-level rejections still degrade
    gracefully rather than failing the run.
    """
    from repro.explore import vector as vector_mod

    if not vector_mod.numpy_available() \
            or vector_mod.vector_support_error(objectives) is not None:
        return {}, 0
    if get_injector().active:
        # Fault injection hooks the object execution path; vectorized
        # evaluation would sidestep the injected faults.
        return {}, 0
    groups: Dict[int, List[int]] = {}
    designs: Dict[int, Design] = {}
    for index, (_, design, point_options, error) in enumerate(slots):
        if error is not None or point_options.cycle_accurate:
            continue
        groups.setdefault(id(design), []).append(index)
        designs[id(design)] = design
    min_points = 1 if engine == "vector" else vector_mod.VECTOR_MIN_POINTS
    vector_points: Dict[int, ExplorationPoint] = {}
    hits = 0
    for design_id, indices in groups.items():
        if len(indices) < min_points:
            continue
        design = designs[design_id]
        group = [(slots[index][0], slots[index][2]) for index in indices]
        try:
            group_points, group_hits = vector_mod.evaluate_group(
                simulator, design, group, objectives, annotate)
        except VectorUnsupported:
            continue
        for index, point in zip(indices, group_points):
            vector_points[index] = point
        hits += group_hits
    return vector_points, hits


def _evaluate_point(params: Dict[str, Any], design: Design,
                    result: SimResult, objectives: Sequence[Metric],
                    annotate: bool) -> ExplorationPoint:
    if not result.ok:
        return ExplorationPoint(
            params=params, design_name=design.name,
            design_hash=result.design_hash,
            failure_type=result.error_type, failure=result.failure)
    values: Dict[str, float] = {}
    for objective in objectives:
        try:
            values[objective.name] = objective.value(design, result.report)
        except CamJError as error:
            # A metric that cannot be computed on this design (e.g. a
            # power density without any on-chip area) makes the point
            # infeasible for this exploration, with the metric named.
            return ExplorationPoint(
                params=params, design_name=design.name,
                design_hash=result.design_hash,
                failure_type=type(error).__name__,
                failure=f"metric {objective.name!r}: {error}",
                report=result.report)
    bottleneck = None
    if annotate:
        top = identify_bottlenecks(result.report, top=1, min_share=0.0)
        bottleneck = top[0] if top else None
    return ExplorationPoint(params=params, metrics=values,
                            design_name=design.name,
                            design_hash=result.design_hash,
                            bottleneck=bottleneck, report=result.report)
