"""Composable, declarative parameter spaces.

A :class:`ParameterSpace` is a finite, lazily-enumerable set of parameter
bindings (plain ``{name: value}`` dicts).  Spaces compose: axes combine
into cartesian products (:func:`product`, :func:`grid`, or the ``*``
operator), pair up in lockstep (:func:`zipped`), and narrow through
predicates (:meth:`ParameterSpace.filter`).  The exploration engine binds
each enumerated point into a design builder, so a space never holds
designs — only the coordinates that produce them.

Axis and combinator spaces serialize to JSON (the ``space`` block of an
exploration spec); filtered subspaces carry an arbitrary predicate and
are therefore programmatic-only.

Parameter names prefixed ``options.`` address
:class:`~repro.api.result.SimOptions` fields instead of builder
arguments — ``choice("options.frame_rate", [15, 30, 60])`` sweeps the
simulation frame rate over an otherwise fixed design.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, SerializationError

#: Parameter prefix addressing a SimOptions field instead of the builder.
OPTIONS_PREFIX = "options."


class ParameterSpace:
    """Base class: a finite, lazily-enumerated set of parameter bindings."""

    @property
    def names(self) -> Tuple[str, ...]:
        """The parameter names every enumerated point binds."""
        raise NotImplementedError

    def points(self) -> Iterator[Dict[str, Any]]:
        """Enumerate the bindings lazily, in deterministic order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self.points()

    def __len__(self) -> int:
        raise NotImplementedError

    def __mul__(self, other: "ParameterSpace") -> "ProductSpace":
        """``a * b`` is the cartesian product of two spaces."""
        return product(self, other)

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]
               ) -> "FilteredSpace":
        """The subspace of points where ``predicate(params)`` holds."""
        return FilteredSpace(self, predicate)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (the ``space`` block of a spec file)."""
        raise SerializationError(
            f"{type(self).__name__} has no JSON form")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(names={list(self.names)}, "
                f"points={len(self)})")


class Axis(ParameterSpace):
    """One named parameter with an explicit value sequence."""

    def __init__(self, name: str, values: Sequence[Any],
                 _linspace: Optional[Tuple[float, float, int]] = None):
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"axis name must be a non-empty string, got {name!r}")
        values = list(values)
        if not values:
            raise ConfigurationError(f"axis {name!r} needs at least one value")
        self.name = name
        self.values = values
        self._linspace = _linspace

    @property
    def names(self) -> Tuple[str, ...]:
        return (self.name,)

    def points(self) -> Iterator[Dict[str, Any]]:
        for value in self.values:
            yield {self.name: value}

    def __len__(self) -> int:
        return len(self.values)

    def to_dict(self) -> Dict[str, Any]:
        if self._linspace is not None:
            start, stop, num = self._linspace
            return {"name": self.name,
                    "linspace": {"start": start, "stop": stop, "num": num}}
        return {"name": self.name, "values": list(self.values)}


class ProductSpace(ParameterSpace):
    """Cartesian product of disjointly-named subspaces (last axis fastest)."""

    def __init__(self, spaces: Sequence[ParameterSpace]):
        if not spaces:
            raise ConfigurationError("product needs at least one space")
        self.spaces = list(spaces)
        _check_disjoint_names(self.spaces)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for space in self.spaces for name in space.names)

    def points(self) -> Iterator[Dict[str, Any]]:
        for combo in itertools.product(*(space.points()
                                         for space in self.spaces)):
            merged: Dict[str, Any] = {}
            for part in combo:
                merged.update(part)
            yield merged

    def __len__(self) -> int:
        total = 1
        for space in self.spaces:
            total *= len(space)
        return total

    def to_dict(self) -> Dict[str, Any]:
        return {"product": [space.to_dict() for space in self.spaces]}


class ZipSpace(ParameterSpace):
    """Lockstep pairing of equally-long, disjointly-named subspaces."""

    def __init__(self, spaces: Sequence[ParameterSpace]):
        if not spaces:
            raise ConfigurationError("zip needs at least one space")
        self.spaces = list(spaces)
        _check_disjoint_names(self.spaces)
        lengths = {len(space) for space in self.spaces}
        if len(lengths) > 1:
            raise ConfigurationError(
                f"zipped spaces must have equal lengths, got "
                f"{[len(space) for space in self.spaces]}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for space in self.spaces for name in space.names)

    def points(self) -> Iterator[Dict[str, Any]]:
        for combo in zip(*(space.points() for space in self.spaces)):
            merged: Dict[str, Any] = {}
            for part in combo:
                merged.update(part)
            yield merged

    def __len__(self) -> int:
        return len(self.spaces[0])

    def to_dict(self) -> Dict[str, Any]:
        return {"zip": [space.to_dict() for space in self.spaces]}


class FilteredSpace(ParameterSpace):
    """A space narrowed by a predicate (programmatic-only: no JSON form)."""

    def __init__(self, base: ParameterSpace,
                 predicate: Callable[[Dict[str, Any]], bool]):
        if not callable(predicate):
            raise ConfigurationError("filter predicate must be callable")
        self.base = base
        self.predicate = predicate
        self._size: Optional[int] = None

    @property
    def names(self) -> Tuple[str, ...]:
        return self.base.names

    def points(self) -> Iterator[Dict[str, Any]]:
        for params in self.base.points():
            if self.predicate(params):
                yield params

    def __len__(self) -> int:
        # A predicate is opaque, so the size is only knowable by
        # enumeration; memoized because spaces are immutable by convention.
        if self._size is None:
            self._size = sum(1 for _ in self.points())
        return self._size


def _check_disjoint_names(spaces: Sequence[ParameterSpace]) -> None:
    seen: Dict[str, int] = {}
    for space in spaces:
        for name in space.names:
            if name in seen:
                raise ConfigurationError(
                    f"parameter {name!r} bound by more than one subspace")
            seen[name] = 1


# --- constructors ---------------------------------------------------------

def choice(name: str, values: Sequence[Any]) -> Axis:
    """An axis over an explicit value list (any JSON-able value type)."""
    return Axis(name, values)


def grid(**axes: Sequence[Any]) -> ParameterSpace:
    """Cartesian product of named value lists: ``grid(a=[1,2], b=[3,4])``."""
    if not axes:
        raise ConfigurationError("grid needs at least one axis")
    spaces = [Axis(name, values) for name, values in axes.items()]
    return spaces[0] if len(spaces) == 1 else ProductSpace(spaces)


def linspace(name: str, start: float, stop: float, num: int) -> Axis:
    """A numeric axis of ``num`` evenly spaced values over [start, stop]."""
    if num < 1:
        raise ConfigurationError(f"linspace needs num >= 1, got {num}")
    if num == 1:
        values: List[float] = [float(start)]
    else:
        step = (float(stop) - float(start)) / (num - 1)
        values = [float(start) + index * step for index in range(num - 1)]
        values.append(float(stop))  # hit the endpoint exactly
    return Axis(name, values, _linspace=(float(start), float(stop), num))


def product(*spaces: ParameterSpace) -> ProductSpace:
    """Cartesian product of spaces (nested products are flattened)."""
    flat: List[ParameterSpace] = []
    for space in spaces:
        if isinstance(space, ProductSpace):
            flat.extend(space.spaces)
        else:
            flat.append(space)
    return ProductSpace(flat)


def zipped(*spaces: ParameterSpace) -> ZipSpace:
    """Lockstep pairing: point i binds point i of every subspace."""
    return ZipSpace(spaces)


# --- JSON -----------------------------------------------------------------

def space_from_dict(payload: Any) -> ParameterSpace:
    """Inverse of :meth:`ParameterSpace.to_dict`.

    A bare list is shorthand for the product of its axes.
    """
    if isinstance(payload, list):
        return space_from_dict({"product": payload})
    if not isinstance(payload, dict):
        raise SerializationError(
            f"space spec must be an object or a list of axes, "
            f"got {type(payload).__name__}")
    if "product" in payload:
        return ProductSpace(_subspaces(payload["product"], "product"))
    if "zip" in payload:
        return ZipSpace(_subspaces(payload["zip"], "zip"))
    if "name" in payload:
        return _axis_from_dict(payload)
    raise SerializationError(
        f"space spec needs 'name', 'product', or 'zip'; "
        f"got keys {sorted(payload)}")


def _subspaces(raw: Any, combinator: str) -> List[ParameterSpace]:
    if not isinstance(raw, list) or not raw:
        raise SerializationError(
            f"'{combinator}' must be a non-empty list of space specs")
    return [space_from_dict(item) for item in raw]


def _axis_from_dict(payload: Dict[str, Any]) -> Axis:
    name = payload["name"]
    extra = set(payload) - {"name", "values", "linspace"}
    if extra:
        raise SerializationError(
            f"axis {name!r}: unknown keys {sorted(extra)}")
    if "linspace" in payload:
        if "values" in payload:
            raise SerializationError(
                f"axis {name!r}: 'values' and 'linspace' are exclusive")
        spec = payload["linspace"]
        if not isinstance(spec, dict) \
                or set(spec) != {"start", "stop", "num"}:
            raise SerializationError(
                f"axis {name!r}: 'linspace' needs exactly "
                f"{{'start', 'stop', 'num'}}")
        try:
            return linspace(name, spec["start"], spec["stop"], spec["num"])
        except TypeError as error:
            raise SerializationError(
                f"axis {name!r}: bad linspace: {error}") from error
    if "values" not in payload:
        raise SerializationError(
            f"axis {name!r} needs 'values' or 'linspace'")
    if not isinstance(payload["values"], list):
        raise SerializationError(
            f"axis {name!r}: 'values' must be a list")
    return Axis(name, payload["values"])
