"""Exploration spec files: a whole design-space study as one JSON object.

``python -m repro explore <spec.json>`` executes these.  A spec names a
registered use-case builder, declares the space to sweep, and picks the
objectives::

    {
      "schema": "repro.explore-spec/1",
      "usecase": "edgaze",
      "space": {"product": [
        {"name": "placement", "values": ["2D-In", "2D-Off", "3D-In"]},
        {"name": "cis_node", "values": [130, 65]}
      ]},
      "objectives": ["energy_per_frame", "power_density", "latency"],
      "options": {"frame_rate": 30.0}
    }

``schema``, ``objectives``, ``options``, and ``name`` are optional;
axes named ``options.<field>`` sweep simulation options instead of
builder parameters.  The result serializes under ``repro.explore/1``
(see :class:`~repro.explore.engine.ExplorationResult`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.result import SimOptions
from repro.api.simulator import Simulator
from repro.exceptions import SerializationError
from repro.explore.engine import (DEFAULT_OBJECTIVES, ENGINE_CHOICES,
                                  ExplorationResult, explore)
from repro.explore.space import ParameterSpace, space_from_dict

#: Schema tag of an exploration spec file.
EXPLORATION_SPEC_SCHEMA = "repro.explore-spec/1"


@dataclass(frozen=True)
class ExplorationSpec:
    """A parsed exploration spec, ready to run."""

    usecase: str
    space: ParameterSpace
    objectives: List[str] = field(
        default_factory=lambda: list(DEFAULT_OBJECTIVES))
    options: SimOptions = field(default_factory=SimOptions)
    name: Optional[str] = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_CHOICES:
            raise SerializationError(
                f"spec engine must be one of {ENGINE_CHOICES}, "
                f"got {self.engine!r}")

    def run(self, simulator: Optional[Simulator] = None
            ) -> ExplorationResult:
        """Execute the spec through the exploration engine."""
        return explore(self.space, self.usecase,
                       objectives=self.objectives, options=self.options,
                       simulator=simulator, name=self.name,
                       engine=self.engine)

    def to_dict(self) -> Dict[str, Any]:
        """The spec back as its JSON form."""
        payload: Dict[str, Any] = {
            "schema": EXPLORATION_SPEC_SCHEMA,
            "usecase": self.usecase,
            "space": self.space.to_dict(),
            "objectives": list(self.objectives),
            "options": self.options.to_dict(),
        }
        if self.name is not None:
            payload["name"] = self.name
        if self.engine != "auto":
            payload["engine"] = self.engine
        return payload


def exploration_spec_from_dict(payload: Dict[str, Any]) -> ExplorationSpec:
    """Parse a spec payload (inverse of :meth:`ExplorationSpec.to_dict`)."""
    if not isinstance(payload, dict):
        raise SerializationError(
            f"exploration spec must be an object, "
            f"got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema is not None and schema != EXPLORATION_SPEC_SCHEMA:
        raise SerializationError(
            f"expected schema {EXPLORATION_SPEC_SCHEMA!r}, got {schema!r}")
    unknown = set(payload) - {"schema", "usecase", "space", "objectives",
                              "options", "name", "engine"}
    if unknown:
        raise SerializationError(
            f"unknown exploration spec keys: {sorted(unknown)}")
    if "usecase" not in payload:
        raise SerializationError("exploration spec needs a 'usecase'")
    if "space" not in payload:
        raise SerializationError("exploration spec needs a 'space'")
    objectives = payload.get("objectives", list(DEFAULT_OBJECTIVES))
    if not isinstance(objectives, list) or not objectives \
            or not all(isinstance(item, str) for item in objectives):
        raise SerializationError(
            "'objectives' must be a non-empty list of metric names")
    return ExplorationSpec(
        usecase=payload["usecase"],
        space=space_from_dict(payload["space"]),
        objectives=list(objectives),
        options=SimOptions.from_dict(payload.get("options", {})),
        name=payload.get("name"),
        engine=payload.get("engine", "auto"))


def load_exploration_spec(path) -> ExplorationSpec:
    """Read an exploration spec file written as JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"spec file {path} is not valid JSON: {error}") from error
    return exploration_spec_from_dict(payload)
