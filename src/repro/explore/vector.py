"""Structure-of-arrays batch evaluation: the explore fast path.

Exploration grids routinely sweep *numeric knobs* over one built design
— frame rates, exposure slots — producing groups of points that share a
stage graph, mapping, and hardware but differ only in
:class:`~repro.api.result.SimOptions`.  The object path simulates each
such point through the full engine; this module evaluates a whole group
at once:

1. the design is *lowered* once into per-component energy kernels
   (:mod:`repro.hw.analog.vector`), memoized per content hash;
2. the design-only passes (timeline, analog usage, communication
   energy) run through the session's :class:`PassMemo` exactly like the
   engine would;
3. timing, analog/digital energy, and power density evaluate as
   element-wise NumPy expressions over per-point column vectors;
4. metrics extract columns through their ``vector`` extractors.

Equivalence contract: every float operation sequence of the scalar
engine is replayed element-wise, so vector-evaluated points are
*bit-identical* to object-path points — same metrics, same infeasibility
boundaries, same :class:`TimingError` messages — which the property
tests in ``tests/test_vector.py`` assert.  Designs, cells, memories, or
metrics that cannot be vectorized raise
:class:`~repro.exceptions.VectorUnsupported` during lowering (before any
observable cache side effect) and the engine falls back to
:meth:`Simulator.run_many` for the group.

Cache semantics match the object path: every point probes the session
result cache first (hits are served as cached results, misses counted),
and vector-evaluated outcomes are offered back to the cache as lazy
thunks (:meth:`Simulator.offer_result`) that materialize a full
:class:`SimResult` only if the key is ever requested again.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.design import Design
from repro.api.result import SimOptions, SimResult
from repro.api.simulator import Simulator
from repro.energy.analog_model import analog_energy_batch, analog_usage
from repro.energy.comm_model import communication_energy
from repro.energy.digital_model import digital_energy_batch
from repro.energy.report import (Category, EnergyEntry, EnergyReport,
                                 VectorEntry)
from repro.exceptions import CamJError, TimingError, VectorUnsupported
from repro.explore.annotate import _HINTS, Bottleneck
from repro.explore.engine import ExplorationPoint, _evaluate_point
from repro.explore.metrics import Metric
from repro.hw.analog.vector import lower_array, numpy_available
from repro.resilience.policy import FailureClass, classify
from repro.sim.cycle_sim import simulate_digital
from repro.sim.simulator import _run_pass

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None

#: Smallest same-design group the ``auto`` engine vectorizes.  Tiny
#: groups gain nothing over the object path (lowering plus array setup
#: costs more than a handful of scalar runs), and below this bound the
#: object path's per-point reports stay attached — the behavior existing
#: small sweeps (and their tests) expect.  ``engine="vector"`` ignores
#: the bound and vectorizes any group it can.
VECTOR_MIN_POINTS = 4

_LOWERED_LIMIT = 128
_lowered_cache: "OrderedDict[str, Dict[str, Callable]]" = OrderedDict()
_lowered_lock = threading.Lock()


def vector_support_error(objectives: Sequence[Metric]) -> Optional[str]:
    """Why the vector path cannot serve these objectives; None if it can."""
    if not numpy_available():  # pragma: no cover - numpy ships in CI
        return "numpy is not installed"
    missing = sorted(objective.name for objective in objectives
                     if objective.vector is None)
    if missing:
        return (f"objective(s) {missing} have no vector extractor; "
                f"register the metric with a vector= callable or use "
                f"the object engine")
    return None


def _lower_design(design: Design, design_hash: Optional[str]
                  ) -> Dict[str, Callable]:
    """Lower every analog array of a design to vector energy kernels.

    Pure over the design's *system* (no passes run, no cache touched),
    so eligibility is decided before the group produces any observable
    side effect.  Also pre-screens the digital memories — their leakage
    formula is replayed element-wise later, which only mirrors the stock
    implementation.  Memoized per content hash.
    """
    if design_hash is not None:
        with _lowered_lock:
            cached = _lowered_cache.get(design_hash)
            if cached is not None:
                _lowered_cache.move_to_end(design_hash)
                return cached
    from repro.hw.digital.memory import DigitalMemory
    for memory in design.system.memories:
        if getattr(type(memory), "leakage_energy", None) \
                is not DigitalMemory.leakage_energy:
            raise VectorUnsupported(
                f"memory {getattr(memory, 'name', memory)!r} overrides "
                f"leakage_energy")
    lowered = {array.name: lower_array(array)
               for array in design.system.analog_arrays}
    if design_hash is not None:
        with _lowered_lock:
            _lowered_cache[design_hash] = lowered
            while len(_lowered_cache) > _LOWERED_LIMIT:
                _lowered_cache.popitem(last=False)
    return lowered


class VectorBatch:
    """Column view of one vector-evaluated group of feasible points.

    Metric ``vector`` extractors receive this in place of a per-point
    :class:`EnergyReport`; the rollups mirror the report's with the same
    left-fold float arithmetic, element-wise, so each column element is
    bit-identical to the scalar metric of that point.  Values may be
    design-constant scalars (broadcast); :meth:`materialize` turns any
    extractor result into a dense per-point column.
    """

    def __init__(self, design: Design, size: int, frame_rate, frame_time,
                 digital_latency: float, entries: List[VectorEntry]):
        self.design = design
        self.system = design.system
        self.size = size
        self.frame_rate = frame_rate
        self.frame_time = frame_time
        self.digital_latency = digital_latency
        self.entries = entries
        self._total = None
        self._by_category: Optional[Dict[Category, Any]] = None

    def materialize(self, values) -> Any:
        """A dense per-point column from a vector or a constant scalar."""
        if isinstance(values, _np.ndarray):
            return values
        return _np.full(self.size, float(values))

    def total_energy(self):
        if self._total is None:
            total = _np.zeros(self.size)
            for entry in self.entries:
                total = total + entry.energy
            self._total = total
        return self._total

    def total_power(self):
        return self.total_energy() * self.frame_rate

    def by_category(self) -> Dict[Category, Any]:
        if self._by_category is None:
            rollup: Dict[Category, Any] = {}
            for entry in self.entries:
                rollup[entry.category] = rollup.get(entry.category, 0.0) \
                    + entry.energy
            self._by_category = rollup
        return self._by_category

    def category_energy(self, category: Category):
        return self.by_category().get(category, 0.0)

    def category_share(self, category: Category):
        total = self.total_energy()
        energy = self.materialize(self.category_energy(category))
        share = _np.zeros(self.size)
        _np.divide(energy, total, out=share, where=total != 0.0)
        return share

    def analog_energy(self):
        return (self.category_energy(Category.SEN)
                + self.category_energy(Category.COMP_A)
                + self.category_energy(Category.MEM_A))

    def digital_energy(self):
        return (self.category_energy(Category.COMP_D)
                + self.category_energy(Category.MEM_D))

    def communication_energy(self):
        return (self.category_energy(Category.MIPI)
                + self.category_energy(Category.UTSV))

    def frame_slack(self):
        return self.frame_time - self.digital_latency

    def power_density(self, include_comm: bool = False):
        from repro.area.model import power_density_batch
        return power_density_batch(self.system, self.entries,
                                   self.frame_rate,
                                   include_comm=include_comm)


def _error_point(params: Dict[str, Any], design: Design,
                 design_hash: Optional[str],
                 error: CamJError) -> ExplorationPoint:
    return ExplorationPoint(params=params, design_name=design.name,
                            design_hash=design_hash,
                            failure_type=type(error).__name__,
                            failure=str(error))


def _error_offer(design: Design, design_hash: Optional[str],
                 options: SimOptions, error: CamJError):
    """A cache offer for a failed outcome, iff the object path would
    cache it; ``None`` otherwise."""
    if design_hash is None:
        return None
    if classify(error) is not FailureClass.PERMANENT:
        return None
    design_name = design.name
    return ((design_hash, options),
            lambda: SimResult(design_name=design_name, options=options,
                              design_hash=design_hash, error=error))


def _new_point(params: Dict[str, Any], metrics: Dict[str, float],
               design_name: str, design_hash: Optional[str],
               bottleneck: Optional[Bottleneck]) -> ExplorationPoint:
    """A feasible :class:`ExplorationPoint`, built without the frozen
    dataclass ``__init__`` (one ``object.__setattr__`` per field is the
    single largest per-point cost at 10k+ points).  Every field is set
    explicitly; equality, hashing, and serialization are unaffected."""
    point = object.__new__(ExplorationPoint)
    point.__dict__.update(params=params, metrics=metrics,
                          design_name=design_name, design_hash=design_hash,
                          failure_type=None, failure=None,
                          bottleneck=bottleneck, report=None)
    return point


def _new_bottleneck(name: str, category: Category, energy: float,
                    share: float, hint: str) -> Bottleneck:
    """A :class:`Bottleneck` built the same fast way as :func:`_new_point`."""
    bottleneck = object.__new__(Bottleneck)
    bottleneck.__dict__.update(name=name, category=category, energy=energy,
                               share=share, hint=hint)
    return bottleneck


def _vector_bottlenecks(batch: VectorBatch) -> List[Optional[Bottleneck]]:
    """Per-point top energy bottleneck, mirroring identify_bottlenecks.

    The scalar ranking sorts (name, category) component totals by
    energy, descending and stable, and takes the head — equivalent to
    the first maximum in entry-insertion order, which is what a
    column-stacked argmax yields.
    """
    total = batch.total_energy()
    groups: "OrderedDict[Tuple[str, Category], Any]" = OrderedDict()
    for entry in batch.entries:
        key = (entry.name, entry.category)
        groups[key] = groups.get(key, 0.0) + entry.energy
    if not groups:
        return [None] * batch.size
    keys = list(groups)
    matrix = _np.vstack([batch.materialize(groups[key]) for key in keys])
    top = matrix.argmax(axis=0)
    top_energy = matrix[top, _np.arange(batch.size)]
    share = _np.zeros(batch.size)
    positive = total > 0.0
    _np.divide(top_energy, total, out=share, where=positive)
    top_list = top.tolist()
    energy_list = top_energy.tolist()
    share_list = share.tolist()
    # Pre-resolve per-component hints so the per-point loop never
    # hashes a Category enum.
    hinted = [key + (_HINTS[key[1]],) for key in keys]
    if positive.all():
        return [_new_bottleneck(hinted[top][0], hinted[top][1],
                                energy_list[i], share_list[i],
                                hinted[top][2])
                for i, top in enumerate(top_list)]
    positive_list = positive.tolist()
    out: List[Optional[Bottleneck]] = []
    for i in range(batch.size):
        if not positive_list[i]:
            out.append(None)
            continue
        name, category, hint = hinted[top_list[i]]
        out.append(_new_bottleneck(name, category, energy_list[i],
                                   share_list[i], hint))
    return out


def evaluate_group(simulator: Simulator, design: Design,
                   group: List[Tuple[Dict[str, Any], SimOptions]],
                   objectives: Sequence[Metric],
                   annotate: bool) -> Tuple[List[ExplorationPoint], int]:
    """Evaluate one same-design group of points on the vector path.

    ``group`` holds ``(params, options)`` pairs.  Returns the points in
    group order plus the result-cache hit count.  Raises
    :class:`VectorUnsupported` — before any cache probe or pass runs —
    when the design cannot be lowered; the caller falls back to the
    object path with no counters disturbed.
    """
    design_hash = simulator.design_key(design)
    # Eligibility first: lowering inspects only the system, so an
    # unsupported design escapes here with zero observable side effects.
    lowered = _lower_design(design, design_hash)

    size = len(group)
    points: List[Optional[ExplorationPoint]] = [None] * size
    hits = 0
    # Cache offers accumulate here and publish in one bulk call on
    # every exit path.
    offers: List[tuple] = []
    try:
        return _evaluate_lowered(simulator, design, design_hash, lowered,
                                 group, objectives, annotate, points,
                                 offers)
    finally:
        # Offers are only ever accumulated under a non-None design
        # hash, so the whole group shares it.
        simulator.offer_results(offers, same_hash=design_hash)


def _evaluate_lowered(simulator: Simulator, design: Design,
                      design_hash: Optional[str],
                      lowered: Dict[str, Callable],
                      group: List[Tuple[Dict[str, Any], SimOptions]],
                      objectives: Sequence[Metric], annotate: bool,
                      points: List[Optional[ExplorationPoint]],
                      offers: List[tuple]
                      ) -> Tuple[List[ExplorationPoint], int]:
    hits = 0

    # Mirror the object path's order: run() probes the cache before it
    # executes anything, so cached points never touch checks or passes.
    # A design with nothing cached anywhere answers in one call, with
    # no per-key probing at all.
    if design_hash is not None \
            and simulator.design_probe_needed(design_hash, len(group)):
        keys = [(design_hash, options) for _, options in group]
        probed = simulator.probe_results(keys)
        pending: List[int] = []
        for i, hit in enumerate(probed):
            if hit is not None:
                hits += 1
                params, _ = group[i]
                points[i] = _evaluate_point(params, design, hit,
                                            objectives, annotate)
            else:
                pending.append(i)
        if not pending:
            return points, hits
    else:
        # Cold group (or unserializable design): every point is pending.
        pending = list(range(len(group)))

    # Pre-simulation checks, once per design, session-deduplicated —
    # exactly the engine's prelude.  A check failure fails every
    # checked point with the same typed error the object path reports.
    check_error: Optional[CamJError] = None
    if any(not group[i][1].skip_checks for i in pending):
        try:
            simulator.ensure_design_checked(design, design_hash)
        except CamJError as error:
            check_error = error
    if check_error is None:
        survivors = pending
    else:
        survivors = []
        for i in pending:
            params, options = group[i]
            if options.skip_checks:
                survivors.append(i)
                continue
            points[i] = _error_point(params, design, design_hash,
                                     check_error)
            offer = _error_offer(design, design_hash, options, check_error)
            if offer is not None:
                offers.append(offer)
        if not survivors:
            return points, hits

    # Design-only passes through the session memo: an interleaved or
    # subsequent object-path run of this design reuses these outputs
    # (and vice versa), and pass_info() accounts them identically.
    memo, counters = simulator.pass_context(design, design_hash)
    try:
        resolved = design.resolved_units
        timeline = _run_pass(
            "timeline", memo, counters,
            lambda: simulate_digital(design.graph, design.system,
                                     design.mapping, resolved=resolved))
        participating = _run_pass(
            "analog_usage", memo, counters,
            lambda: analog_usage(design.graph, design.system,
                                 design.mapping, resolved=resolved))
    except CamJError as error:
        for i in survivors:
            params, options = group[i]
            points[i] = _error_point(params, design, design_hash, error)
            offer = _error_offer(design, design_hash, options, error)
            if offer is not None:
                offers.append(offer)
        return points, hits

    # Timing, vectorized (estimate_frame_timing element-wise).  Note
    # SimOptions validates frame_rate > 0 and exposure_slots >= 1, so
    # only the budget check can fail here.
    digital_latency = timeline.total_latency
    if len(survivors) == len(group):
        frame_rate_vec = _np.array([options.frame_rate
                                    for _, options in group], dtype=float)
    else:
        frame_rate_vec = _np.array([float(group[i][1].frame_rate)
                                    for i in survivors])
    frame_time_vec = 1.0 / frame_rate_vec
    budget = frame_time_vec - digital_latency
    feasible_mask = budget > 0.0
    if feasible_mask.all():
        # Common case: every survivor fits its frame budget — skip the
        # per-point scan and the compaction copies entirely.
        feasible_survivors = survivors
        frame_rate_f = frame_rate_vec
        frame_time_f = frame_time_vec
        budget_f = budget
    else:
        frame_time_list = frame_time_vec.tolist()
        feasible_positions: List[int] = []
        for position, feasible in enumerate(feasible_mask.tolist()):
            if feasible:
                feasible_positions.append(position)
                continue
            i = survivors[position]
            params, options = group[i]
            error = TimingError(
                f"digital latency ({digital_latency:.3e} s) exceeds the "
                f"frame budget ({frame_time_list[position]:.3e} s at "
                f"{options.frame_rate:g} FPS); the "
                f"digital pipeline needs a re-design")
            points[i] = _error_point(params, design, design_hash, error)
            offer = _error_offer(design, design_hash, options, error)
            if offer is not None:
                offers.append(offer)
        if not feasible_positions:
            return points, hits
        # Compact to the feasible subset (exact element copies, so the
        # downstream arithmetic is unchanged).
        index = _np.array(feasible_positions)
        feasible_survivors = [survivors[p] for p in feasible_positions]
        frame_rate_f = frame_rate_vec[index]
        frame_time_f = frame_time_vec[index]
        budget_f = budget[index]

    # Build the energy columns in the engine's entry order: analog,
    # digital, communication.
    base_slots = float(len(participating))
    if len(feasible_survivors) == len(group):
        slots_f = _np.array([base_slots + options.exposure_slots
                             for _, options in group])
    else:
        slots_f = _np.array([base_slots + group[i][1].exposure_slots
                             for i in feasible_survivors])
    delay_f = budget_f / slots_f
    breakdowns = [lowered[usage.array.name] if usage.ops > 0 else None
                  for usage in participating]
    try:
        entries: List[VectorEntry] = []
        entries.extend(analog_energy_batch(participating, delay_f,
                                           breakdowns))
        entries.extend(digital_energy_batch(design.system, timeline,
                                            frame_time_f))
        comm_entries = _run_pass(
            "comm_energy", memo, counters,
            lambda: communication_energy(design.graph, design.system,
                                         design.mapping,
                                         resolved=resolved))
        entries.extend(VectorEntry(name=entry.name,
                                   category=entry.category,
                                   layer=entry.layer, energy=entry.energy,
                                   stage=entry.stage)
                       for entry in comm_entries)
    except CamJError as error:
        for i in feasible_survivors:
            params, options = group[i]
            points[i] = _error_point(params, design, design_hash, error)
            offer = _error_offer(design, design_hash, options, error)
            if offer is not None:
                offers.append(offer)
        return points, hits

    batch = VectorBatch(design, len(feasible_survivors), frame_rate_f,
                        frame_time_f, digital_latency, entries)

    # Metrics, column-wise, in objective order.  A failing metric is
    # design-wide here (per-point metric failures cannot arise from the
    # built-in vector extractors), so it fails every batch point with
    # the object path's message.
    columns: List[Tuple[str, List[float]]] = []
    metric_error: Optional[CamJError] = None
    failed_objective: Optional[Metric] = None
    for objective in objectives:
        try:
            raw = objective.vector(design, batch)
        except CamJError as error:
            metric_error = error
            failed_objective = objective
            break
        columns.append((objective.name,
                        batch.materialize(raw).tolist()))
    design_name = design.name
    system_name = design.system.name
    if metric_error is not None:
        failure = f"metric {failed_objective.name!r}: {metric_error}"
        delay_list = delay_f.tolist()
        frame_time_f_list = frame_time_f.tolist()
        failure_type = type(metric_error).__name__
        for column, i in enumerate(feasible_survivors):
            params, options = group[i]
            points[i] = ExplorationPoint(
                params=params, design_name=design_name,
                design_hash=design_hash,
                failure_type=failure_type, failure=failure)
            # The simulation itself succeeded — the object path would
            # cache its result even though the metric failed.
            if design_hash is not None:
                offers.append((
                    (design_hash, options),
                    partial(_materialize_report, design_name, system_name,
                            design_hash, options, frame_time_f_list[column],
                            digital_latency, delay_list[column], entries,
                            column)))
        return points, hits

    bottlenecks: List[Optional[Bottleneck]] = [None] * batch.size
    if annotate:
        bottlenecks = _vector_bottlenecks(batch)

    delay_list = delay_f.tolist()
    frame_time_f_list = frame_time_f.tolist()
    metric_names = tuple(name for name, _ in columns)
    metric_rows = list(zip(*(values for _, values in columns)))
    for column, i in enumerate(feasible_survivors):
        params, options = group[i]
        points[i] = _new_point(params,
                               dict(zip(metric_names, metric_rows[column])),
                               design_name, design_hash,
                               bottlenecks[column])
        if design_hash is not None:
            offers.append((
                (design_hash, options),
                partial(_materialize_report, design_name, system_name,
                        design_hash, options, frame_time_f_list[column],
                        digital_latency, delay_list[column], entries,
                        column)))
    return points, hits


def _materialize_report(design_name: str, system_name: str,
                        design_hash: str, options: SimOptions,
                        frame_time: float, digital_latency: float,
                        analog_stage_delay: float,
                        entries: List[VectorEntry],
                        column: int) -> SimResult:
    """Rebuild one feasible point's full, bit-identical report.

    Bound into a cache offer via :func:`functools.partial`, so the cost
    per point stays one (C-level) partial until the key is ever probed
    again — most explore points never are.
    """
    report = EnergyReport(system_name=system_name,
                          frame_rate=options.frame_rate,
                          frame_time=frame_time,
                          digital_latency=digital_latency,
                          analog_stage_delay=analog_stage_delay)
    report.extend(EnergyEntry(
        name=entry.name, category=entry.category, layer=entry.layer,
        energy=(float(entry.energy[column])
                if isinstance(entry.energy, _np.ndarray)
                else entry.energy),
        stage=entry.stage) for entry in entries)
    return SimResult(design_name=design_name, options=options,
                     design_hash=design_hash, report=report)
