"""Unified design-space exploration over the session API.

Three composable parts (the Sec. 6 explorations as a subsystem instead
of hand-rolled loops):

* **parameter spaces** (:mod:`repro.explore.space`) — declarative axes
  (:func:`choice`, :func:`linspace`, :func:`grid`), combinators
  (:func:`product`, :func:`zipped`, ``space.filter(...)``), all lazily
  enumerated and JSON-serializable;
* **metrics** (:mod:`repro.explore.metrics`) — a registry of named
  objective extractors computed uniformly from simulation output;
* **the engine** (:mod:`repro.explore.engine`) — :func:`explore` runs a
  space through :meth:`repro.api.Simulator.run_many` (cached, parallel),
  keeps infeasible points as typed data, and hands back an
  :class:`ExplorationResult` with N-objective Pareto frontier
  extraction, dominance ranking, per-point bottleneck annotation, and
  ``repro.explore/1`` JSON round-tripping.

Quick taste::

    from repro.explore import choice, explore, product

    space = product(choice("placement", ["2D-In", "2D-Off", "3D-In"]),
                    choice("cis_node", [130, 65]))
    result = explore(space, "edgaze",
                     objectives=("energy_per_frame", "power_density",
                                 "latency"))
    for point in result.frontier():
        print(point.label(), point.metrics)
"""

from repro.explore.annotate import (
    Bottleneck,
    dominant_category,
    identify_bottlenecks,
)
from repro.explore.engine import (
    DEFAULT_OBJECTIVES,
    ENGINE_CHOICES,
    ENGINE_COUNTERS,
    EXPLORATION_SCHEMA,
    ExplorationInterrupted,
    ExplorationPoint,
    ExplorationResult,
    dominance_ranks,
    dominates,
    explore,
    explore_stream,
    pareto_indices,
)
from repro.explore.metrics import (
    Metric,
    available_metrics,
    metric,
    register_metric,
    resolve_metrics,
)
from repro.explore.space import (
    Axis,
    FilteredSpace,
    ParameterSpace,
    ProductSpace,
    ZipSpace,
    choice,
    grid,
    linspace,
    product,
    space_from_dict,
    zipped,
)
from repro.explore.spec import (
    EXPLORATION_SPEC_SCHEMA,
    ExplorationSpec,
    exploration_spec_from_dict,
    load_exploration_spec,
)

__all__ = [
    # spaces
    "ParameterSpace", "Axis", "ProductSpace", "ZipSpace", "FilteredSpace",
    "choice", "grid", "linspace", "product", "zipped", "space_from_dict",
    # metrics
    "Metric", "register_metric", "metric", "available_metrics",
    "resolve_metrics",
    # engine
    "explore", "explore_stream", "ExplorationPoint", "ExplorationResult",
    "ExplorationInterrupted", "dominates", "pareto_indices",
    "dominance_ranks", "DEFAULT_OBJECTIVES", "EXPLORATION_SCHEMA",
    "ENGINE_CHOICES", "ENGINE_COUNTERS",
    # annotation
    "Bottleneck", "identify_bottlenecks", "dominant_category",
    # specs
    "ExplorationSpec", "exploration_spec_from_dict",
    "load_exploration_spec", "EXPLORATION_SPEC_SCHEMA",
]
