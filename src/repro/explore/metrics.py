"""The metric/objective registry: named extractors over simulation output.

Every metric turns one simulated point — the :class:`~repro.api.Design`
plus its :class:`~repro.energy.report.EnergyReport` — into a single
float, uniformly, so exploration results, Pareto fronts, and ranking all
speak the same vocabulary instead of each analysis hard-coding its two
favorite fields.  A metric also declares its optimization ``goal``
(``"min"`` or ``"max"``), which the dominance machinery respects.

Built-ins cover the paper's Sec. 6 objectives — energy per frame, power,
power density (Table 3), digital latency, frame-budget slack, silicon
area — plus per-category energies and shares (``energy:MEM-D``,
``share:SEN``, ...).  Stall and timing violations are not metrics: they
surface as typed infeasible points in the exploration result, which is
where a hard constraint belongs.

User code registers additional metrics at runtime::

    register_metric(Metric("fps_per_mw",
                           unit="FPS/mW", goal="max",
                           extract=lambda design, report:
                               report.frame_rate /
                               (report.total_power / units.mW)))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.area.model import estimate_area, power_density
from repro.energy.report import Category, EnergyReport
from repro.exceptions import ConfigurationError

#: Extractor signature: (design, report) -> float.
Extractor = Callable[["Design", EnergyReport], float]  # noqa: F821

#: Vector extractor signature: (design, batch) -> column (ndarray or a
#: design-constant scalar), where ``batch`` is the explore fast path's
#: :class:`repro.explore.vector.VectorBatch`.  Metrics without one fall
#: back to per-point object evaluation under the vector engine.
VectorExtractor = Callable[["Design", Any], Any]  # noqa: F821

_GOALS = ("min", "max")


@dataclass(frozen=True)
class Metric:
    """One named objective computed from a simulated design."""

    name: str
    unit: str
    extract: Extractor = field(compare=False)
    goal: str = "min"
    description: str = ""
    vector: Optional[VectorExtractor] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("metric name must be non-empty")
        if self.goal not in _GOALS:
            raise ConfigurationError(
                f"metric {self.name!r}: goal must be one of {_GOALS}, "
                f"got {self.goal!r}")
        if not callable(self.extract):
            raise ConfigurationError(
                f"metric {self.name!r}: extractor must be callable")

    def value(self, design, report: EnergyReport) -> float:
        """Evaluate the metric on one simulated point."""
        return float(self.extract(design, report))


_REGISTRY: Dict[str, Metric] = {}


def register_metric(metric: Metric) -> Metric:
    """Register ``metric`` under its name (re-registering replaces)."""
    if not isinstance(metric, Metric):
        raise ConfigurationError(
            f"register_metric expects a Metric, got "
            f"{type(metric).__name__}")
    _REGISTRY[metric.name] = metric
    return metric


def metric(name: str) -> Metric:
    """Look a metric up by name."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown metric {name!r}; available: {available_metrics()}")
    return _REGISTRY[name]


def available_metrics() -> List[str]:
    """Registered metric names."""
    return sorted(_REGISTRY)


def resolve_metrics(objectives: Sequence[Union[str, Metric]]) -> List[Metric]:
    """Names and/or Metric values -> Metric list, rejecting duplicates."""
    if not objectives:
        raise ConfigurationError("at least one objective is required")
    resolved: List[Metric] = []
    seen = set()
    for objective in objectives:
        entry = objective if isinstance(objective, Metric) \
            else metric(objective)
        if entry.name in seen:
            raise ConfigurationError(
                f"duplicate objective {entry.name!r}")
        seen.add(entry.name)
        resolved.append(entry)
    return resolved


# --- built-ins ------------------------------------------------------------

def _register_builtins() -> None:
    register_metric(Metric(
        "energy_per_frame", unit="J/frame",
        extract=lambda design, report: report.total_energy,
        vector=lambda design, batch: batch.total_energy(),
        description="total energy per frame (Eq. 1)"))
    register_metric(Metric(
        "power", unit="W",
        extract=lambda design, report: report.total_power,
        vector=lambda design, batch: batch.total_power(),
        description="average power at the configured frame rate"))
    register_metric(Metric(
        "power_density", unit="W/m^2",
        extract=lambda design, report: power_density(design.system, report),
        vector=lambda design, batch: batch.power_density(),
        description="on-chip power density; hotspot bound for stacks "
                    "(Table 3)"))
    register_metric(Metric(
        "latency", unit="s",
        extract=lambda design, report: report.digital_latency,
        vector=lambda design, batch: batch.digital_latency,
        description="digital pipeline latency per frame"))
    register_metric(Metric(
        "frame_slack", unit="s", goal="max",
        extract=lambda design, report:
            report.frame_time - report.digital_latency,
        vector=lambda design, batch: batch.frame_slack(),
        description="frame budget left after the digital pipeline"))
    register_metric(Metric(
        "area", unit="m^2",
        extract=lambda design, report:
            estimate_area(design.system).total,
        vector=lambda design, batch:
            estimate_area(design.system).total,
        description="conservative total silicon area across layers"))
    register_metric(Metric(
        "footprint", unit="m^2",
        extract=lambda design, report:
            estimate_area(design.system).footprint,
        vector=lambda design, batch:
            estimate_area(design.system).footprint,
        description="die footprint (largest layer of a stack)"))
    register_metric(Metric(
        "analog_energy", unit="J/frame",
        extract=lambda design, report: report.analog_energy,
        vector=lambda design, batch: batch.analog_energy(),
        description="SEN + analog compute + analog memory energy"))
    register_metric(Metric(
        "digital_energy", unit="J/frame",
        extract=lambda design, report: report.digital_energy,
        vector=lambda design, batch: batch.digital_energy(),
        description="digital compute + digital memory energy"))
    register_metric(Metric(
        "communication_energy", unit="J/frame",
        extract=lambda design, report: report.communication_energy,
        vector=lambda design, batch: batch.communication_energy(),
        description="MIPI + uTSV link energy (Eq. 17)"))
    for category in Category:
        register_metric(Metric(
            f"energy:{category.value}", unit="J/frame",
            extract=_category_energy(category),
            vector=_category_energy_vector(category),
            description=f"energy of the {category.value} roll-up category"))
        register_metric(Metric(
            f"share:{category.value}", unit="fraction",
            extract=_category_share(category),
            vector=_category_share_vector(category),
            description=f"share of total energy in {category.value}"))


def _category_energy(category: Category) -> Extractor:
    return lambda design, report: report.category_energy(category)


def _category_share(category: Category) -> Extractor:
    def share(design, report: EnergyReport) -> float:
        total = report.total_energy
        return report.category_energy(category) / total if total else 0.0
    return share


def _category_energy_vector(category: Category) -> VectorExtractor:
    return lambda design, batch: batch.category_energy(category)


def _category_share_vector(category: Category) -> VectorExtractor:
    return lambda design, batch: batch.category_share(category)


_register_builtins()
