"""Energy-bottleneck identification (the Fig. 4 feedback arrow).

Given an :class:`~repro.energy.report.EnergyReport`, rank components by
their energy share and point the designer at what to re-design first.
The exploration engine uses this to annotate every feasible point — in
particular the Pareto frontier — with its dominant energy consumer, so a
frontier is not just "these designs win" but "and here is what to attack
next on each of them".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import units
from repro.energy.report import Category, EnergyReport
from repro.exceptions import ConfigurationError

#: Re-design hints per roll-up category.
_HINTS = {
    Category.SEN: ("consider lower-resolution readout, binning in the "
                   "pixel array, or a lower-energy ADC design point"),
    Category.COMP_A: ("revisit analog PE sizing: capacitor sizes follow "
                      "the kT/C limit of the target precision (Eq. 6)"),
    Category.MEM_A: ("shorten analog hold times or drop stored precision "
                     "to shrink hold-amp bias energy"),
    Category.COMP_D: ("move the unit to a newer process node (3D stack) "
                      "or reduce per-cycle energy via synthesis"),
    Category.MEM_D: ("power-gate the macro (duty_alpha), move it to a "
                     "low-leakage node, or switch to STT-RAM"),
    Category.MIPI: ("move more of the pipeline into the sensor to shrink "
                    "the transmitted data volume"),
    Category.UTSV: ("batch inter-layer transfers; uTSV energy is rarely "
                    "the real bottleneck"),
}


@dataclass(frozen=True)
class Bottleneck:
    """One ranked energy consumer."""

    name: str
    category: Category
    energy: float
    share: float
    hint: str

    def describe(self) -> str:
        return (f"{self.name:<40} {self.category.value:<7} "
                f"{units.format_energy(self.energy):>10} "
                f"({100 * self.share:5.1f}%)  -> {self.hint}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used by exploration-point annotations."""
        return {"name": self.name, "category": self.category.value,
                "energy": self.energy, "share": self.share,
                "hint": self.hint}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Bottleneck":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(name=payload["name"],
                       category=Category(payload["category"]),
                       energy=payload["energy"], share=payload["share"],
                       hint=payload["hint"])
        except (KeyError, ValueError) as error:
            raise ConfigurationError(
                f"malformed bottleneck payload: {error}") from error


def identify_bottlenecks(report: EnergyReport, top: int = 5,
                         min_share: float = 0.02) -> List[Bottleneck]:
    """The ``top`` components by energy share, with re-design hints.

    Components below ``min_share`` of the total are omitted — they are not
    worth a re-design iteration.
    """
    if top < 1:
        raise ConfigurationError(f"top must be >= 1, got {top}")
    if not 0.0 <= min_share < 1.0:
        raise ConfigurationError(
            f"min_share must be in [0, 1), got {min_share}")
    total = report.total_energy
    if total <= 0:
        return []
    by_component: Dict[tuple, float] = {}
    for entry in report.entries:
        key = (entry.name, entry.category)
        by_component[key] = by_component.get(key, 0.0) + entry.energy
    ranked = sorted(by_component.items(), key=lambda kv: kv[1],
                    reverse=True)
    bottlenecks = []
    for (name, category), energy in ranked[:top]:
        share = energy / total
        if share < min_share:
            continue
        bottlenecks.append(Bottleneck(name=name, category=category,
                                      energy=energy, share=share,
                                      hint=_HINTS[category]))
    return bottlenecks


def dominant_category(report: EnergyReport) -> Optional[Category]:
    """The category holding the largest energy share (None if empty)."""
    rollup = report.by_category()
    if not rollup:
        return None
    return max(rollup, key=rollup.get)
