"""The sensor system: layers, analog arrays, digital units, interfaces.

:class:`SensorSystem` is the container the ``camj_hw_config`` function of
Fig. 5 builds: it owns the layer stack, every hardware unit, and the two
communication interfaces, and offers the lookups the simulator needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.array import AnalogArray
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import DigitalMemory
from repro.hw.interface import Interface, MIPI_CSI2, MicroTSV
from repro.hw.layer import Layer, OFF_CHIP, SENSOR_LAYER

HardwareUnit = Union[AnalogArray, ComputeUnit, DigitalMemory]


class SensorSystem:
    """A complete (possibly stacked) computational CIS description."""

    def __init__(self, name: str = "CIS",
                 layers: Optional[Sequence[Layer]] = None):
        if not name:
            raise ConfigurationError("sensor system needs a non-empty name")
        self.name = name
        self.layers: Dict[str, Layer] = {}
        for layer in layers or [Layer(SENSOR_LAYER, 65)]:
            self.add_layer(layer)
        self.analog_arrays: List[AnalogArray] = []
        self.compute_units: List[ComputeUnit] = []
        self.memories: List[DigitalMemory] = []
        self.offchip_interface: Interface = MIPI_CSI2()
        self.interlayer_interface: Interface = MicroTSV()
        self._pixel_array_dims: Optional[tuple] = None
        self._pixel_pitch: float = 3.0 * units.um

    # --- construction -----------------------------------------------------

    def add_layer(self, layer: Layer) -> "SensorSystem":
        """Add a die to the stack; the off-chip 'layer' is implicit."""
        if layer.name in self.layers:
            raise ConfigurationError(
                f"duplicate layer {layer.name!r} in system {self.name!r}")
        if layer.name == OFF_CHIP:
            raise ConfigurationError(
                f"layer name {OFF_CHIP!r} is reserved for the host SoC; "
                f"add it via add_offchip_host()")
        self.layers[layer.name] = layer
        return self

    def add_offchip_host(self, node_nm: float) -> "SensorSystem":
        """Declare the host SoC as the off-chip processing target."""
        self.layers[OFF_CHIP] = Layer(OFF_CHIP, node_nm)
        return self

    def add_analog_array(self, array: AnalogArray) -> "SensorSystem":
        """Register an analog functional array."""
        self._check_new_unit(array)
        self.analog_arrays.append(array)
        return self

    def add_compute_unit(self, unit: ComputeUnit) -> "SensorSystem":
        """Register a digital compute unit."""
        self._check_new_unit(unit)
        self.compute_units.append(unit)
        return self

    def add_memory(self, memory: DigitalMemory) -> "SensorSystem":
        """Register a digital memory structure."""
        self._check_new_unit(memory)
        self.memories.append(memory)
        return self

    def set_offchip_interface(self, interface: Interface) -> "SensorSystem":
        """Override the off-sensor interface (defaults to MIPI CSI-2)."""
        self.offchip_interface = interface
        return self

    def set_interlayer_interface(self, interface: Interface) -> "SensorSystem":
        """Override the inter-layer interface (defaults to uTSV)."""
        self.interlayer_interface = interface
        return self

    def set_pixel_array_geometry(self, rows: int, cols: int,
                                 pitch: float = 3.0 * units.um
                                 ) -> "SensorSystem":
        """Pixel-array dimensions and pitch for area/power-density modeling."""
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"pixel array dims must be positive, got {rows}x{cols}")
        if pitch <= 0:
            raise ConfigurationError(
                f"pixel pitch must be positive, got {pitch}")
        self._pixel_array_dims = (rows, cols)
        self._pixel_pitch = pitch
        return self

    def _check_new_unit(self, unit: HardwareUnit) -> None:
        if unit.layer not in self.layers:
            known = ", ".join(sorted(self.layers))
            raise ConfigurationError(
                f"unit {unit.name!r} placed on unknown layer "
                f"{unit.layer!r}; known layers: {known}")
        if unit.name in self._unit_names():
            raise ConfigurationError(
                f"duplicate hardware unit name {unit.name!r}")

    # --- lookups --------------------------------------------------------------

    def _unit_names(self) -> Dict[str, HardwareUnit]:
        names: Dict[str, HardwareUnit] = {}
        for unit in self.all_units():
            names[unit.name] = unit
        return names

    def all_units(self) -> List[HardwareUnit]:
        """Every registered hardware unit."""
        return [*self.analog_arrays, *self.compute_units, *self.memories]

    def find_unit(self, name: str) -> HardwareUnit:
        """Unit by name; raises :class:`ConfigurationError` if absent."""
        for unit in self.all_units():
            if unit.name == name:
                return unit
        raise ConfigurationError(
            f"system {self.name!r} has no hardware unit named {name!r}")

    def layer_of(self, unit: HardwareUnit) -> Layer:
        """The layer a unit lives on."""
        return self.layers[unit.layer]

    @property
    def is_stacked(self) -> bool:
        """Whether the system is a 3D design (2+ on-chip layers)."""
        on_chip = [n for n in self.layers if n != OFF_CHIP]
        return len(on_chip) > 1

    # --- geometry ---------------------------------------------------------------

    @property
    def pixel_array_dims(self) -> Optional[tuple]:
        """``(rows, cols)`` of the pixel array, if declared."""
        return self._pixel_array_dims

    @property
    def pixel_pitch(self) -> float:
        """Pixel pitch in meters."""
        return self._pixel_pitch

    @property
    def pixel_array_area(self) -> float:
        """Pixel-array silicon area (the paper's analog-area proxy)."""
        if self._pixel_array_dims is None:
            return 0.0
        rows, cols = self._pixel_array_dims
        return rows * cols * self._pixel_pitch ** 2

    def memory_area(self, layer_name: Optional[str] = None) -> float:
        """Total digital memory area (the paper's digital-area proxy)."""
        return sum(m.area for m in self.memories
                   if layer_name is None or m.layer == layer_name)

    def describe(self) -> str:
        """Multi-line inventory of the system."""
        lines = [f"SensorSystem {self.name!r}"]
        for layer in self.layers.values():
            lines.append(f"  layer {layer.name!r} @ {layer.node_nm:.0f} nm")
        for array in self.analog_arrays:
            lines.append(f"  analog  {array.name!r} ({array.num_components} "
                         f"components) on {array.layer!r}")
        for memory in self.memories:
            lines.append(f"  memory  {memory.name!r} "
                         f"({memory.capacity_pixels:g} px) on "
                         f"{memory.layer!r}")
        for unit in self.compute_units:
            lines.append(f"  compute {unit.name!r} on {unit.layer!r}")
        return "\n".join(lines)
