"""Digital memory structures (Table 1, digital column).

CamJ supports the three structures common in image/vision pipelines:

* :class:`FIFO` — a ring of words between a producer and a consumer;
* :class:`LineBuffer` — a few image rows feeding a stencil engine [26, 68];
* :class:`DoubleBuffer` — ping-pong SRAM for frame- or tile-level reuse.

Per-access energies are user-supplied (Fig. 5 passes them inline) or pulled
from a :mod:`repro.memlib` model via :meth:`DigitalMemory.use_model`.
Leakage energy is ``P_leak * (1/FPS) * alpha`` with ``alpha`` the fraction
of the frame the memory cannot be power-gated (Eq. 16) — Ed-Gaze's frame
buffer famously needs ``alpha = 1``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.layer import SENSOR_LAYER


class DigitalMemory:
    """Base class of digital memory structures.

    Parameters
    ----------
    name:
        Unique identifier referenced by compute units and the mapping.
    layer:
        Layer the macro lives on.
    capacity_pixels:
        Number of pixels (words at ``pixels_per_word`` granularity) the
        structure can hold; the stall check uses this.
    write_energy_per_word / read_energy_per_word:
        Dynamic energy per word access.
    pixels_per_write_word / pixels_per_read_word:
        Pixels packed in one written/read word.
    leakage_power:
        Static power when the macro is on.
    duty_alpha:
        Fraction of the frame time the macro is powered (Eq. 16).
    num_read_ports / num_write_ports:
        Simultaneous accesses per cycle the structure supports.
    area:
        Optional macro area (square meters) for power-density estimation.
    """

    def __init__(self, name: str, layer: str = SENSOR_LAYER, *,
                 capacity_pixels: float,
                 write_energy_per_word: float,
                 read_energy_per_word: float,
                 pixels_per_write_word: int = 1,
                 pixels_per_read_word: int = 1,
                 leakage_power: float = 0.0,
                 duty_alpha: float = 1.0,
                 num_read_ports: int = 1,
                 num_write_ports: int = 1,
                 area: float = 0.0):
        if not name:
            raise ConfigurationError("digital memory needs a non-empty name")
        if capacity_pixels <= 0:
            raise ConfigurationError(
                f"memory {name!r}: capacity must be positive, "
                f"got {capacity_pixels}")
        if write_energy_per_word < 0 or read_energy_per_word < 0:
            raise ConfigurationError(
                f"memory {name!r}: access energies must be non-negative")
        if pixels_per_write_word < 1 or pixels_per_read_word < 1:
            raise ConfigurationError(
                f"memory {name!r}: pixels per word must be >= 1")
        if leakage_power < 0:
            raise ConfigurationError(
                f"memory {name!r}: leakage power must be non-negative")
        if not 0.0 <= duty_alpha <= 1.0:
            raise ConfigurationError(
                f"memory {name!r}: duty alpha must be in [0, 1], "
                f"got {duty_alpha}")
        if num_read_ports < 1 or num_write_ports < 1:
            raise ConfigurationError(
                f"memory {name!r}: port counts must be >= 1")
        if area < 0:
            raise ConfigurationError(
                f"memory {name!r}: area must be non-negative, got {area}")
        self.name = name
        self.layer = layer
        self.capacity_pixels = float(capacity_pixels)
        self.write_energy_per_word = write_energy_per_word
        self.read_energy_per_word = read_energy_per_word
        self.pixels_per_write_word = pixels_per_write_word
        self.pixels_per_read_word = pixels_per_read_word
        self.leakage_power = leakage_power
        self.duty_alpha = duty_alpha
        self.num_read_ports = num_read_ports
        self.num_write_ports = num_write_ports
        self.area = area

    @classmethod
    def _energies_from_model(cls, model) -> Tuple[float, float, float, float]:
        """Extract (write, read, leakage, area) scalars from a memlib model."""
        return (model.write_energy_per_word, model.read_energy_per_word,
                model.leakage_power, model.area)

    # --- energy (Eq. 16) --------------------------------------------------------

    def write_energy(self, pixels_written: float) -> float:
        """Dynamic energy of writing ``pixels_written`` pixels."""
        if pixels_written < 0:
            raise ConfigurationError(
                f"memory {self.name!r}: pixel count must be non-negative")
        words = pixels_written / self.pixels_per_write_word
        return words * self.write_energy_per_word

    def read_energy(self, pixels_read: float) -> float:
        """Dynamic energy of reading ``pixels_read`` pixels."""
        if pixels_read < 0:
            raise ConfigurationError(
                f"memory {self.name!r}: pixel count must be non-negative")
        words = pixels_read / self.pixels_per_read_word
        return words * self.read_energy_per_word

    def leakage_energy(self, frame_time: float) -> float:
        """Leakage over the powered fraction of one frame (Eq. 16)."""
        if frame_time <= 0:
            raise ConfigurationError(
                f"memory {self.name!r}: frame time must be positive")
        return self.leakage_power * frame_time * self.duty_alpha

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, "
                f"capacity={self.capacity_pixels:g}px)")


class FIFO(DigitalMemory):
    """First-in first-out queue between a producer and a consumer."""

    def __init__(self, name: str, layer: str = SENSOR_LAYER, *,
                 size: Sequence[int],
                 write_energy_per_word: float = 0.0,
                 read_energy_per_word: float = 0.0,
                 **kwargs):
        capacity = _shape_volume(name, size)
        super().__init__(name, layer, capacity_pixels=capacity,
                         write_energy_per_word=write_energy_per_word,
                         read_energy_per_word=read_energy_per_word, **kwargs)
        self.size = tuple(int(v) for v in size)


class LineBuffer(DigitalMemory):
    """A few image rows buffered for a stencil consumer (Fig. 5)."""

    def __init__(self, name: str, layer: str = SENSOR_LAYER, *,
                 size: Sequence[int],
                 write_energy_per_word: float = 0.0,
                 read_energy_per_word: float = 0.0,
                 **kwargs):
        if len(size) != 2:
            raise ConfigurationError(
                f"line buffer {name!r}: size must be (rows, cols), got {size}")
        capacity = _shape_volume(name, size)
        # Each buffered row conventionally exposes its own read port so a
        # stencil consumer can fetch one full window column per cycle.
        kwargs.setdefault("num_read_ports", int(size[0]))
        super().__init__(name, layer, capacity_pixels=capacity,
                         write_energy_per_word=write_energy_per_word,
                         read_energy_per_word=read_energy_per_word, **kwargs)
        self.size = tuple(int(v) for v in size)

    @property
    def num_rows(self) -> int:
        """Buffered rows — must cover the consumer's kernel height."""
        return self.size[0]

    @property
    def row_length(self) -> int:
        """Pixels per buffered row."""
        return self.size[1]


class DoubleBuffer(DigitalMemory):
    """Ping-pong SRAM (or NVM) for frame- or tile-granularity reuse.

    A double buffer decouples producer and consumer rates at frame
    granularity: the consumer works on the previous buffer while the
    producer fills the other.  The stall check therefore only requires one
    frame's worth of producer output to fit (``capacity_bytes``), not
    rate matching.
    """

    def __init__(self, name: str, layer: str = SENSOR_LAYER, *,
                 size: Sequence[int],
                 write_energy_per_word: float = 0.0,
                 read_energy_per_word: float = 0.0,
                 capacity_bytes: Optional[float] = None,
                 **kwargs):
        capacity = _shape_volume(name, size)
        super().__init__(name, layer, capacity_pixels=capacity,
                         write_energy_per_word=write_energy_per_word,
                         read_energy_per_word=read_energy_per_word, **kwargs)
        self.size = tuple(int(v) for v in size)
        #: Byte capacity for the frame-fit check (defaults to one byte per
        #: pixel slot).
        self.capacity_bytes = (float(capacity_bytes)
                               if capacity_bytes is not None
                               else float(capacity))

    @classmethod
    def from_model(cls, name: str, model, layer: str = SENSOR_LAYER,
                   duty_alpha: float = 1.0,
                   pixels_per_word: Optional[int] = None,
                   num_read_ports: int = 4,
                   num_write_ports: int = 4) -> "DoubleBuffer":
        """Build a double buffer whose scalars come from a memlib model.

        ``model`` is any object with the memlib interface (SRAMModel,
        STTRAMModel).  Capacity in pixels assumes 8-bit pixels unless
        ``pixels_per_word`` overrides the packing.  Large macros are banked,
        so a few parallel ports per buffer half is the default.
        """
        write, read, leak, area = cls._energies_from_model(model)
        if pixels_per_word is None:
            pixels_per_word = max(1, model.word_bits // 8)
        return cls(name, layer,
                   size=(int(model.capacity_bytes), 1),
                   write_energy_per_word=write,
                   read_energy_per_word=read,
                   leakage_power=leak,
                   duty_alpha=duty_alpha,
                   capacity_bytes=model.capacity_bytes,
                   pixels_per_write_word=pixels_per_word,
                   pixels_per_read_word=pixels_per_word,
                   num_read_ports=num_read_ports,
                   num_write_ports=num_write_ports,
                   area=area)


def _shape_volume(name: str, shape: Sequence[int]) -> int:
    values = tuple(int(v) for v in shape)
    if not values or any(v < 1 for v in values):
        raise ConfigurationError(
            f"memory {name!r}: size must be positive integers, got {shape}")
    volume = 1
    for value in values:
        volume *= value
    return volume
