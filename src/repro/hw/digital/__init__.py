"""Digital hardware description: memory structures and compute units."""

from repro.hw.digital.memory import (
    DigitalMemory,
    FIFO,
    LineBuffer,
    DoubleBuffer,
)
from repro.hw.digital.compute import ComputeUnit, SystolicArray

__all__ = [
    "DigitalMemory",
    "FIFO",
    "LineBuffer",
    "DoubleBuffer",
    "ComputeUnit",
    "SystolicArray",
]
