"""Digital compute units (Table 1, digital column).

:class:`ComputeUnit` is the generic pipelined-accelerator abstraction: it
reads a shaped group of pixels per cycle, produces a shaped group per cycle
after a fixed pipeline depth, and burns a fixed energy per active cycle.
:class:`SystolicArray` specializes it for DNN layers, where throughput is
MACs per cycle across the PE grid.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.digital.memory import DigitalMemory
from repro.hw.layer import SENSOR_LAYER

#: Default digital clock for CIS processing logic.
DEFAULT_CLOCK_HZ = 100.0 * units.MHz


class ComputeUnit:
    """A pipelined digital accelerator.

    Parameters
    ----------
    name:
        Unique identifier referenced by the mapping.
    layer:
        Layer the unit lives on.
    input_pixels_per_cycle:
        Shape of pixels consumed from the input memory each cycle (a single
        shape, or a list of shapes for multi-input units).
    output_pixels_per_cycle:
        Shape of pixels produced each cycle once the pipeline is full.
    energy_per_cycle:
        Energy burned per active cycle (user-supplied, from synthesis).
    num_stages:
        Pipeline depth in cycles.
    clock_hz:
        Operating clock; sets the cycle time for latency estimation.
    area:
        Optional silicon area for power-density estimation.
    """

    def __init__(self, name: str, layer: str = SENSOR_LAYER, *,
                 input_pixels_per_cycle: Sequence,
                 output_pixels_per_cycle: Sequence[int],
                 energy_per_cycle: float,
                 num_stages: int = 1,
                 clock_hz: float = DEFAULT_CLOCK_HZ,
                 area: float = 0.0):
        if not name:
            raise ConfigurationError("compute unit needs a non-empty name")
        if energy_per_cycle < 0:
            raise ConfigurationError(
                f"compute unit {name!r}: energy per cycle must be "
                f"non-negative, got {energy_per_cycle}")
        if num_stages < 1:
            raise ConfigurationError(
                f"compute unit {name!r}: pipeline depth must be >= 1, "
                f"got {num_stages}")
        if clock_hz <= 0:
            raise ConfigurationError(
                f"compute unit {name!r}: clock must be positive, "
                f"got {clock_hz}")
        if area < 0:
            raise ConfigurationError(
                f"compute unit {name!r}: area must be non-negative")
        self.name = name
        self.layer = layer
        self.input_pixels_per_cycle = _normalize_input_shapes(
            name, input_pixels_per_cycle)
        self.output_pixels_per_cycle = _validated_shape(
            name, output_pixels_per_cycle)
        self.energy_per_cycle = energy_per_cycle
        self.num_stages = num_stages
        self.clock_hz = clock_hz
        self.area = area
        self.input_memories: List[DigitalMemory] = []
        self.output_memory: Optional[DigitalMemory] = None
        self._is_sink = False

    # --- wiring -----------------------------------------------------------

    def set_input(self, memory: DigitalMemory) -> "ComputeUnit":
        """Attach an input memory (in stage order for multi-input units)."""
        self.input_memories.append(memory)
        return self

    def set_output(self, memory: DigitalMemory) -> "ComputeUnit":
        """Attach the output memory."""
        if self.output_memory is not None:
            raise ConfigurationError(
                f"compute unit {self.name!r} already has an output memory")
        self.output_memory = memory
        return self

    def set_sink(self) -> "ComputeUnit":
        """Mark this unit as the pipeline end (results leave via interface)."""
        self._is_sink = True
        return self

    @property
    def is_sink(self) -> bool:
        """Whether the unit terminates the digital pipeline."""
        return self._is_sink

    # --- throughput -----------------------------------------------------------

    @property
    def cycle_time(self) -> float:
        """Seconds per cycle."""
        return 1.0 / self.clock_hz

    @property
    def input_throughput(self) -> int:
        """Pixels consumed per cycle across all inputs."""
        return sum(_volume(shape) for shape in self.input_pixels_per_cycle)

    @property
    def output_throughput(self) -> int:
        """Pixels produced per cycle once the pipeline is full."""
        return _volume(self.output_pixels_per_cycle)

    def active_cycles(self, output_pixels: float) -> float:
        """Cycles to produce ``output_pixels``, including pipeline fill."""
        if output_pixels < 0:
            raise ConfigurationError(
                f"compute unit {self.name!r}: output pixel count must be "
                f"non-negative, got {output_pixels}")
        if output_pixels == 0:
            return 0.0
        steady = output_pixels / self.output_throughput
        return steady + (self.num_stages - 1)

    def compute_energy(self, output_pixels: float) -> float:
        """Energy of producing ``output_pixels`` (Eq. 15)."""
        return self.active_cycles(output_pixels) * self.energy_per_cycle

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SystolicArray(ComputeUnit):
    """A systolic MAC grid for DNN layers.

    Throughput is ``rows * cols * utilization`` MACs per cycle; a stage
    mapped here provides its MAC count, and the cycle count follows.
    ``energy_per_mac`` defaults from the technology node via
    :func:`repro.tech.scaling.mac_energy` when not given.
    """

    def __init__(self, name: str, layer: str = SENSOR_LAYER, *,
                 dimensions: Sequence[int],
                 energy_per_mac: float,
                 utilization: float = 0.85,
                 num_stages: int = 2,
                 clock_hz: float = DEFAULT_CLOCK_HZ,
                 area: float = 0.0):
        if len(dimensions) != 2 or any(int(v) < 1 for v in dimensions):
            raise ConfigurationError(
                f"systolic array {name!r}: dimensions must be two positive "
                f"integers, got {dimensions}")
        if energy_per_mac < 0:
            raise ConfigurationError(
                f"systolic array {name!r}: energy per MAC must be "
                f"non-negative, got {energy_per_mac}")
        if not 0.0 < utilization <= 1.0:
            raise ConfigurationError(
                f"systolic array {name!r}: utilization must be in (0, 1], "
                f"got {utilization}")
        self.dimensions = tuple(int(v) for v in dimensions)
        self.energy_per_mac = energy_per_mac
        self.utilization = utilization
        rows, cols = self.dimensions
        macs_per_cycle = max(1, int(rows * cols * utilization))
        super().__init__(
            name, layer,
            input_pixels_per_cycle=[(rows, 1)],
            output_pixels_per_cycle=(1, 1),
            energy_per_cycle=macs_per_cycle * energy_per_mac,
            num_stages=num_stages,
            clock_hz=clock_hz,
            area=area)

    @property
    def macs_per_cycle(self) -> float:
        """Effective MAC throughput per cycle."""
        rows, cols = self.dimensions
        return rows * cols * self.utilization

    def cycles_for_macs(self, num_macs: float) -> float:
        """Cycles to execute ``num_macs`` multiply-accumulates."""
        if num_macs < 0:
            raise ConfigurationError(
                f"systolic array {self.name!r}: MAC count must be "
                f"non-negative, got {num_macs}")
        if num_macs == 0:
            return 0.0
        rows, cols = self.dimensions
        fill = rows + cols + self.num_stages - 2
        return num_macs / self.macs_per_cycle + fill

    def energy_for_macs(self, num_macs: float) -> float:
        """Energy of executing ``num_macs`` MACs."""
        return num_macs * self.energy_per_mac


def _normalize_input_shapes(name: str, shapes: Sequence) -> List[tuple]:
    """Accept one shape or a list of shapes; return a list of tuples."""
    if shapes and isinstance(shapes[0], (list, tuple)):
        return [_validated_shape(name, shape) for shape in shapes]
    return [_validated_shape(name, shapes)]


def _validated_shape(name: str, shape: Sequence[int]) -> tuple:
    values = tuple(int(v) for v in shape)
    if not values or any(v < 1 for v in values):
        raise ConfigurationError(
            f"compute unit {name!r}: shape must be positive integers, "
            f"got {shape}")
    return values


def _volume(shape: Sequence[int]) -> int:
    product = 1
    for value in shape:
        product *= value
    return product
