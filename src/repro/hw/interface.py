"""Data-movement interfaces (Sec. 4.4).

Two interfaces dominate communication energy: the MIPI CSI-2 link that
carries data off the sensor (~100 pJ/B [49]) and, for stacked designs, the
hybrid-bond / micro-TSV hops between layers (~1 pJ/B [49]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.exceptions import ConfigurationError

#: Literature energy cost of the MIPI CSI-2 off-sensor link.
MIPI_ENERGY_PER_BYTE = 100.0 * units.pJ
#: Literature energy cost of a micro-TSV inter-layer hop.
UTSV_ENERGY_PER_BYTE = 1.0 * units.pJ


@dataclass(frozen=True)
class Interface:
    """A byte-billed communication interface (Eq. 17)."""

    name: str
    energy_per_byte: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("interface needs a non-empty name")
        if self.energy_per_byte < 0:
            raise ConfigurationError(
                f"interface {self.name!r}: energy per byte must be "
                f"non-negative, got {self.energy_per_byte}")

    def energy(self, num_bytes: float) -> float:
        """Energy of moving ``num_bytes`` across the interface."""
        if num_bytes < 0:
            raise ConfigurationError(
                f"interface {self.name!r}: byte count must be non-negative, "
                f"got {num_bytes}")
        return self.energy_per_byte * num_bytes


def MIPI_CSI2(energy_per_byte: float = MIPI_ENERGY_PER_BYTE) -> Interface:
    """The off-sensor MIPI CSI-2 interface."""
    return Interface("MIPI CSI-2", energy_per_byte)


def MicroTSV(energy_per_byte: float = UTSV_ENERGY_PER_BYTE) -> Interface:
    """A micro-TSV / hybrid-bond inter-layer interface."""
    return Interface("uTSV", energy_per_byte)
