"""A-Cells: the leaf analog circuit cells (Sec. 4.2).

Every analog component is internally built from A-Cells.  The paper groups
them in three classes with distinct energy physics:

* :class:`DynamicCell` — energy is charged/discharged capacitance,
  ``E = sum(C_i * Vswing_i**2)`` (Eq. 5), with capacitors sized from the
  kT/C thermal-noise limit of the target data resolution (Eq. 6);
* :class:`StaticCell` — energy is a bias current integrated over the time
  the cell is statically biased, ``E = Vdda * Ibias * t_static`` (Eq. 7),
  with two ways to estimate ``Ibias`` (Eq. 8–10);
* :class:`NonLinearCell` — ADCs/comparators, estimated from the Walden FoM
  survey (Eq. 12).

Cell energies are evaluated lazily against a timing context because static
and non-linear cells depend on the delay the pipeline allocates to them
(Sec. 4.1); dynamic cells ignore timing.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.adc_fom import adc_energy_per_conversion

#: Default analog supply voltage.
DEFAULT_VDDA = 1.8 * units.V
#: Default gm/Id inversion-level factor (technology-insensitive, 10..20).
DEFAULT_GM_ID = 15.0


class AnalogCell(ABC):
    """Base class of all A-Cells.

    Subclasses implement :meth:`energy`, which receives the timing context
    allocated by the delay estimator:

    ``cell_delay``
        the settling time budgeted for this cell's own operation (determines
        bandwidth / sampling rate);
    ``static_time``
        the total time the cell remains statically biased (Eq. 11); for
        purely dynamic cells this is irrelevant.
    """

    def __init__(self, name: str):
        if not name:
            raise ConfigurationError("analog cell needs a non-empty name")
        self.name = name

    @abstractmethod
    def energy(self, cell_delay: float, static_time: Optional[float] = None
               ) -> float:
        """Energy of one activation of this cell, in joules."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class DynamicCell(AnalogCell):
    """A-Cell whose energy is pure capacitor charge/discharge (Eq. 5).

    ``nodes`` is the list of ``(capacitance, voltage_swing)`` pairs of the
    capacitance nodes switched per activation.
    """

    def __init__(self, name: str,
                 nodes: Sequence[Tuple[float, float]]):
        super().__init__(name)
        if not nodes:
            raise ConfigurationError(
                f"dynamic cell {name!r} needs at least one capacitance node")
        for capacitance, swing in nodes:
            if capacitance <= 0:
                raise ConfigurationError(
                    f"dynamic cell {name!r}: capacitance must be positive, "
                    f"got {capacitance}")
            if swing < 0:
                raise ConfigurationError(
                    f"dynamic cell {name!r}: voltage swing must be "
                    f"non-negative, got {swing}")
        self.nodes = tuple((float(c), float(v)) for c, v in nodes)

    @classmethod
    def for_resolution(cls, name: str, voltage_swing: float, bits: int,
                       num_nodes: int = 1,
                       temperature: float = units.ROOM_TEMPERATURE
                       ) -> "DynamicCell":
        """Size the capacitors from the kT/C noise limit (Eq. 6)."""
        capacitance = units.capacitance_for_resolution(
            voltage_swing, bits, temperature=temperature)
        return cls(name, [(capacitance, voltage_swing)] * num_nodes)

    @property
    def total_capacitance(self) -> float:
        """Sum of all switched capacitances."""
        return sum(c for c, _ in self.nodes)

    def energy(self, cell_delay: float, static_time: Optional[float] = None
               ) -> float:
        """``sum(C_i * V_i**2)`` — independent of timing."""
        return sum(c * v ** 2 for c, v in self.nodes)


class StaticCell(AnalogCell):
    """A-Cell consuming a static bias current (Eq. 7).

    Two bias-current estimators are provided, matching the paper:

    * *direct drive* (Eq. 8–9): ``Ibias`` slews the load within the cell
      delay, so the energy reduces to ``Cload * Vswing * Vdda`` and is
      timing-independent;
    * *gm/Id* (Eq. 10): ``Ibias = 2*pi*Cload*GBW / (gm/Id)`` with
      ``GBW = gain * BW`` and ``BW = 1/cell_delay``; the energy is then
      ``Vdda * Ibias * t_static`` and grows with how long the cell stays
      biased relative to its settling time (e.g., an analog frame buffer
      biased over the whole frame).
    """

    _DIRECT = "direct"
    _GM_ID = "gm_id"

    def __init__(self, name: str, *, load_capacitance: float,
                 voltage_swing: float, vdda: float = DEFAULT_VDDA,
                 mode: str = _DIRECT, gain: float = 1.0,
                 gm_id: float = DEFAULT_GM_ID):
        super().__init__(name)
        if load_capacitance <= 0:
            raise ConfigurationError(
                f"static cell {name!r}: load capacitance must be positive, "
                f"got {load_capacitance}")
        if voltage_swing < 0:
            raise ConfigurationError(
                f"static cell {name!r}: voltage swing must be non-negative, "
                f"got {voltage_swing}")
        if vdda <= 0:
            raise ConfigurationError(
                f"static cell {name!r}: vdda must be positive, got {vdda}")
        if mode not in (self._DIRECT, self._GM_ID):
            raise ConfigurationError(
                f"static cell {name!r}: unknown mode {mode!r}")
        if gain <= 0:
            raise ConfigurationError(
                f"static cell {name!r}: gain must be positive, got {gain}")
        if not 5.0 <= gm_id <= 30.0:
            raise ConfigurationError(
                f"static cell {name!r}: gm/Id of {gm_id} outside the "
                f"plausible 5..30 range")
        self.load_capacitance = load_capacitance
        self.voltage_swing = voltage_swing
        self.vdda = vdda
        self.mode = mode
        self.gain = gain
        self.gm_id = gm_id

    @classmethod
    def direct_drive(cls, name: str, load_capacitance: float,
                     voltage_swing: float, vdda: float = DEFAULT_VDDA
                     ) -> "StaticCell":
        """Bias current directly slews the load (source follower, Eq. 8)."""
        return cls(name, load_capacitance=load_capacitance,
                   voltage_swing=voltage_swing, vdda=vdda, mode=cls._DIRECT)

    @classmethod
    def gm_id_biased(cls, name: str, load_capacitance: float,
                     gain: float, vdda: float = DEFAULT_VDDA,
                     gm_id: float = DEFAULT_GM_ID,
                     voltage_swing: float = 0.0) -> "StaticCell":
        """Differential amplifier biased via the gm/Id method (Eq. 10)."""
        return cls(name, load_capacitance=load_capacitance,
                   voltage_swing=voltage_swing, vdda=vdda, mode=cls._GM_ID,
                   gain=gain, gm_id=gm_id)

    def bias_current(self, cell_delay: float) -> float:
        """Estimated bias current given the allocated settling delay."""
        if cell_delay <= 0:
            raise ConfigurationError(
                f"static cell {self.name!r}: cell delay must be positive, "
                f"got {cell_delay}")
        if self.mode == self._DIRECT:
            return self.load_capacitance * self.voltage_swing / cell_delay
        bandwidth = 1.0 / cell_delay
        gbw = self.gain * bandwidth
        return 2.0 * math.pi * self.load_capacitance * gbw / self.gm_id

    def energy(self, cell_delay: float, static_time: Optional[float] = None
               ) -> float:
        """``Vdda * Ibias * t_static`` (Eq. 7)."""
        if static_time is None:
            static_time = cell_delay
        if static_time < 0:
            raise ConfigurationError(
                f"static cell {self.name!r}: static time must be "
                f"non-negative, got {static_time}")
        return self.vdda * self.bias_current(cell_delay) * static_time


class NonLinearCell(AnalogCell):
    """ADC-like A-Cell estimated from the Walden FoM survey (Eq. 12).

    ``energy_per_conversion`` may be supplied directly by expert users (e.g.
    when the original paper reports it); absent that, the median FoM at the
    cell's sampling rate (the reciprocal of its delay) is used.
    """

    def __init__(self, name: str, bits: int,
                 energy_per_conversion: Optional[float] = None):
        super().__init__(name)
        if bits < 1:
            raise ConfigurationError(
                f"non-linear cell {name!r}: resolution must be >= 1 bit, "
                f"got {bits}")
        if energy_per_conversion is not None and energy_per_conversion <= 0:
            raise ConfigurationError(
                f"non-linear cell {name!r}: energy per conversion must be "
                f"positive, got {energy_per_conversion}")
        self.bits = bits
        self.energy_per_conversion = energy_per_conversion

    def energy(self, cell_delay: float, static_time: Optional[float] = None
               ) -> float:
        """Energy of one conversion at the sampling rate ``1/cell_delay``."""
        if self.energy_per_conversion is not None:
            return self.energy_per_conversion
        if cell_delay <= 0:
            raise ConfigurationError(
                f"non-linear cell {self.name!r}: cell delay must be "
                f"positive, got {cell_delay}")
        sample_rate = 1.0 / cell_delay
        return adc_energy_per_conversion(sample_rate, self.bits)


# --- Concrete cells used by the default A-Component implementations ---------


def Photodiode(name: str = "PD", capacitance: float = 10 * units.fF,
               voltage_swing: float = 1.0 * units.V) -> DynamicCell:
    """Photodiode reset/integration node (dynamic)."""
    return DynamicCell(name, [(capacitance, voltage_swing)])


def FloatingDiffusion(name: str = "FD", capacitance: float = 2.0 * units.fF,
                      voltage_swing: float = 1.0 * units.V) -> DynamicCell:
    """Floating-diffusion charge-transfer node of a 4T pixel (dynamic)."""
    return DynamicCell(name, [(capacitance, voltage_swing)])


def SourceFollower(name: str = "SF",
                   load_capacitance: float = 1.0 * units.pF,
                   voltage_swing: float = 1.0 * units.V,
                   vdda: float = DEFAULT_VDDA) -> StaticCell:
    """In-pixel source follower driving the column line (static, Eq. 8)."""
    return StaticCell.direct_drive(name, load_capacitance, voltage_swing,
                                   vdda=vdda)


def OpAmp(name: str = "OpAmp", load_capacitance: float = 100 * units.fF,
          gain: float = 2.0, vdda: float = DEFAULT_VDDA,
          gm_id: float = DEFAULT_GM_ID) -> StaticCell:
    """Differential operational amplifier (static, gm/Id method, Eq. 10)."""
    return StaticCell.gm_id_biased(name, load_capacitance, gain,
                                   vdda=vdda, gm_id=gm_id)


def CapacitorArray(name: str = "CapArray", num_capacitors: int = 8,
                   unit_capacitance: float = 10 * units.fF,
                   voltage_swing: float = 1.0 * units.V) -> DynamicCell:
    """Switched-capacitor array, e.g. of a charge-redistribution MAC."""
    if num_capacitors < 1:
        raise ConfigurationError(
            f"capacitor array {name!r} needs >= 1 capacitor, "
            f"got {num_capacitors}")
    nodes = [(unit_capacitance, voltage_swing)] * num_capacitors
    return DynamicCell(name, nodes)


def ComparatorCell(name: str = "Comparator",
                   energy_per_conversion: Optional[float] = None
                   ) -> NonLinearCell:
    """Comparator — a 1-bit ADC per the paper."""
    return NonLinearCell(name, bits=1,
                         energy_per_conversion=energy_per_conversion)


def ADCCell(name: str = "ADC", bits: int = 10,
            energy_per_conversion: Optional[float] = None) -> NonLinearCell:
    """Full analog-to-digital converter of a given resolution."""
    return NonLinearCell(name, bits=bits,
                         energy_per_conversion=energy_per_conversion)


def CurrentMirrorCell(name: str = "CurrentMirror",
                      load_capacitance: float = 20 * units.fF,
                      voltage_swing: float = 0.5 * units.V,
                      vdda: float = DEFAULT_VDDA) -> StaticCell:
    """Current mirror for current-domain computation (static, Eq. 8)."""
    return StaticCell.direct_drive(name, load_capacitance, voltage_swing,
                                   vdda=vdda)


@dataclass
class CellTiming:
    """Timing context handed to a cell by the component delay allocator."""

    cell_delay: float
    static_time: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.cell_delay <= 0:
            raise ConfigurationError(
                f"cell delay must be positive, got {self.cell_delay}")
        if self.static_time < 0:
            raise ConfigurationError(
                f"static time must be non-negative, got {self.static_time}")
