"""A-Components: analog functional units built from A-Cells (Sec. 4.2).

An :class:`AnalogComponent` is the unit users place into an Analog
Functional Array (pixel, ADC, analog MAC, ...).  Its per-access energy is
the weighted sum of its constituting A-Cells (Eq. 4), with cell access
counts expressed as *spatial* x *temporal* multiplicities (Eq. 13) and the
component delay evenly allocated to the cells on its critical path
(Eq. 11).

The concrete components at the bottom of this module are the default
implementations the paper surveys from classic CIS designs; expert users
can build custom components from raw :class:`CellUsage` lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.cells import (
    AnalogCell,
    ADCCell,
    CapacitorArray,
    ComparatorCell,
    CurrentMirrorCell,
    DEFAULT_VDDA,
    DynamicCell,
    FloatingDiffusion,
    OpAmp,
    Photodiode,
    SourceFollower,
    StaticCell,
)
from repro.hw.analog.domain import SignalDomain


@dataclass
class CellUsage:
    """How one A-Cell participates in a component access (Eq. 13).

    ``spatial``
        number of physical cell copies activated per access;
    ``temporal``
        number of times each copy fires per access (e.g. 2 for correlated
        double sampling);
    ``on_critical_path``
        whether the cell occupies a slot of the component delay budget; the
        paper notes all supported cells are uni-directional and hence on the
        critical path, but custom components may shunt auxiliary cells off;
    ``static_time``
        explicit override of the statically-biased duration (e.g. an analog
        frame buffer held for the whole frame); ``None`` derives it from the
        component delay allocation (Eq. 11).
    """

    cell: AnalogCell
    spatial: int = 1
    temporal: int = 1
    on_critical_path: bool = True
    static_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.spatial < 1:
            raise ConfigurationError(
                f"cell usage of {self.cell.name!r}: spatial count must be "
                f">= 1, got {self.spatial}")
        if self.temporal < 1:
            raise ConfigurationError(
                f"cell usage of {self.cell.name!r}: temporal count must be "
                f">= 1, got {self.temporal}")
        if self.static_time is not None and self.static_time < 0:
            raise ConfigurationError(
                f"cell usage of {self.cell.name!r}: static time must be "
                f"non-negative, got {self.static_time}")

    @property
    def access_count(self) -> int:
        """Total cell activations per component access (Eq. 13)."""
        return self.spatial * self.temporal


class AnalogComponent:
    """One analog functional unit with a cell-level energy model.

    Parameters
    ----------
    name:
        Unique human-readable identifier.
    input_domain / output_domain:
        Signal domains used by the viability check (Sec. 3.3).
    cell_usages:
        The A-Cells the component is built from.
    num_input / num_output:
        Shape of elements consumed/produced per access; used by the array
        handshake checks and by access counting for multi-input components
        (e.g. a binning pixel consuming a 2x2 tile).
    """

    def __init__(self, name: str, input_domain: SignalDomain,
                 output_domain: SignalDomain,
                 cell_usages: Sequence[CellUsage],
                 num_input: Sequence[int] = (1, 1),
                 num_output: Sequence[int] = (1, 1)):
        if not name:
            raise ConfigurationError("analog component needs a non-empty name")
        if not cell_usages:
            raise ConfigurationError(
                f"analog component {name!r} needs at least one cell")
        self.name = name
        self.input_domain = input_domain
        self.output_domain = output_domain
        self.cell_usages: List[CellUsage] = list(cell_usages)
        self.num_input = _validated_shape(name, "num_input", num_input)
        self.num_output = _validated_shape(name, "num_output", num_output)

    # --- shape helpers --------------------------------------------------------

    @property
    def input_volume(self) -> int:
        """Elements consumed per access."""
        return _volume(self.num_input)

    @property
    def output_volume(self) -> int:
        """Elements produced per access."""
        return _volume(self.num_output)

    # --- energy ---------------------------------------------------------------

    def _critical_path_usages(self) -> List[CellUsage]:
        return [u for u in self.cell_usages if u.on_critical_path]

    def energy_per_access(self, component_delay: float) -> float:
        """Energy of one component access given its allocated delay (Eq. 4).

        The delay is evenly split across critical-path cells; the j-th cell
        stays statically biased from its own activation until the end of the
        component access (Eq. 11), unless its usage carries an explicit
        ``static_time`` override.
        """
        if component_delay <= 0:
            raise ConfigurationError(
                f"component {self.name!r}: delay must be positive, "
                f"got {component_delay}")
        critical = self._critical_path_usages()
        num_slots = max(1, len(critical))
        slot = component_delay / num_slots
        total = 0.0
        critical_index = 0
        for usage in self.cell_usages:
            if usage.on_critical_path:
                elapsed_before = critical_index * slot
                derived_static = component_delay - elapsed_before
                critical_index += 1
                cell_delay = slot
            else:
                derived_static = component_delay
                cell_delay = component_delay
            static_time = (usage.static_time if usage.static_time is not None
                           else derived_static)
            # A cell fired `temporal` times within its slot settles faster
            # and is biased for a proportionally shorter window per firing.
            per_fire_delay = cell_delay / usage.temporal
            per_fire_static = static_time / usage.temporal
            per_fire = usage.cell.energy(per_fire_delay, per_fire_static)
            total += per_fire * usage.access_count
        return total

    def describe(self) -> str:
        """One-line summary of the cell composition."""
        cells = ", ".join(
            f"{u.spatial}x{u.temporal} {u.cell.name}" for u in self.cell_usages)
        return (f"{self.name} [{self.input_domain} -> {self.output_domain}]"
                f" ({cells})")

    def __repr__(self) -> str:
        return f"AnalogComponent({self.name!r})"


def _validated_shape(owner: str, attr: str, shape: Sequence[int]) -> tuple:
    values = tuple(int(v) for v in shape)
    if not values or any(v < 1 for v in values):
        raise ConfigurationError(
            f"{owner!r}.{attr}: shape must be positive integers, got {shape}")
    return values


def _volume(shape: Sequence[int]) -> int:
    product = 1
    for value in shape:
        product *= value
    return product


# --- Default component implementations (Table 1) ----------------------------


def ActivePixelSensor(name: str = "APS",
                      num_transistors: int = 4,
                      pd_capacitance: float = 10 * units.fF,
                      fd_capacitance: float = 2.0 * units.fF,
                      load_capacitance: float = 1.0 * units.pF,
                      voltage_swing: float = 1.0 * units.V,
                      vdda: float = DEFAULT_VDDA,
                      num_shared_pixels: int = 1,
                      correlated_double_sampling: bool = False
                      ) -> AnalogComponent:
    """3T/4T active pixel sensor, optionally FD-shared for binning.

    A 4T APS is a photodiode + floating diffusion + source follower; a 3T
    APS omits the floating diffusion.  ``num_shared_pixels > 1`` models
    charge-domain binning where several photodiodes dump onto one readout
    chain (the ``(APS(4, ...), 4)`` implementation of Fig. 5).
    """
    if num_transistors not in (3, 4):
        raise ConfigurationError(
            f"APS {name!r}: only 3T and 4T pixels supported, "
            f"got {num_transistors}T")
    if num_shared_pixels < 1:
        raise ConfigurationError(
            f"APS {name!r}: num_shared_pixels must be >= 1, "
            f"got {num_shared_pixels}")
    temporal_reads = 2 if correlated_double_sampling else 1
    usages = [CellUsage(Photodiode(capacitance=pd_capacitance,
                                   voltage_swing=voltage_swing),
                        spatial=num_shared_pixels)]
    if num_transistors == 4:
        usages.append(CellUsage(FloatingDiffusion(capacitance=fd_capacitance,
                                                  voltage_swing=voltage_swing),
                                spatial=num_shared_pixels))
    usages.append(CellUsage(SourceFollower(load_capacitance=load_capacitance,
                                           voltage_swing=voltage_swing,
                                           vdda=vdda),
                            temporal=temporal_reads))
    side = int(round(math.sqrt(num_shared_pixels)))
    if side * side == num_shared_pixels:
        input_shape = (side, side)
    else:
        input_shape = (num_shared_pixels, 1)
    return AnalogComponent(name, SignalDomain.OPTICAL, SignalDomain.VOLTAGE,
                           usages, num_input=input_shape)


def DigitalPixelSensor(name: str = "DPS",
                       bits: int = 10,
                       pd_capacitance: float = 10 * units.fF,
                       load_capacitance: float = 50 * units.fF,
                       voltage_swing: float = 1.0 * units.V,
                       vdda: float = DEFAULT_VDDA,
                       adc_energy_per_conversion: Optional[float] = None
                       ) -> AnalogComponent:
    """Digital pixel sensor: pixel front-end plus a per-pixel ADC."""
    usages = [
        CellUsage(Photodiode(capacitance=pd_capacitance,
                             voltage_swing=voltage_swing)),
        CellUsage(SourceFollower(load_capacitance=load_capacitance,
                                 voltage_swing=voltage_swing, vdda=vdda)),
        CellUsage(ADCCell(bits=bits,
                          energy_per_conversion=adc_energy_per_conversion)),
    ]
    return AnalogComponent(name, SignalDomain.OPTICAL, SignalDomain.DIGITAL,
                           usages)


def PWMPixel(name: str = "PWMPixel",
             pd_capacitance: float = 10 * units.fF,
             voltage_swing: float = 1.0 * units.V,
             comparator_energy: Optional[float] = None) -> AnalogComponent:
    """Pulse-width-modulation pixel: light encoded as pulse timing."""
    usages = [
        CellUsage(Photodiode(capacitance=pd_capacitance,
                             voltage_swing=voltage_swing)),
        CellUsage(ComparatorCell(energy_per_conversion=comparator_energy)),
    ]
    return AnalogComponent(name, SignalDomain.OPTICAL, SignalDomain.TIME,
                           usages)


def ColumnADC(name: str = "ADC", bits: int = 10,
              energy_per_conversion: Optional[float] = None
              ) -> AnalogComponent:
    """Column-parallel (or chip-level) analog-to-digital converter."""
    usages = [CellUsage(ADCCell(bits=bits,
                                energy_per_conversion=energy_per_conversion))]
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.DIGITAL,
                           usages)


def AnalogMAC(name: str = "AnalogMAC",
              kernel_volume: int = 9,
              unit_capacitance: float = 10 * units.fF,
              voltage_swing: float = 1.0 * units.V,
              vdda: float = DEFAULT_VDDA,
              include_opamp: bool = True,
              opamp_gain: float = 2.0,
              input_domain: SignalDomain = SignalDomain.VOLTAGE,
              output_domain: SignalDomain = SignalDomain.VOLTAGE
              ) -> AnalogComponent:
    """Switched-capacitor multiply-accumulate over a stencil window.

    One access computes one ``kernel_volume``-tap dot product via charge
    redistribution [42]: a capacitor array samples the inputs and an OpAmp
    (optional for fully-passive designs) merges the charge.
    """
    if kernel_volume < 1:
        raise ConfigurationError(
            f"analog MAC {name!r}: kernel volume must be >= 1, "
            f"got {kernel_volume}")
    usages = [CellUsage(CapacitorArray(num_capacitors=kernel_volume,
                                       unit_capacitance=unit_capacitance,
                                       voltage_swing=voltage_swing))]
    if include_opamp:
        load = unit_capacitance * kernel_volume
        usages.append(CellUsage(OpAmp(load_capacitance=load, gain=opamp_gain,
                                      vdda=vdda)))
    return AnalogComponent(name, input_domain, output_domain, usages,
                           num_input=(kernel_volume, 1))


def CurrentDomainMAC(name: str = "CurrentMAC", kernel_volume: int = 9,
                     load_capacitance: float = 20 * units.fF,
                     voltage_swing: float = 0.5 * units.V,
                     vdda: float = DEFAULT_VDDA,
                     input_domain: SignalDomain = SignalDomain.CURRENT
                     ) -> AnalogComponent:
    """Current-domain MAC built from mirrored branches.

    ``input_domain`` defaults to current (PWM-gated branches); designs that
    drive the branch transistors' gates from a pixel voltage (Senputing
    style) pass ``SignalDomain.VOLTAGE`` — the V→I conversion is the branch
    transistor itself.
    """
    if kernel_volume < 1:
        raise ConfigurationError(
            f"current MAC {name!r}: kernel volume must be >= 1, "
            f"got {kernel_volume}")
    usages = [CellUsage(CurrentMirrorCell(load_capacitance=load_capacitance,
                                          voltage_swing=voltage_swing,
                                          vdda=vdda),
                        spatial=kernel_volume)]
    return AnalogComponent(name, input_domain, SignalDomain.CURRENT,
                           usages, num_input=(kernel_volume, 1))


def AnalogAdder(name: str = "AnalogAdd",
                capacitance: float = 20 * units.fF,
                voltage_swing: float = 1.0 * units.V) -> AnalogComponent:
    """Passive charge-sharing two-input adder."""
    cell = DynamicCell("ShareCaps", [(capacitance, voltage_swing)] * 2)
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(cell)], num_input=(2, 1))


def AnalogMax(name: str = "AnalogMax", num_inputs: int = 4,
              load_capacitance: float = 30 * units.fF,
              voltage_swing: float = 0.7 * units.V,
              vdda: float = DEFAULT_VDDA) -> AnalogComponent:
    """Winner-take-all maximum over ``num_inputs`` (max-pooling in analog)."""
    if num_inputs < 2:
        raise ConfigurationError(
            f"analog max {name!r}: needs >= 2 inputs, got {num_inputs}")
    cell = StaticCell.direct_drive("WTA", load_capacitance, voltage_swing,
                                   vdda=vdda)
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(cell, spatial=num_inputs)],
                           num_input=(num_inputs, 1))


def AnalogScaling(name: str = "AnalogScale",
                  capacitance: float = 20 * units.fF,
                  voltage_swing: float = 1.0 * units.V) -> AnalogComponent:
    """Capacitor-ratio scaling (fixed-coefficient multiply)."""
    cell = DynamicCell("RatioCaps", [(capacitance, voltage_swing)] * 2)
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(cell)])


def AnalogLog(name: str = "AnalogLog",
              load_capacitance: float = 10 * units.fF,
              voltage_swing: float = 0.3 * units.V,
              vdda: float = DEFAULT_VDDA) -> AnalogComponent:
    """Logarithmic compression via a subthreshold-biased transistor."""
    cell = StaticCell.direct_drive("SubVtLog", load_capacitance,
                                   voltage_swing, vdda=vdda)
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(cell)])


def AnalogAbs(name: str = "AnalogAbs",
              load_capacitance: float = 50 * units.fF,
              gain: float = 2.0, vdda: float = DEFAULT_VDDA
              ) -> AnalogComponent:
    """Absolute-value circuit (rectifying amplifier)."""
    cell = OpAmp("AbsAmp", load_capacitance=load_capacitance, gain=gain,
                 vdda=vdda)
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(cell)])


def AnalogComparator(name: str = "Comparator",
                     energy_per_conversion: Optional[float] = None
                     ) -> AnalogComponent:
    """Standalone comparator: a 1-bit quantizer (voltage -> digital)."""
    usages = [CellUsage(ComparatorCell(
        energy_per_conversion=energy_per_conversion))]
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.DIGITAL,
                           usages)


def PassiveAnalogMemory(name: str = "PassiveMem",
                        bits: int = 8,
                        voltage_swing: float = 1.0 * units.V,
                        capacitance: Optional[float] = None
                        ) -> AnalogComponent:
    """Passive sampling-capacitor memory cell.

    The capacitor is sized from the kT/C limit of the stored resolution
    (Eq. 6) unless an explicit ``capacitance`` is given.
    """
    if capacitance is None:
        cell = DynamicCell.for_resolution("SampleCap", voltage_swing, bits)
    else:
        cell = DynamicCell("SampleCap", [(capacitance, voltage_swing)])
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(cell)])


def ActiveAnalogMemory(name: str = "ActiveMem",
                       bits: int = 8,
                       voltage_swing: float = 1.0 * units.V,
                       capacitance: Optional[float] = None,
                       hold_time: Optional[float] = None,
                       opamp_gain: float = 1.0,
                       vdda: float = DEFAULT_VDDA) -> AnalogComponent:
    """Actively-buffered analog memory (e.g. an analog frame buffer).

    The buffer OpAmp stays biased for ``hold_time`` (typically the frame
    time) rather than only during its settling slot — the case Eq. 7 exists
    for.
    """
    if capacitance is None:
        store = DynamicCell.for_resolution("HoldCap", voltage_swing, bits)
    else:
        store = DynamicCell("HoldCap", [(capacitance, voltage_swing)])
    buffer_amp = OpAmp("HoldAmp", load_capacitance=store.total_capacitance,
                       gain=opamp_gain, vdda=vdda)
    usages = [
        CellUsage(store),
        CellUsage(buffer_amp, static_time=hold_time),
    ]
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           usages)


def SampleAndHold(name: str = "S&H",
                  capacitance: float = 50 * units.fF,
                  voltage_swing: float = 1.0 * units.V,
                  load_capacitance: float = 200 * units.fF,
                  vdda: float = DEFAULT_VDDA) -> AnalogComponent:
    """Sample-and-hold: sampling switch-cap plus an output buffer."""
    usages = [
        CellUsage(DynamicCell("SampleCap", [(capacitance, voltage_swing)])),
        CellUsage(SourceFollower("HoldBuffer",
                                 load_capacitance=load_capacitance,
                                 voltage_swing=voltage_swing, vdda=vdda)),
    ]
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           usages)


def SwitchedCapSubtractor(name: str = "SCSub",
                          capacitance: float = 100 * units.fF,
                          voltage_swing: float = 1.0 * units.V,
                          opamp_gain: float = 2.0,
                          vdda: float = DEFAULT_VDDA) -> AnalogComponent:
    """Switched-capacitor subtractor/multiplier (the Fig. 10 analog PE)."""
    usages = [
        CellUsage(DynamicCell("SubCaps",
                              [(capacitance, voltage_swing)] * 2)),
        CellUsage(OpAmp("SubAmp", load_capacitance=capacitance,
                        gain=opamp_gain, vdda=vdda)),
    ]
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           usages, num_input=(2, 1))
