"""Walden figure-of-merit survey for ADC energy estimation.

Non-linear A-Cells (ADCs, comparators) mix dynamic, static, and digital
sub-circuits, so CamJ estimates their energy from the empirical Walden FoM
survey [53] instead of analytical formulas (Eq. 12): given the ADC's
sampling rate, use the *median* energy-per-conversion among surveyed
converters at that rate.

The embedded dataset is a synthetic reconstruction of the survey's envelope:
the Walden FoM of published converters is roughly flat (tens of fJ per
conversion-step) below a corner sampling rate around 100 MS/s and rises
roughly linearly with the rate above the corner.  Points are spread
deterministically around that envelope so median lookups behave like they
would against the real scatter plot.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

from repro import units
from repro.exceptions import ConfigurationError

#: Walden FoM floor below the corner frequency (J per conversion-step).
_FOM_FLOOR = 15.0 * units.fJ
#: Corner sampling rate where FoM starts degrading.
_CORNER_RATE = 100.0 * units.MHz


class FomPoint(NamedTuple):
    """One surveyed converter: sampling rate (Hz), FoM (J/conversion-step)."""

    sample_rate: float
    fom: float


def _envelope(sample_rate: float) -> float:
    """Median Walden FoM trend at a sampling rate."""
    return _FOM_FLOOR * max(1.0, sample_rate / _CORNER_RATE)


def _build_survey() -> tuple:
    """Deterministically scatter survey points around the envelope.

    Sampling rates span 1 kS/s to 10 GS/s (log-uniform); each decade holds a
    fixed number of designs whose FoM spreads multiplicatively around the
    envelope, mimicking the order-of-magnitude scatter of the real survey.
    """
    points = []
    decades = range(3, 11)  # 1e3 .. 1e10 S/s
    per_decade = 16
    for decade in decades:
        for i in range(per_decade):
            fraction = i / per_decade
            rate = 10.0 ** (decade + fraction)
            # Deterministic pseudo-scatter in [-1, 1], multiplicative spread
            # of about 0.3x .. 3x around the envelope median.
            phase = math.sin(12.9898 * (decade + fraction) + 4.1414 * i)
            spread = 3.0 ** phase
            points.append(FomPoint(sample_rate=rate, fom=_envelope(rate) * spread))
    return tuple(points)


FOM_SURVEY: Sequence[FomPoint] = _build_survey()


def _median(values) -> float:
    ordered = sorted(values)
    count = len(ordered)
    middle = count // 2
    if count % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def walden_fom(sample_rate: float, window_decades: float = 0.5) -> float:
    """Median Walden FoM (J/conversion-step) near ``sample_rate``.

    Looks up all surveyed converters within ``window_decades`` of the rate
    (in log space) and returns their median FoM; falls back to the envelope
    trend when the window is empty (rates beyond the survey range).
    """
    if sample_rate <= 0:
        raise ConfigurationError(
            f"sample_rate must be positive, got {sample_rate}")
    log_rate = math.log10(sample_rate)
    nearby = [point.fom for point in FOM_SURVEY
              if abs(math.log10(point.sample_rate) - log_rate)
              <= window_decades]
    if not nearby:
        return _envelope(sample_rate)
    return _median(nearby)


def adc_energy_per_conversion(sample_rate: float, bits: int) -> float:
    """Median energy of one full conversion: ``FoM * 2**bits`` (Eq. 12)."""
    if bits < 1:
        raise ConfigurationError(f"ADC resolution must be >= 1 bit, got {bits}")
    return walden_fom(sample_rate) * (2 ** bits)
