"""Walden figure-of-merit survey for ADC energy estimation.

Non-linear A-Cells (ADCs, comparators) mix dynamic, static, and digital
sub-circuits, so CamJ estimates their energy from the empirical Walden FoM
survey [53] instead of analytical formulas (Eq. 12): given the ADC's
sampling rate, use the *median* energy-per-conversion among surveyed
converters at that rate.

The embedded dataset is a synthetic reconstruction of the survey's envelope:
the Walden FoM of published converters is roughly flat (tens of fJ per
conversion-step) below a corner sampling rate around 100 MS/s and rises
roughly linearly with the rate above the corner.  Points are spread
deterministically around that envelope so median lookups behave like they
would against the real scatter plot.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

from repro import units
from repro.exceptions import ConfigurationError

#: Walden FoM floor below the corner frequency (J per conversion-step).
_FOM_FLOOR = 15.0 * units.fJ
#: Corner sampling rate where FoM starts degrading.
_CORNER_RATE = 100.0 * units.MHz


class FomPoint(NamedTuple):
    """One surveyed converter: sampling rate (Hz), FoM (J/conversion-step)."""

    sample_rate: float
    fom: float


def _envelope(sample_rate: float) -> float:
    """Median Walden FoM trend at a sampling rate."""
    return _FOM_FLOOR * max(1.0, sample_rate / _CORNER_RATE)


def _build_survey() -> tuple:
    """Deterministically scatter survey points around the envelope.

    Sampling rates span 1 kS/s to 10 GS/s (log-uniform); each decade holds a
    fixed number of designs whose FoM spreads multiplicatively around the
    envelope, mimicking the order-of-magnitude scatter of the real survey.
    """
    points = []
    decades = range(3, 11)  # 1e3 .. 1e10 S/s
    per_decade = 16
    for decade in decades:
        for i in range(per_decade):
            fraction = i / per_decade
            rate = 10.0 ** (decade + fraction)
            # Deterministic pseudo-scatter in [-1, 1], multiplicative spread
            # of about 0.3x .. 3x around the envelope median.
            phase = math.sin(12.9898 * (decade + fraction) + 4.1414 * i)
            spread = 3.0 ** phase
            points.append(FomPoint(sample_rate=rate, fom=_envelope(rate) * spread))
    return tuple(points)


FOM_SURVEY: Sequence[FomPoint] = _build_survey()


def _median(values) -> float:
    ordered = sorted(values)
    count = len(ordered)
    middle = count // 2
    if count % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def walden_fom(sample_rate: float, window_decades: float = 0.5) -> float:
    """Median Walden FoM (J/conversion-step) near ``sample_rate``.

    Looks up all surveyed converters within ``window_decades`` of the rate
    (in log space) and returns their median FoM; falls back to the envelope
    trend when the window is empty (rates beyond the survey range).
    """
    if sample_rate <= 0:
        raise ConfigurationError(
            f"sample_rate must be positive, got {sample_rate}")
    log_rate = math.log10(sample_rate)
    nearby = [point.fom for point in FOM_SURVEY
              if abs(math.log10(point.sample_rate) - log_rate)
              <= window_decades]
    if not nearby:
        return _envelope(sample_rate)
    return _median(nearby)


def adc_energy_per_conversion(sample_rate: float, bits: int) -> float:
    """Median energy of one full conversion: ``FoM * 2**bits`` (Eq. 12)."""
    if bits < 1:
        raise ConfigurationError(f"ADC resolution must be >= 1 bit, got {bits}")
    return walden_fom(sample_rate) * (2 ** bits)


_SURVEY_LOG_RATES = tuple(math.log10(point.sample_rate)
                          for point in FOM_SURVEY)
_SURVEY_FOMS = tuple(point.fom for point in FOM_SURVEY)


def walden_fom_batch(sample_rates, window_decades: float = 0.5):
    """Vector mirror of :func:`walden_fom` over an array of rates.

    Bit-identical per element: the log-space window is evaluated against
    the same ``math.log10`` values the scalar lookup compares, and each
    distinct window takes the same :func:`_median` over the same survey
    slice.  Survey rates are ascending, so every window is a contiguous
    slice identified by its (start, length) pair — points sharing a
    window share one median computation.
    """
    import numpy as np

    rates = np.asarray(sample_rates, dtype=float)
    if rates.size == 0:
        return np.zeros(0)
    if not bool((rates > 0).all()):
        raise ConfigurationError("sample rates must all be positive")
    # math.log10 per point, not np.log10: the window membership below
    # must see the very floats the scalar path compares (np.log10 is
    # not bit-identical to math.log10 on this platform).
    point_logs = np.array([math.log10(rate) for rate in rates.tolist()])
    survey_logs = np.array(_SURVEY_LOG_RATES)
    # The survey is ascending with strictly distinct log rates, so each
    # point's window is the contiguous run where the scalar predicate
    # abs(survey_log - point_log) <= window holds.  Two searchsorted
    # calls seed the run bounds from the rounded point_log -/+ window;
    # because that one rounding can disagree with the predicate (which
    # subtracts first) only within ~1 ulp — far below the survey's
    # log-rate spacing — each bound is off by at most one index, and
    # the exact-predicate nudges below (two steps, for margin) restore
    # bit-identical membership without the dense N x survey mask.
    size = survey_logs.size
    first = np.searchsorted(survey_logs, point_logs - window_decades,
                            side="left")
    last = np.searchsorted(survey_logs, point_logs + window_decades,
                           side="right")

    def _in_window(indices):
        probe = survey_logs[np.clip(indices, 0, size - 1)]
        return np.abs(probe - point_logs) <= window_decades

    for _ in range(2):
        prev = first - 1
        first = np.where((prev >= 0) & _in_window(prev), prev, first)
    for _ in range(2):
        first = np.where((first < size) & ~_in_window(first),
                         first + 1, first)
    for _ in range(2):
        last = np.where((last < size) & _in_window(last), last + 1, last)
    for _ in range(2):
        prev = last - 1
        last = np.where((prev >= 0) & ~_in_window(prev), prev, last)
    counts = np.maximum(last - first, 0)
    out = np.empty(rates.shape)
    empty = counts == 0
    if bool(empty.any()):
        out[empty] = _FOM_FLOOR * np.maximum(1.0,
                                             rates[empty] / _CORNER_RATE)
    filled = ~empty
    if bool(filled.any()):
        stride = len(_SURVEY_FOMS) + 1
        keys = first[filled] * stride + counts[filled]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        medians = np.empty(len(unique_keys))
        for position, key in enumerate(unique_keys.tolist()):
            start, length = divmod(int(key), stride)
            medians[position] = _median(
                list(_SURVEY_FOMS[start:start + length]))
        out[filled] = medians[inverse]
    return out
