"""Signal domains of analog components.

CamJ's pre-simulation viability check (Sec. 3.3) verifies that the
``output_domain`` of every producer matches the ``input_domain`` of its
consumer; a charge-domain producer feeding a voltage-domain consumer, for
instance, requires an explicit conversion component in between.
"""

from __future__ import annotations

import enum


class SignalDomain(enum.Enum):
    """Physical representation of a signal flowing through the sensor."""

    OPTICAL = "optical"
    CHARGE = "charge"
    VOLTAGE = "voltage"
    CURRENT = "current"
    TIME = "time"
    DIGITAL = "digital"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_analog(self) -> bool:
        """Whether the signal lives in the analog domain (needs an ADC)."""
        return self not in (SignalDomain.DIGITAL,)


#: Producer/consumer pairs that are compatible *without* an explicit
#: conversion component.  Identical domains are always compatible; a charge
#: producer may feed a voltage consumer directly because the consumer's
#: inherent input capacitor performs the Q→V conversion for free (footnote 1
#: in the paper); a time-domain (PWM) pulse may gate a current branch
#: directly, which is how the time & current mixed-mode designs of Table 2
#: (JSSC'21-I, ISSCC'22) implement their MACs.
#: A current integrated onto the consumer's capacitive input node likewise
#: converts I→V for free, the same footnote-1 argument as charge→voltage.
_IMPLICIT_CONVERSIONS = {
    (SignalDomain.CHARGE, SignalDomain.VOLTAGE),
    (SignalDomain.TIME, SignalDomain.CURRENT),
    (SignalDomain.CURRENT, SignalDomain.VOLTAGE),
}


def compatible(producer: SignalDomain, consumer: SignalDomain) -> bool:
    """Whether ``producer`` output can legally feed ``consumer`` input."""
    if producer is consumer:
        return True
    return (producer, consumer) in _IMPLICIT_CONVERSIONS


def requires_adc(producer: SignalDomain, consumer: SignalDomain) -> bool:
    """Whether the hop from ``producer`` to ``consumer`` crosses A/D."""
    return producer.is_analog and consumer is SignalDomain.DIGITAL
