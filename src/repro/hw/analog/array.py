"""Analog Functional Arrays (AFAs).

An :class:`AnalogArray` groups identical (or chained) A-Components into the
structural unit algorithms are mapped onto: the pixel array, the column-ADC
array, an analog-PE array, an analog frame buffer, ...

Access counting follows Eq. 3: stencil regularity means every component in
an AFA is accessed the same number of times, namely the operations mapped
to the AFA divided by the component count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.hw.analog.components import AnalogComponent, _volume
from repro.hw.analog.domain import SignalDomain
from repro.hw.layer import SENSOR_LAYER


class AnalogArray:
    """One analog functional array on one layer of the sensor stack.

    Parameters
    ----------
    name:
        Unique identifier referenced by the mapping.
    layer:
        Name of the layer the array lives on (see :mod:`repro.hw.layer`).
    num_input / num_output:
        Shape of elements the array consumes/produces per array step; the
        handshake check compares these across producer/consumer arrays.
    """

    #: Valid values for the report category of an array.
    CATEGORIES = ("sensing", "compute", "memory")

    def __init__(self, name: str, layer: str = SENSOR_LAYER,
                 num_input: Sequence[int] = (1, 1),
                 num_output: Sequence[int] = (1, 1),
                 category: Optional[str] = None):
        if not name:
            raise ConfigurationError("analog array needs a non-empty name")
        if category is not None and category not in self.CATEGORIES:
            raise ConfigurationError(
                f"analog array {name!r}: category must be one of "
                f"{self.CATEGORIES}, got {category!r}")
        self.name = name
        self.layer = layer
        self.num_input = tuple(int(v) for v in num_input)
        self.num_output = tuple(int(v) for v in num_output)
        if any(v < 1 for v in self.num_input + self.num_output):
            raise ConfigurationError(
                f"analog array {name!r}: shapes must be positive integers")
        self._category = category
        self._entries: List[Tuple[AnalogComponent, int]] = []
        self.output_arrays: List["AnalogArray"] = []
        self.input_arrays: List["AnalogArray"] = []
        self.output_memories: List[object] = []

    # --- construction -----------------------------------------------------

    def add_component(self, component: AnalogComponent,
                      shape: Sequence[int]) -> "AnalogArray":
        """Place ``shape`` copies of ``component`` into the array."""
        count = _volume(tuple(int(v) for v in shape))
        if count < 1:
            raise ConfigurationError(
                f"analog array {self.name!r}: component count must be >= 1")
        if any(component.name == existing.name
               for existing, _ in self._entries):
            raise ConfigurationError(
                f"analog array {self.name!r}: duplicate component "
                f"{component.name!r}")
        self._entries.append((component, count))
        return self

    def set_output(self, consumer) -> "AnalogArray":
        """Wire this array's output into another array or a digital memory.

        Accepts an :class:`AnalogArray` (analog chain hop) or any digital
        memory object (the A/D hand-off point, e.g. the line buffer of
        Fig. 5).
        """
        if consumer is self:
            raise ConfigurationError(
                f"analog array {self.name!r} cannot feed itself")
        if isinstance(consumer, AnalogArray):
            if consumer not in self.output_arrays:
                self.output_arrays.append(consumer)
                consumer.input_arrays.append(self)
        else:
            if consumer not in self.output_memories:
                self.output_memories.append(consumer)
        return self

    # --- introspection ------------------------------------------------------

    @property
    def components(self) -> List[Tuple[AnalogComponent, int]]:
        """``(component, count)`` entries in signal-flow order."""
        return list(self._entries)

    @property
    def num_components(self) -> int:
        """Total component instances across all entries."""
        return sum(count for _, count in self._entries)

    @property
    def input_domain(self) -> SignalDomain:
        """Input domain of the first component in the chain."""
        self._require_components()
        return self._entries[0][0].input_domain

    @property
    def output_domain(self) -> SignalDomain:
        """Output domain of the last component in the chain."""
        self._require_components()
        return self._entries[-1][0].output_domain

    def _require_components(self) -> None:
        if not self._entries:
            raise ConfigurationError(
                f"analog array {self.name!r} has no components")

    @property
    def category(self) -> str:
        """Report category: explicit, or inferred from the component chain.

        Arrays touching the optical domain or performing A/D conversion are
        *sensing* (the paper's SEN rollup); everything else defaults to
        *compute* — analog memories should be tagged explicitly.
        """
        if self._category is not None:
            return self._category
        self._require_components()
        for component, _ in self._entries:
            if component.input_domain is SignalDomain.OPTICAL:
                return "sensing"
            if (component.input_domain.is_analog
                    and component.output_domain is SignalDomain.DIGITAL):
                return "sensing"
        return "compute"

    # --- access counting and energy (Eqs. 2-3) --------------------------------

    def component_access_counts(self, ops: float) -> Dict[str, float]:
        """Per-component access counts for ``ops`` operations (Eq. 3)."""
        self._require_components()
        if ops < 0:
            raise ConfigurationError(
                f"analog array {self.name!r}: ops must be non-negative, "
                f"got {ops}")
        return {component.name: ops / count
                for component, count in self._entries}

    def energy_breakdown(self, ops: float, array_delay: float,
                         ) -> Dict[str, float]:
        """Per-component energy for ``ops`` operations within ``array_delay``.

        Each component instance performs ``ops / count`` accesses serially
        within the array delay, so its per-access delay is the array delay
        divided by that access count (never less than one access worth —
        an underutilized component simply idles).
        """
        self._require_components()
        if array_delay <= 0:
            raise ConfigurationError(
                f"analog array {self.name!r}: delay must be positive, "
                f"got {array_delay}")
        breakdown: Dict[str, float] = {}
        for component, count in self._entries:
            accesses_per_component = ops / count
            per_access_delay = array_delay / max(1.0, accesses_per_component)
            per_access = component.energy_per_access(per_access_delay)
            breakdown[component.name] = per_access * ops
        return breakdown

    def energy(self, ops: float, array_delay: float) -> float:
        """Total array energy for ``ops`` operations (Eq. 2 restricted here)."""
        return sum(self.energy_breakdown(ops, array_delay).values())

    def describe(self) -> str:
        """Multi-line summary of the array contents."""
        lines = [f"AnalogArray {self.name!r} on layer {self.layer!r}"]
        for component, count in self._entries:
            lines.append(f"  {count} x {component.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"AnalogArray({self.name!r}, components={self.num_components})"
