"""Extended A-Component library.

Components beyond the Table 1 baseline, built from the same A-Cell
physics and surveyed from the designs the paper cites:

* :func:`PassiveMatrixMultiplier` — the fully-passive switched-capacitor
  matrix multiplier of Lee & Wong [42] (no OpAmp at all: charge
  redistribution only, at the cost of signal attenuation);
* :func:`ProgrammableGainAmplifier` — column-level PGA, the standard
  pre-ADC signal conditioner in high-DR readout chains;
* :func:`SingleSlopeADC` — an *analytical* single-slope converter model
  (ramp + comparator + counter) as an alternative to the Walden-FoM
  estimate, exposing the bit-count/energy trade explicitly;
* :func:`CorrelatedDoubleSampler` — the sample-twice-subtract stage that
  removes pixel reset noise and FPN (Capoccia et al. [9]).
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.exceptions import ConfigurationError
from repro.hw.analog.cells import (
    AnalogCell,
    DEFAULT_VDDA,
    DynamicCell,
    OpAmp,
    StaticCell,
)
from repro.hw.analog.components import AnalogComponent, CellUsage
from repro.hw.analog.domain import SignalDomain


def PassiveMatrixMultiplier(name: str = "PassiveMatMul",
                            rows: int = 4, cols: int = 4,
                            unit_capacitance: float = 5 * units.fF,
                            voltage_swing: float = 1.0 * units.V
                            ) -> AnalogComponent:
    """Fully-passive switched-capacitor matrix multiplier [42].

    One access computes a ``rows x cols`` matrix-vector product purely by
    charge redistribution over a capacitor matrix — no static bias at all,
    so the energy is the Eq. 5 dynamic term of ``rows*cols`` unit caps.
    The passive trade-off (signal attenuation per stage) is a functional
    concern, not an energy one, so it does not appear here.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError(
            f"matrix multiplier {name!r}: dimensions must be >= 1, "
            f"got {rows}x{cols}")
    matrix = DynamicCell(
        "CapMatrix", [(unit_capacitance, voltage_swing)] * (rows * cols))
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(matrix)],
                           num_input=(cols, 1), num_output=(rows, 1))


def ProgrammableGainAmplifier(name: str = "PGA",
                              gain: float = 4.0,
                              load_capacitance: float = 200 * units.fF,
                              vdda: float = DEFAULT_VDDA,
                              gm_id: float = 15.0) -> AnalogComponent:
    """Column-level programmable gain amplifier (pre-ADC conditioning)."""
    if gain <= 0:
        raise ConfigurationError(
            f"PGA {name!r}: gain must be positive, got {gain}")
    amp = StaticCell.gm_id_biased("PGAAmp", load_capacitance, gain,
                                  vdda=vdda, gm_id=gm_id)
    sampling = DynamicCell("PGACaps", [(load_capacitance / gain, 1.0)])
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(sampling), CellUsage(amp)])


class _SingleSlopeCell(AnalogCell):
    """Analytical single-slope conversion: comparator biased over 2^N
    ramp steps plus a Gray-counter toggle per step.

    Energy per conversion = ``Vdda * Ibias * t_ramp + steps * E_count``
    with ``t_ramp`` the allocated cell delay — slower column clocks make
    the comparator bias window longer, which is why single-slope ADCs get
    *more* expensive at low rates, opposite to the Walden-FoM trend.
    """

    def __init__(self, name: str, bits: int, comparator_bias: float,
                 vdda: float, counter_energy_per_step: float):
        super().__init__(name)
        if bits < 1:
            raise ConfigurationError(
                f"single-slope cell {name!r}: bits must be >= 1")
        if comparator_bias <= 0:
            raise ConfigurationError(
                f"single-slope cell {name!r}: bias must be positive")
        if counter_energy_per_step < 0:
            raise ConfigurationError(
                f"single-slope cell {name!r}: counter energy must be "
                f"non-negative")
        self.bits = bits
        self.comparator_bias = comparator_bias
        self.vdda = vdda
        self.counter_energy_per_step = counter_energy_per_step

    def energy(self, cell_delay: float,
               static_time: Optional[float] = None) -> float:
        if cell_delay <= 0:
            raise ConfigurationError(
                f"single-slope cell {self.name!r}: delay must be positive")
        ramp_window = static_time if static_time is not None else cell_delay
        steps = 2 ** self.bits
        comparator = self.vdda * self.comparator_bias * ramp_window
        counter = steps * self.counter_energy_per_step
        return comparator + counter


def SingleSlopeADC(name: str = "SSADC", bits: int = 10,
                   comparator_bias: float = 1.0 * units.uA,
                   vdda: float = DEFAULT_VDDA,
                   counter_energy_per_step: float = 5 * units.fJ
                   ) -> AnalogComponent:
    """Analytical single-slope column ADC (the dominant CIS ADC style)."""
    cell = _SingleSlopeCell("SSConvert", bits=bits,
                            comparator_bias=comparator_bias, vdda=vdda,
                            counter_energy_per_step=counter_energy_per_step)
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.DIGITAL,
                           [CellUsage(cell)])


def CorrelatedDoubleSampler(name: str = "CDS",
                            capacitance: float = 50 * units.fF,
                            voltage_swing: float = 1.0 * units.V,
                            opamp_gain: float = 1.5,
                            vdda: float = DEFAULT_VDDA) -> AnalogComponent:
    """Correlated double sampling: sample reset + signal, subtract [9].

    Two sampling events per access (temporal = 2) on each of two caps,
    plus the subtraction amplifier.
    """
    caps = DynamicCell("CDSCaps", [(capacitance, voltage_swing)] * 2)
    amp = OpAmp("CDSAmp", load_capacitance=capacitance, gain=opamp_gain,
                vdda=vdda)
    return AnalogComponent(name, SignalDomain.VOLTAGE, SignalDomain.VOLTAGE,
                           [CellUsage(caps, temporal=2), CellUsage(amp)])
