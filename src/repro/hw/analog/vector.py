"""Vectorized mirrors of the A-Cell / component / array energy models.

Used by the explore engine's structure-of-arrays fast path
(:mod:`repro.explore.vector`): an eligible design is *lowered* once into
per-component energy kernels, each mapping a vector of delays (one
element per explored point) to a vector of energies.  Every kernel
replays the scalar model's exact floating-point operation sequence with
element-wise NumPy ops, so a lowered array produces per-element energies
bit-identical to :meth:`AnalogArray.energy_breakdown`.

Only the stock cell/component/array classes can be lowered — subclasses
may override ``energy``/``energy_per_access``/``energy_breakdown``
arbitrarily, so exact-type checks guard every level and raise
:class:`~repro.exceptions.VectorUnsupported`, which the explore engine
turns into a per-group fallback to the object path.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.exceptions import VectorUnsupported
from repro.hw.analog.adc_fom import walden_fom_batch
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.cells import DynamicCell, NonLinearCell, StaticCell
from repro.hw.analog.components import AnalogComponent

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None


def numpy_available() -> bool:
    """Whether the NumPy fast path can run at all."""
    return _np is not None


def _lower_cell(cell) -> Callable:
    """One cell's ``energy(per_fire_delay, per_fire_static)`` as a kernel.

    The kernel takes vectors (or design-constant scalars, which
    broadcast) and returns the per-firing energy per point.
    """
    cell_type = type(cell)
    if cell_type is DynamicCell:
        # Eq. 5: pure capacitor switching, independent of timing.
        constant = cell.energy(1.0, 0.0)
        return lambda per_fire_delay, per_fire_static: constant
    if cell_type is StaticCell:
        vdda = cell.vdda
        if cell.mode == StaticCell._DIRECT:
            charge = cell.load_capacitance * cell.voltage_swing
            def direct(per_fire_delay, per_fire_static):
                bias = charge / per_fire_delay
                return vdda * bias * per_fire_static
            return direct
        angular = 2.0 * math.pi * cell.load_capacitance
        gain = cell.gain
        gm_id = cell.gm_id
        def gm_id_biased(per_fire_delay, per_fire_static):
            bandwidth = 1.0 / per_fire_delay
            gbw = gain * bandwidth
            bias = angular * gbw / gm_id
            return vdda * bias * per_fire_static
        return gm_id_biased
    if cell_type is NonLinearCell:
        if cell.energy_per_conversion is not None:
            constant = cell.energy_per_conversion
            return lambda per_fire_delay, per_fire_static: constant
        scale = 2 ** cell.bits
        def adc(per_fire_delay, per_fire_static):
            return walden_fom_batch(1.0 / per_fire_delay) * scale
        return adc
    raise VectorUnsupported(
        f"cell {getattr(cell, 'name', cell)!r} has custom type "
        f"{cell_type.__name__}")


def lower_component(component: AnalogComponent) -> Callable:
    """``energy_per_access`` as a kernel over component-delay vectors."""
    if type(component) is not AnalogComponent:
        raise VectorUnsupported(
            f"component {getattr(component, 'name', component)!r} has "
            f"custom type {type(component).__name__}")
    plan = []
    critical_index = 0
    for usage in component.cell_usages:
        if usage.on_critical_path:
            index = critical_index
            critical_index += 1
        else:
            index = None
        plan.append((usage, index, _lower_cell(usage.cell)))
    num_slots = max(1, critical_index)

    def energy_per_access(component_delay):
        slot = component_delay / num_slots
        total = _np.zeros_like(component_delay)
        for usage, index, kernel in plan:
            if index is not None:
                elapsed_before = index * slot
                derived_static = component_delay - elapsed_before
                cell_delay = slot
            else:
                derived_static = component_delay
                cell_delay = component_delay
            static_time = (usage.static_time
                           if usage.static_time is not None
                           else derived_static)
            per_fire_delay = cell_delay / usage.temporal
            per_fire_static = static_time / usage.temporal
            per_fire = kernel(per_fire_delay, per_fire_static)
            total = total + per_fire * usage.access_count
        return total

    return energy_per_access


def lower_array(array: AnalogArray) -> Callable:
    """``energy_breakdown`` as a kernel over array-delay vectors."""
    if type(array) is not AnalogArray:
        raise VectorUnsupported(
            f"array {getattr(array, 'name', array)!r} has custom type "
            f"{type(array).__name__}")
    entries = array.components
    if not entries:
        raise VectorUnsupported(f"array {array.name!r} has no components")
    lowered = [(component.name, count, lower_component(component))
               for component, count in entries]

    def energy_breakdown(ops: float, array_delay) -> Dict[str, object]:
        breakdown: Dict[str, object] = {}
        for name, count, per_access in lowered:
            accesses_per_component = ops / count
            per_access_delay = array_delay / max(1.0, accesses_per_component)
            breakdown[name] = per_access(per_access_delay) * ops
        return breakdown

    return energy_breakdown
