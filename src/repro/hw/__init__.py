"""Hardware description layer: analog arrays, digital units, layers, interfaces."""

from repro.hw.layer import Layer, SENSOR_LAYER, COMPUTE_LAYER, OFF_CHIP
from repro.hw.interface import MIPI_CSI2, MicroTSV, Interface

__all__ = [
    "Layer",
    "SENSOR_LAYER",
    "COMPUTE_LAYER",
    "OFF_CHIP",
    "Interface",
    "MIPI_CSI2",
    "MicroTSV",
]
