"""Layers of a (possibly 3D-stacked) sensor system.

A conventional 2D CIS has a single layer holding both the pixel array and
any processing; a stacked design separates the pixel layer from one or more
compute layers fabricated in more advanced nodes (Fig. 2d).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: Conventional layer names used throughout the framework and examples.
SENSOR_LAYER = "sensor"
COMPUTE_LAYER = "compute"
OFF_CHIP = "off_chip"


@dataclass(frozen=True)
class Layer:
    """One die in the sensor stack.

    Parameters
    ----------
    name:
        Layer identifier referenced by hardware units (e.g. ``"sensor"``).
    node_nm:
        Process node the layer is fabricated in.
    """

    name: str
    node_nm: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("layer needs a non-empty name")
        if self.node_nm <= 0:
            raise ConfigurationError(
                f"layer {self.name!r}: node must be positive, "
                f"got {self.node_nm}")
