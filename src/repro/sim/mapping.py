"""The algorithm-to-hardware mapping (the ``camj_mapping`` of Fig. 5).

Decoupling the mapping from both descriptions is what lets one re-map an
algorithm across analog/digital or in/off-sensor boundaries without
touching either side — the central workflow of the Sec. 6 explorations.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import MappingError
from repro.hw.analog.array import AnalogArray
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.sw.dag import StageGraph
from repro.sw.stage import PixelInput, Stage


class Mapping:
    """A stage-name to hardware-unit-name dictionary with validation."""

    def __init__(self, assignments: Dict[str, str]):
        if not assignments:
            raise MappingError("mapping needs at least one assignment")
        for stage_name, unit_name in assignments.items():
            if not stage_name or not unit_name:
                raise MappingError(
                    f"mapping entries need non-empty names, got "
                    f"{stage_name!r} -> {unit_name!r}")
        self.assignments = dict(assignments)

    def unit_name_for(self, stage_name: str) -> str:
        """Hardware unit name a stage is mapped to."""
        if stage_name not in self.assignments:
            raise MappingError(f"stage {stage_name!r} is not mapped")
        return self.assignments[stage_name]

    def stages_on(self, unit_name: str) -> List[str]:
        """Stage names mapped to one hardware unit (hardware reuse)."""
        return [stage for stage, unit in self.assignments.items()
                if unit == unit_name]

    def validate(self, graph: StageGraph, system: SensorSystem) -> None:
        """Check completeness and target validity against both descriptions.

        * every stage in the graph must be mapped;
        * every mapped stage must exist in the graph;
        * every target unit must exist in the system;
        * a :class:`PixelInput` must map to an analog array (pixels
          originate in the analog domain);
        * compute stages must map to analog arrays or compute units, never
          to bare memories.
        """
        graph_names = {stage.name for stage in graph.topological_order}
        mapped_names = set(self.assignments)
        missing = graph_names - mapped_names
        if missing:
            raise MappingError(
                f"unmapped stages: {sorted(missing)}")
        unknown = mapped_names - graph_names
        if unknown:
            raise MappingError(
                f"mapping references unknown stages: {sorted(unknown)}")
        for stage_name, unit_name in self.assignments.items():
            unit = system.find_unit(unit_name)  # raises if absent
            stage = graph.get(stage_name)
            if isinstance(stage, PixelInput):
                if not isinstance(unit, AnalogArray):
                    raise MappingError(
                        f"pixel input {stage_name!r} must map to an analog "
                        f"array, got {type(unit).__name__} {unit_name!r}")
            elif not isinstance(unit, (AnalogArray, ComputeUnit)):
                raise MappingError(
                    f"stage {stage_name!r} must map to an analog array or "
                    f"compute unit, got {type(unit).__name__} {unit_name!r}")

    def resolve(self, graph: StageGraph, system: SensorSystem,
                validate: bool = True) -> Dict[str, object]:
        """Stage name to hardware unit object, post-validation.

        Callers that already validated this mapping against the same
        ``(graph, system)`` pair (e.g. :class:`repro.api.Design` at
        construction time) pass ``validate=False`` to skip the redundant
        re-walk on every simulation run.
        """
        if validate:
            self.validate(graph, system)
        return {stage_name: system.find_unit(unit_name)
                for stage_name, unit_name in self.assignments.items()}
