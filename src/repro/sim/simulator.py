"""The top-level CamJ simulation entry point (Fig. 4).

:func:`_simulate_graph` is the engine that ties the framework together:
DAG validation, mapping resolution, pre-simulation design checks,
cycle-level digital simulation, frame-rate-driven delay inference, and
the three energy models, producing a component-level
:class:`repro.energy.report.EnergyReport`.

The engine is organized as explicit *passes* (:data:`SIM_PASSES`), each
declaring which inputs it reads.  Passes that read only the design —
mapping resolution, the design checks, the digital timeline, the
cycle-accurate latency, the analog usage walk, and the communication
energy — are memoized in a :class:`PassMemo`, so re-running one design
under different :class:`~repro.api.result.SimOptions` (a frame-rate or
exposure-slot sweep) recomputes only the option-dependent passes.
:class:`~repro.api.Simulator` shares one memo per design content hash
across a whole session; :func:`_simulate_graph_monolithic` keeps the
pre-split single-body engine as the equivalence-test reference.

:func:`simulate` is the thin functional wrapper kept for backward
compatibility; new code should prefer the session API
(:class:`repro.api.Simulator` over :class:`repro.api.Design`), which
adds structured results, caching, and parallel batch execution on top
of the same engine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.energy.analog_model import analog_energy, analog_usage
from repro.energy.comm_model import communication_energy
from repro.energy.digital_model import digital_energy
from repro.energy.report import EnergyReport
from repro.hw.chip import SensorSystem
from repro.sim.checks import run_pre_simulation_checks
from repro.sim.cycle_sim import cycle_accurate_latency, simulate_digital
from repro.sim.delay import estimate_frame_timing
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import Stage


@dataclass(frozen=True)
class SimPass:
    """One engine pass and the inputs it reads.

    ``reads`` names the pass's inputs: ``"design"`` (the graph, system,
    mapping, and everything derived from them) and/or individual
    ``"options.<field>"`` entries.  A pass whose every input is the
    design is safe to memoize per design and reuse across options.
    """

    name: str
    reads: Tuple[str, ...]

    @property
    def design_only(self) -> bool:
        """Whether the pass reads nothing but the design."""
        return all(read == "design" or read.startswith("design.")
                   for read in self.reads)


#: The engine's passes, in execution order.  ``resolve`` through
#: ``comm_energy`` with ``design``-only reads are memoized per design;
#: the option-dependent passes run once per distinct options value.
SIM_PASSES: Tuple[SimPass, ...] = (
    SimPass("resolve", reads=("design",)),
    SimPass("checks", reads=("design",)),
    SimPass("timeline", reads=("design",)),
    SimPass("cycle_sim", reads=("design",)),
    SimPass("analog_usage", reads=("design",)),
    SimPass("timing", reads=("design", "options.frame_rate",
                             "options.exposure_slots",
                             "options.cycle_accurate")),
    SimPass("analog_energy", reads=("design", "options.frame_rate",
                                    "options.exposure_slots",
                                    "options.cycle_accurate")),
    SimPass("digital_energy", reads=("design", "options.frame_rate",
                                     "options.exposure_slots",
                                     "options.cycle_accurate")),
    SimPass("comm_energy", reads=("design",)),
)

_PASS_BY_NAME: Dict[str, SimPass] = {spec.name: spec for spec in SIM_PASSES}


class PassCounters:
    """Thread-safe per-pass execution counters of one session.

    Memoized passes count only their *actual* runs — a frame-rate sweep
    over one design notes ``timeline`` once and ``timing`` once per
    rate, which is exactly the incremental-simulation claim tests
    assert.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._runs: Dict[str, int] = {}

    def note(self, name: str) -> None:
        """Record one execution of pass ``name``."""
        with self._lock:
            self._runs[name] = self._runs.get(name, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        """Copy of the per-pass run counts."""
        with self._lock:
            return dict(self._runs)


class PassMemo:
    """Memoized design-only pass outputs for one design.

    One memo belongs to one design (identity or content hash — the
    session API shares a single memo across every design with the same
    content hash).  ``get_or_run`` is serialized per memo, so two
    concurrent sweeps over the same design compute each design-only
    pass exactly once and share the result; failures propagate without
    being cached, matching the pre-split behavior.
    """

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, Any] = {}

    def get_or_run(self, name: str, compute: Callable[[], Any],
                   counters: Optional[PassCounters]) -> Any:
        value = self._values.get(name)
        if value is not None:
            return value
        with self._lock:
            value = self._values.get(name)
            if value is None:
                if counters is not None:
                    counters.note(name)
                value = compute()
                self._values[name] = value
        return value

    def known_passes(self) -> Tuple[str, ...]:
        """Names of the passes already memoized (for tests/inspection)."""
        with self._lock:
            return tuple(sorted(self._values))


def _run_pass(name: str, memo: Optional[PassMemo],
              counters: Optional[PassCounters],
              compute: Callable[[], Any]) -> Any:
    """Run one declared pass, memoizing it iff it reads only the design."""
    spec = _PASS_BY_NAME[name]
    if memo is not None and spec.design_only:
        return memo.get_or_run(name, compute, counters)
    if counters is not None:
        counters.note(name)
    return compute()


def _simulate_graph(graph: StageGraph, system: SensorSystem,
                    mapping: Mapping, frame_rate: float,
                    exposure_slots: int = 1,
                    cycle_accurate: bool = False,
                    skip_checks: bool = False,
                    mapping_validated: bool = False,
                    resolved: Optional[Dict[str, object]] = None,
                    memo: Optional[PassMemo] = None,
                    counters: Optional[PassCounters] = None
                    ) -> EnergyReport:
    """The simulation engine over already-normalized design objects.

    ``mapping_validated`` lets callers that validated at construction
    time (:class:`repro.api.Design`) skip re-validating per run, and
    ``resolved`` lets them hand in a cached ``mapping.resolve`` result.
    ``memo`` carries the design-only pass outputs (:data:`SIM_PASSES`)
    between runs of the same design — a caller sweeping options over one
    design passes the same memo each time and pays for the timeline,
    the analog usage walk, the cycle-accurate latency, and the
    communication energy exactly once.  ``counters`` (if given) records
    which passes actually executed.  With neither, every call behaves
    like the pre-split monolithic engine
    (:func:`_simulate_graph_monolithic`), producing bit-identical
    reports.
    """
    if not mapping_validated:
        mapping.validate(graph, system)
    memo = memo if memo is not None else PassMemo()
    if resolved is None:
        resolved = _run_pass(
            "resolve", memo, counters,
            lambda: mapping.resolve(graph, system, validate=False))
    local_resolved = resolved
    if not skip_checks:
        def _checks() -> bool:
            run_pre_simulation_checks(graph, system, mapping,
                                      resolved=local_resolved)
            return True
        _run_pass("checks", memo, counters, _checks)

    timeline = _run_pass(
        "timeline", memo, counters,
        lambda: simulate_digital(graph, system, mapping, resolved=resolved))
    digital_latency = timeline.total_latency
    if cycle_accurate:
        digital_latency = _run_pass(
            "cycle_sim", memo, counters,
            lambda: cycle_accurate_latency(graph, system, mapping,
                                           resolved=resolved))

    participating = _run_pass(
        "analog_usage", memo, counters,
        lambda: analog_usage(graph, system, mapping, resolved=resolved))
    timing = _run_pass(
        "timing", memo, counters,
        lambda: estimate_frame_timing(
            frame_rate=frame_rate,
            digital_latency=digital_latency,
            num_analog_arrays=len(participating),
            exposure_slots=exposure_slots))

    report = EnergyReport(
        system_name=system.name,
        frame_rate=frame_rate,
        frame_time=timing.frame_time,
        digital_latency=digital_latency,
        analog_stage_delay=timing.analog_stage_delay)
    report.extend(_run_pass(
        "analog_energy", memo, counters,
        lambda: analog_energy(graph, system, mapping,
                              timing.analog_stage_delay,
                              resolved=resolved)))
    report.extend(_run_pass(
        "digital_energy", memo, counters,
        lambda: digital_energy(system, timeline, timing.frame_time)))
    report.extend(_run_pass(
        "comm_energy", memo, counters,
        lambda: communication_energy(graph, system, mapping,
                                     resolved=resolved)))
    return report


def _simulate_graph_monolithic(graph: StageGraph, system: SensorSystem,
                               mapping: Mapping, frame_rate: float,
                               exposure_slots: int = 1,
                               cycle_accurate: bool = False,
                               skip_checks: bool = False,
                               mapping_validated: bool = False,
                               resolved: Optional[Dict[str, object]] = None
                               ) -> EnergyReport:
    """The pre-split single-body engine, kept as the equivalence oracle.

    Ground truth for the pass-level engine: tests assert that
    :func:`_simulate_graph` — memoized or not — produces bit-identical
    :class:`EnergyReport` payloads to this body for every option
    combination.  Not used on any production path.
    """
    if not mapping_validated:
        mapping.validate(graph, system)
    if resolved is None:
        resolved = mapping.resolve(graph, system, validate=False)
    if not skip_checks:
        run_pre_simulation_checks(graph, system, mapping, resolved=resolved)

    timeline = simulate_digital(graph, system, mapping, resolved=resolved)
    digital_latency = timeline.total_latency
    if cycle_accurate:
        digital_latency = cycle_accurate_latency(graph, system, mapping,
                                                 resolved=resolved)

    participating = analog_usage(graph, system, mapping, resolved=resolved)
    timing = estimate_frame_timing(
        frame_rate=frame_rate,
        digital_latency=digital_latency,
        num_analog_arrays=len(participating),
        exposure_slots=exposure_slots)

    report = EnergyReport(
        system_name=system.name,
        frame_rate=frame_rate,
        frame_time=timing.frame_time,
        digital_latency=digital_latency,
        analog_stage_delay=timing.analog_stage_delay)
    report.extend(analog_energy(graph, system, mapping,
                                timing.analog_stage_delay,
                                resolved=resolved))
    report.extend(digital_energy(system, timeline, timing.frame_time))
    report.extend(communication_energy(graph, system, mapping,
                                       resolved=resolved))
    return report


def simulate(stages: Union[StageGraph, Sequence[Stage]],
             system: SensorSystem,
             mapping: Union[Mapping, Dict[str, str]],
             frame_rate: float,
             exposure_slots: int = 1,
             cycle_accurate: bool = False,
             skip_checks: bool = False) -> EnergyReport:
    """Estimate the per-frame energy of ``system`` running ``stages``.

    Back-compat wrapper: normalizes the loose argument triple and runs
    the engine once.  Equivalent to
    ``Simulator(SimOptions(...)).run(Design(stages, system, mapping)).unwrap()``.

    Parameters
    ----------
    stages:
        A :class:`StageGraph` or the plain stage list of ``camj_sw_config``.
    system:
        The hardware description.
    mapping:
        A :class:`Mapping` or the plain dict of ``camj_mapping``.
    frame_rate:
        The FPS target the analog delays are inferred from (Sec. 4.1).
    exposure_slots:
        Analog pipeline slots the exposure phase occupies (Fig. 6 uses 1).
    cycle_accurate:
        Use the event-driven per-cycle simulator for the digital latency
        instead of the analytical timeline (slower; uniform clock only).
    skip_checks:
        Skip the pre-simulation design checks (expert escape hatch).

    Returns
    -------
    EnergyReport
        Component-level energy entries plus the inferred timing facts.
    """
    graph = stages if isinstance(stages, StageGraph) else StageGraph(stages)
    mapping = mapping if isinstance(mapping, Mapping) else Mapping(mapping)
    return _simulate_graph(graph, system, mapping, frame_rate=frame_rate,
                           exposure_slots=exposure_slots,
                           cycle_accurate=cycle_accurate,
                           skip_checks=skip_checks)
