"""The top-level CamJ simulation entry point (Fig. 4).

:func:`_simulate_graph` is the engine that ties the framework together:
DAG validation, mapping resolution, pre-simulation design checks,
cycle-level digital simulation, frame-rate-driven delay inference, and
the three energy models, producing a component-level
:class:`repro.energy.report.EnergyReport`.

:func:`simulate` is the thin functional wrapper kept for backward
compatibility; new code should prefer the session API
(:class:`repro.api.Simulator` over :class:`repro.api.Design`), which
adds structured results, caching, and parallel batch execution on top
of the same engine.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.energy.analog_model import analog_energy, analog_usage
from repro.energy.comm_model import communication_energy
from repro.energy.digital_model import digital_energy
from repro.energy.report import EnergyReport
from repro.hw.chip import SensorSystem
from repro.sim.checks import run_pre_simulation_checks
from repro.sim.cycle_sim import cycle_accurate_latency, simulate_digital
from repro.sim.delay import estimate_frame_timing
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import Stage


def _simulate_graph(graph: StageGraph, system: SensorSystem,
                    mapping: Mapping, frame_rate: float,
                    exposure_slots: int = 1,
                    cycle_accurate: bool = False,
                    skip_checks: bool = False,
                    mapping_validated: bool = False,
                    resolved: Optional[Dict[str, object]] = None
                    ) -> EnergyReport:
    """The simulation engine over already-normalized design objects.

    ``mapping_validated`` lets callers that validated at construction
    time (:class:`repro.api.Design`) skip re-validating per run, and
    ``resolved`` lets them hand in a cached ``mapping.resolve`` result.
    The mapping is resolved exactly once here and threaded through every
    phase — checks, the digital timeline, the cycle-accurate validator,
    and the three energy models.
    """
    if not mapping_validated:
        mapping.validate(graph, system)
    if resolved is None:
        resolved = mapping.resolve(graph, system, validate=False)
    if not skip_checks:
        run_pre_simulation_checks(graph, system, mapping, resolved=resolved)

    timeline = simulate_digital(graph, system, mapping, resolved=resolved)
    digital_latency = timeline.total_latency
    if cycle_accurate:
        digital_latency = cycle_accurate_latency(graph, system, mapping,
                                                 resolved=resolved)

    participating = analog_usage(graph, system, mapping, resolved=resolved)
    timing = estimate_frame_timing(
        frame_rate=frame_rate,
        digital_latency=digital_latency,
        num_analog_arrays=len(participating),
        exposure_slots=exposure_slots)

    report = EnergyReport(
        system_name=system.name,
        frame_rate=frame_rate,
        frame_time=timing.frame_time,
        digital_latency=digital_latency,
        analog_stage_delay=timing.analog_stage_delay)
    report.extend(analog_energy(graph, system, mapping,
                                timing.analog_stage_delay,
                                resolved=resolved))
    report.extend(digital_energy(system, timeline, timing.frame_time))
    report.extend(communication_energy(graph, system, mapping,
                                       resolved=resolved))
    return report


def simulate(stages: Union[StageGraph, Sequence[Stage]],
             system: SensorSystem,
             mapping: Union[Mapping, Dict[str, str]],
             frame_rate: float,
             exposure_slots: int = 1,
             cycle_accurate: bool = False,
             skip_checks: bool = False) -> EnergyReport:
    """Estimate the per-frame energy of ``system`` running ``stages``.

    Back-compat wrapper: normalizes the loose argument triple and runs
    the engine once.  Equivalent to
    ``Simulator(SimOptions(...)).run(Design(stages, system, mapping)).unwrap()``.

    Parameters
    ----------
    stages:
        A :class:`StageGraph` or the plain stage list of ``camj_sw_config``.
    system:
        The hardware description.
    mapping:
        A :class:`Mapping` or the plain dict of ``camj_mapping``.
    frame_rate:
        The FPS target the analog delays are inferred from (Sec. 4.1).
    exposure_slots:
        Analog pipeline slots the exposure phase occupies (Fig. 6 uses 1).
    cycle_accurate:
        Use the event-driven per-cycle simulator for the digital latency
        instead of the analytical timeline (slower; uniform clock only).
    skip_checks:
        Skip the pre-simulation design checks (expert escape hatch).

    Returns
    -------
    EnergyReport
        Component-level energy entries plus the inferred timing facts.
    """
    graph = stages if isinstance(stages, StageGraph) else StageGraph(stages)
    mapping = mapping if isinstance(mapping, Mapping) else Mapping(mapping)
    return _simulate_graph(graph, system, mapping, frame_rate=frame_rate,
                           exposure_slots=exposure_slots,
                           cycle_accurate=cycle_accurate,
                           skip_checks=skip_checks)
