"""Simulation layer: mapping, checks, cycle simulation, delays, simulate()."""

from repro.sim.mapping import Mapping
from repro.sim.delay import FrameTiming, estimate_frame_timing
from repro.sim.simulator import simulate
from repro.sim.cycle_sim import DigitalTimeline, simulate_digital
from repro.sim.checks import run_pre_simulation_checks

__all__ = [
    "Mapping",
    "FrameTiming",
    "estimate_frame_timing",
    "simulate",
    "DigitalTimeline",
    "simulate_digital",
    "run_pre_simulation_checks",
]
