"""Cycle-level simulation of the digital domain (Sec. 3.3, Sec. 4.1).

Three simulation levels are provided:

* :func:`simulate_digital` — the default analytical timeline.  Stencil
  regularity makes cycle counts closed-form: a pipelined unit producing
  ``N`` outputs at ``k`` outputs/cycle runs ``N/k + depth - 1`` cycles, and
  streaming consumers start once the producer has filled the minimum
  window (one line-buffer row group, a full double buffer, ...).  This is
  what the energy model and delay estimator consume.

* :func:`cycle_accurate_latency` — an event-driven, skip-ahead simulator
  used to validate the analytical model and to detect the three stall
  scenarios of Sec. 4.1 exactly (missing producer data, full memory,
  insufficient ports).  Instead of stepping every cycle, it simulates one
  cycle exactly, computes how many subsequent cycles every stage provably
  repeats the same behavior (issue, deliver, or stay blocked), and jumps
  all stages forward in one batch — O(state transitions) work instead of
  O(cycles x stages x pipeline depth), with identical cycle counts.

* :func:`_cycle_accurate_reference` — the original per-cycle loop, kept
  as the ground truth the event-driven simulator is verified against
  (see ``tests/test_cycle_sim_equivalence.py`` and
  ``benchmarks/bench_cycle_sim.py``), and as the fallback for the rare
  configurations whose bookkeeping is not exactly representable
  (fractional per-port pixel shares or fractional memory capacities).

All levels report the digital-domain latency ``T_D`` that the analog delay
estimation needs (Fig. 6) plus per-memory access counts for Eq. 16.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SimulationError, StallError
from repro.hw.analog.array import AnalogArray
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit, SystolicArray
from repro.hw.digital.memory import DigitalMemory, DoubleBuffer, LineBuffer
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import DNNProcessStage, ProcessStage, Stage


@dataclass
class UnitActivity:
    """One digital stage executing on one compute unit."""

    unit_name: str
    stage_name: str
    cycles: float
    start: float
    duration: float
    energy: float

    @property
    def finish(self) -> float:
        """Wall-clock completion time within the frame."""
        return self.start + self.duration


@dataclass
class DigitalTimeline:
    """Result of the digital-domain simulation."""

    activities: List[UnitActivity] = field(default_factory=list)
    memory_reads: Dict[str, float] = field(default_factory=dict)
    memory_writes: Dict[str, float] = field(default_factory=dict)
    #: Memory name -> name of the first stage reading it (stage attribution).
    memory_stage: Dict[str, str] = field(default_factory=dict)
    #: Lazily-built stage-name index over ``activities`` (first wins).
    _by_stage: Dict[str, UnitActivity] = field(
        default_factory=dict, repr=False, compare=False)
    _indexed_count: int = field(default=0, repr=False, compare=False)

    @property
    def total_latency(self) -> float:
        """``T_D``: makespan of the digital domain within one frame."""
        if not self.activities:
            return 0.0
        return max(a.finish for a in self.activities)

    def activity_for(self, stage_name: str) -> UnitActivity:
        """Activity record of one stage (dict lookup, not a list scan)."""
        if self._indexed_count != len(self.activities):
            # Rebuild on growth so externally-appended activities are seen;
            # setdefault keeps the first record per stage, like the old scan.
            self._by_stage.clear()
            for activity in self.activities:
                self._by_stage.setdefault(activity.stage_name, activity)
            self._indexed_count = len(self.activities)
        activity = self._by_stage.get(stage_name)
        if activity is None:
            raise SimulationError(f"no digital activity for stage {stage_name!r}")
        return activity


def _fill_fraction(producer: Stage, consumer: Stage,
                   memory: Optional[DigitalMemory]) -> float:
    """Fraction of the producer's output the consumer must wait for.

    * double buffer: the consumer works on the previous buffer — it starts
      only after the producer fills a full buffer (fraction 1);
    * line buffer: the consumer starts once ``kernel_rows - 1`` input rows
      plus one pixel are buffered (Fig. 6's "after the second line");
    * FIFO or direct hand-off: one producer output group suffices.
    """
    if isinstance(memory, DoubleBuffer):
        return 1.0
    if isinstance(memory, LineBuffer) and isinstance(consumer, ProcessStage):
        rows = producer.output_size[0]
        kernel_rows = consumer.kernel[0]
        return min(1.0, max(kernel_rows - 1, 1) / rows)
    rows = producer.output_size[0]
    return 1.0 / max(1, rows)


def _connecting_memory(producer_unit, consumer_unit
                       ) -> Optional[DigitalMemory]:
    """The memory structure through which two units hand data off."""
    if isinstance(consumer_unit, ComputeUnit):
        consumer_memories = consumer_unit.input_memories
    else:
        return None
    if isinstance(producer_unit, ComputeUnit):
        producer_out = ([producer_unit.output_memory]
                        if producer_unit.output_memory else [])
    elif isinstance(producer_unit, AnalogArray):
        producer_out = producer_unit.output_memories
    else:
        producer_out = []
    for memory in consumer_memories:
        if memory in producer_out:
            return memory
    if consumer_memories:
        return consumer_memories[0]
    return None


def _stage_cycles(stage: Stage, unit: ComputeUnit) -> float:
    """Active cycle count of one stage on one unit."""
    if isinstance(unit, SystolicArray) and isinstance(stage, DNNProcessStage):
        return unit.cycles_for_macs(stage.num_macs)
    return unit.active_cycles(stage.output_pixels)


def _stage_energy(stage: Stage, unit: ComputeUnit, cycles: float) -> float:
    """Compute energy of one stage on one unit (Eq. 15)."""
    if isinstance(unit, SystolicArray) and isinstance(stage, DNNProcessStage):
        return unit.energy_for_macs(stage.num_macs)
    return cycles * unit.energy_per_cycle


def simulate_digital(graph: StageGraph, system: SensorSystem,
                     mapping: Mapping, *,
                     resolved: Optional[Dict[str, object]] = None
                     ) -> DigitalTimeline:
    """Analytical digital-domain timeline with memory access counts.

    ``resolved`` lets the engine thread one ``mapping.resolve`` result
    through every consumer instead of re-resolving per phase.
    """
    if resolved is None:
        resolved = mapping.resolve(graph, system)
    timeline = DigitalTimeline()
    unit_free: Dict[str, float] = {}
    stage_activity: Dict[str, UnitActivity] = {}

    for stage in graph.topological_order:
        unit = resolved[stage.name]
        if not isinstance(unit, ComputeUnit):
            continue
        cycles = _stage_cycles(stage, unit)
        duration = cycles * unit.cycle_time
        energy = _stage_energy(stage, unit, cycles)

        start = unit_free.get(unit.name, 0.0)
        for producer in stage.input_stages:
            producer_unit = resolved[producer.name]
            if not isinstance(producer_unit, ComputeUnit):
                continue  # analog feed adapts to the digital schedule
            producer_activity = stage_activity.get(producer.name)
            if producer_activity is None:
                continue
            memory = _connecting_memory(producer_unit, unit)
            fraction = _fill_fraction(producer, stage, memory)
            earliest = (producer_activity.start
                        + fraction * producer_activity.duration)
            start = max(start, earliest)

        activity = UnitActivity(unit_name=unit.name, stage_name=stage.name,
                                cycles=cycles, start=start,
                                duration=duration, energy=energy)
        timeline.activities.append(activity)
        stage_activity[stage.name] = activity
        unit_free[unit.name] = activity.finish

        _count_memory_accesses(timeline, graph, resolved, stage, unit, cycles)

    _count_analog_feed_writes(timeline, graph, resolved)
    return timeline


def _count_memory_accesses(timeline: DigitalTimeline, graph: StageGraph,
                           resolved: Dict[str, object], stage: Stage,
                           unit: ComputeUnit, cycles: float) -> None:
    """Reads by this stage and writes of its output (Eq. 16 inputs)."""
    steady_cycles = max(0.0, cycles - (unit.num_stages - 1))
    shapes = unit.input_pixels_per_cycle
    seen: List[DigitalMemory] = []
    for index, memory in enumerate(unit.input_memories):
        if memory in seen:
            continue
        seen.append(memory)
        shape = shapes[min(index, len(shapes) - 1)]
        pixels = steady_cycles * _volume(shape)
        timeline.memory_reads[memory.name] = (
            timeline.memory_reads.get(memory.name, 0.0) + pixels)
        timeline.memory_stage.setdefault(memory.name, stage.name)
    if unit.output_memory is not None:
        timeline.memory_writes[unit.output_memory.name] = (
            timeline.memory_writes.get(unit.output_memory.name, 0.0)
            + stage.output_pixels)


def _count_analog_feed_writes(timeline: DigitalTimeline, graph: StageGraph,
                              resolved: Dict[str, object]) -> None:
    """Writes into digital memories performed by the analog front-end."""
    for producer, consumer in graph.edges():
        producer_unit = resolved[producer.name]
        consumer_unit = resolved[consumer.name]
        if not isinstance(producer_unit, AnalogArray):
            continue
        if not isinstance(consumer_unit, ComputeUnit):
            continue
        memory = _connecting_memory(producer_unit, consumer_unit)
        if memory is None:
            continue
        timeline.memory_writes[memory.name] = (
            timeline.memory_writes.get(memory.name, 0.0)
            + producer.output_pixels)


def _volume(shape) -> int:
    product = 1
    for value in shape:
        product *= value
    return product


# --- cycle-accurate validation simulator -------------------------------------


@dataclass
class _PipelineState:
    """Per-stage bookkeeping of the reference per-cycle simulator."""

    stage: Stage
    unit: ComputeUnit
    consumed: float = 0.0
    produced: float = 0.0
    pending: deque = field(default_factory=deque)

    @property
    def input_target(self) -> float:
        """Total pixels the stage must consume."""
        return _stage_input_target(self.stage, self.unit)

    @property
    def done(self) -> bool:
        """Whether the stage produced its full frame output."""
        return self.produced >= self.stage.output_pixels and not self.pending


def _stage_input_target(stage: Stage, unit: ComputeUnit) -> float:
    """Total pixels a stage must consume — the one rule both simulators use."""
    if isinstance(unit, SystolicArray) and isinstance(stage, DNNProcessStage):
        cycles = unit.cycles_for_macs(stage.num_macs)
        return cycles * unit.input_throughput
    cycles = unit.active_cycles(stage.output_pixels)
    steady = max(0.0, cycles - (unit.num_stages - 1))
    return steady * unit.input_throughput


def _analog_fed_memories(graph: StageGraph, resolved: Dict[str, object]
                         ) -> set:
    """Memories written by the analog front-end: modeled as always ready."""
    fed = set()
    for producer, consumer in graph.edges():
        producer_unit = resolved[producer.name]
        consumer_unit = resolved[consumer.name]
        if isinstance(producer_unit, AnalogArray) and isinstance(
                consumer_unit, ComputeUnit):
            memory = _connecting_memory(producer_unit, consumer_unit)
            if memory is not None:
                fed.add(memory.name)
    return fed


# --- event-driven skip-ahead simulator ---------------------------------------


class _EventState:
    """Per-stage bookkeeping of the event-driven simulator.

    ``runs`` replaces the reference deque of per-entry ages: each run
    ``[next_deliver_cycle, count]`` stands for ``count`` in-flight pipeline
    entries maturing on consecutive cycles, so a steady streaming stage is
    one run however deep the pipeline — aging is free and batch delivery
    is O(1).
    """

    __slots__ = ("stage", "unit", "need", "inc", "thresh", "input_target",
                 "out_px", "out_thr", "ns", "gated_mems", "out_mem",
                 "out_cap", "consumed", "produced", "runs", "issued",
                 "delivered")

    def __init__(self, stage: Stage, unit: ComputeUnit, analog_fed: set):
        self.stage = stage
        self.unit = unit
        self.need = unit.input_throughput
        self.inc = max(1, self.need)
        self.thresh = self.need / max(1, len(unit.input_memories))
        self.input_target = _stage_input_target(stage, unit)
        self.out_px = stage.output_pixels
        self.out_thr = unit.output_throughput
        self.ns = unit.num_stages
        # Availability/decrement list in unit order; analog-fed memories
        # are modeled as always ready and are never drained.
        self.gated_mems = [m.name for m in unit.input_memories
                          if m.name not in analog_fed]
        out = unit.output_memory
        self.out_mem = out.name if out is not None else None
        self.out_cap = out.capacity_pixels if out is not None else 0.0
        self.consumed = 0.0
        self.produced = 0.0
        self.runs: deque = deque()
        # Action pattern of the most recent exactly-simulated cycle.
        self.issued = False
        self.delivered: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.produced >= self.out_px and not self.runs

    def exactly_representable(self) -> bool:
        """Whether skip-ahead arithmetic is exact for this stage.

        Occupancies evolve by ``thresh`` decrements and integer pixel
        increments; when those (and the output capacity) are integral,
        batched ``k * delta`` updates are bit-identical to ``k``
        sequential float updates, so jumps cannot diverge from the
        reference loop.
        """
        if self.gated_mems and not float(self.thresh).is_integer():
            return False
        if self.out_mem is not None and not float(self.out_cap).is_integer():
            return False
        return True


def _build_event_states(graph: StageGraph, resolved: Dict[str, object],
                        analog_fed: set
                        ) -> Tuple[List["_EventState"], Optional[float]]:
    """Digital stage states in topological order + the uniform clock."""
    states: List[_EventState] = []
    clock = None
    for stage in graph.topological_order:
        unit = resolved[stage.name]
        if not isinstance(unit, ComputeUnit):
            continue
        if clock is None:
            clock = unit.clock_hz
        elif abs(clock - unit.clock_hz) > 1e-6:
            raise SimulationError(
                "cycle-accurate simulation requires a uniform digital clock")
        states.append(_EventState(stage, unit, analog_fed))
    return states, clock


def _precheck_ports(states: List["_EventState"]) -> None:
    """Raise the per-issue port-limit stall up front (it is config-static).

    The reference loop re-evaluates this on every issue attempt; the
    condition depends only on the configuration, so checking each stage
    that will ever attempt an issue (``input_target > 0``), in state
    order, raises the identical error.
    """
    for st in states:
        if not st.consumed < st.input_target:
            continue
        unit = st.unit
        need = st.need
        for memory in unit.input_memories:
            max_words = memory.num_read_ports
            if need > max_words * memory.pixels_per_read_word * len(
                    unit.input_memories):
                raise StallError(
                    f"memory {memory.name!r} has too few read ports for unit "
                    f"{unit.name!r} ({need} pixels/cycle needed)")


def _event_cycle(states: List["_EventState"], occupancy: Dict[str, float],
                 cycle: int) -> bool:
    """Simulate one cycle exactly; record each stage's action pattern.

    Mirrors the reference loop: all stages attempt to issue (in
    topological order, mutating occupancy as they go), then all pipeline
    entries age and matured outputs deliver.
    """
    progressed = False
    for st in states:
        st.issued = False
        if st.consumed < st.input_target:
            ok = True
            for name in st.gated_mems:
                if occupancy[name] < st.thresh:
                    ok = False
                    break
            if ok and st.out_mem is not None:
                if st.out_cap - occupancy[st.out_mem] < st.out_thr:
                    ok = False
            if ok:
                for name in st.gated_mems:
                    occupancy[name] -= st.thresh
                st.consumed += st.inc
                deliver_at = cycle + st.ns - 1
                runs = st.runs
                if runs and runs[-1][0] + runs[-1][1] == deliver_at:
                    runs[-1][1] += 1
                else:
                    runs.append([deliver_at, 1])
                st.issued = True
                progressed = True
    for st in states:
        st.delivered = None
        runs = st.runs
        if runs and runs[0][0] <= cycle:
            head = runs[0]
            head[0] += 1
            head[1] -= 1
            if not head[1]:
                runs.popleft()
            amount = min(st.out_thr, st.out_px - st.produced)
            st.produced += amount
            if st.out_mem is not None and amount > 0:
                occupancy[st.out_mem] += amount
            st.delivered = amount
            progressed = True
    return progressed


def _prefix_bound(predicate, estimate: float) -> int:
    """Largest ``j >= 0`` with ``predicate(i)`` true for all ``1 <= i <= j``.

    ``predicate`` must hold on a prefix (linear state evolution makes
    every jump condition monotone); ``estimate`` is a closed-form guess
    that is corrected downward by direct evaluation, so a jump can never
    overshoot a state transition.
    """
    j = int(estimate)
    if j < 0:
        return 0
    while j > 0 and not predicate(j):
        j -= 1
    return j


def _plan_jump(states: List["_EventState"], occupancy: Dict[str, float],
               cycle: int, cap: int) -> int:
    """Max additional cycles every stage provably repeats its last action.

    ``cycle`` is the exactly-simulated cycle; the jump would cover
    ``cycle+1 .. cycle+k``.  Works on the recorded action pattern: each
    stage either keeps issuing (until its input target, a drained input,
    or a filled output bounds it), keeps delivering (until its pipeline
    run gaps or its final partial output), or stays blocked (until the
    occupancy trend lifts the failing condition).  All quantities evolve
    linearly under a fixed pattern, so each bound is closed-form.
    """
    # Net per-cycle occupancy drift of the recorded pattern.
    rate: Dict[str, float] = {}
    for st in states:
        if st.issued:
            for name in st.gated_mems:
                rate[name] = rate.get(name, 0.0) - st.thresh
        if st.delivered is not None and st.out_mem is not None:
            rate[st.out_mem] = rate.get(st.out_mem, 0.0) + st.delivered

    k = cap
    # Intra-cycle occupancy deltas applied by stages earlier in issue
    # order — each stage's checks see those, exactly as in _event_cycle.
    partial: Dict[str, float] = {}
    for st in states:
        if st.done:
            if st.issued or st.delivered is not None:
                return 0  # its final action just happened; never repeats
            continue

        # --- issue side ---------------------------------------------------
        if st.issued:
            remaining = st.input_target - st.consumed
            consumed, inc, target = st.consumed, st.inc, st.input_target
            k = min(k, _prefix_bound(
                lambda j: consumed + (j - 1) * inc < target,
                remaining / inc + 1))
            if k <= 0:
                return 0
            for name in st.gated_mems:
                drift = rate.get(name, 0.0)
                if drift >= 0:
                    continue
                level = occupancy[name] + partial.get(name, 0.0)
                thresh = st.thresh
                k = min(k, _prefix_bound(
                    lambda j: level + (j - 1) * drift >= thresh,
                    (level - thresh) / -drift + 1))
                if k <= 0:
                    return 0
            if st.out_mem is not None:
                drift = rate.get(st.out_mem, 0.0)
                if drift > 0:
                    level = occupancy[st.out_mem] + partial.get(st.out_mem,
                                                                0.0)
                    cap_px, out_thr = st.out_cap, st.out_thr
                    k = min(k, _prefix_bound(
                        lambda j: cap_px - (level + (j - 1) * drift)
                        >= out_thr,
                        (cap_px - level - out_thr) / drift + 1))
                    if k <= 0:
                        return 0
            for name in st.gated_mems:
                partial[name] = partial.get(name, 0.0) - st.thresh
        elif st.consumed < st.input_target:
            # Blocked: some condition must keep failing through the jump.
            blocked_for = -1
            for name in st.gated_mems:
                level = occupancy[name] + partial.get(name, 0.0)
                if level >= st.thresh:
                    continue  # not what blocks it at cycle+1
                drift = rate.get(name, 0.0)
                if drift <= 0:
                    blocked_for = cap
                    break
                thresh = st.thresh
                blocked_for = max(blocked_for, _prefix_bound(
                    lambda j: level + (j - 1) * drift < thresh,
                    (thresh - level) / drift + 1))
            if blocked_for < cap and st.out_mem is not None:
                level = occupancy[st.out_mem] + partial.get(st.out_mem, 0.0)
                if st.out_cap - level < st.out_thr:
                    drift = rate.get(st.out_mem, 0.0)
                    if drift >= 0:
                        blocked_for = cap
                    else:
                        cap_px, out_thr = st.out_cap, st.out_thr
                        blocked_for = max(blocked_for, _prefix_bound(
                            lambda j: cap_px - (level + (j - 1) * drift)
                            < out_thr,
                            (out_thr - (cap_px - level)) / -drift + 1))
            if blocked_for < 0:
                return 0  # nothing blocks it at cycle+1: pattern changes
            k = min(k, blocked_for)
            if k <= 0:
                return 0
        # consumed >= target and not issuing: never issues again — no bound.

        # --- delivery side ------------------------------------------------
        if st.delivered is not None:
            amount = st.delivered
            if st.runs:
                first, count = st.runs[0][0], st.runs[0][1]
                if first != cycle + 1:
                    return 0  # gap before the next matured entry
                if not (len(st.runs) == 1 and st.issued):
                    k = min(k, count)  # head run drains without refill
            elif not (st.issued and st.ns == 1):
                return 0  # pipeline drained: no further deliveries
            if amount == st.out_thr and amount > 0:
                produced, out_px = st.produced, st.out_px
                k = min(k, _prefix_bound(
                    lambda j: out_px - (produced + (j - 1) * amount)
                    >= amount,
                    (out_px - produced) / amount))
            elif amount != 0:
                return 0  # final partial delivery: next amount differs
            if k <= 0:
                return 0
        elif st.runs:
            k = min(k, st.runs[0][0] - (cycle + 1))
            if k <= 0:
                return 0
        # no pending and not delivering: stays silent — no bound.
    return k


def _apply_jump(states: List["_EventState"], occupancy: Dict[str, float],
                cycle: int, k: int) -> None:
    """Advance every stage ``k`` cycles of its recorded action in one step."""
    for st in states:
        if st.issued:
            st.consumed += k * st.inc
            for name in st.gated_mems:
                occupancy[name] -= k * st.thresh
            if st.runs:
                st.runs[-1][1] += k  # tail stays contiguous with new issues
            # else: single-cycle pipeline delivering as it issues (ns == 1);
            # entries never accumulate, so there is no run to extend.
        if st.delivered is not None:
            amount = st.delivered
            st.produced += k * amount
            if st.out_mem is not None and amount > 0:
                occupancy[st.out_mem] += k * amount
            if st.runs:
                head = st.runs[0]
                head[0] += k
                head[1] -= k
                if not head[1]:
                    st.runs.popleft()


def cycle_accurate_latency(graph: StageGraph, system: SensorSystem,
                           mapping: Mapping,
                           max_cycles: int = 50_000_000, *,
                           resolved: Optional[Dict[str, object]] = None
                           ) -> float:
    """Event-driven digital simulation (uniform clock required).

    Returns ``T_D`` in seconds.  Raises :class:`StallError` on deadlock —
    which corresponds to the paper's stall scenarios — and
    :class:`SimulationError` when units run on different clocks (the
    analytical model handles those).  Cycle counts, stall cycles, and
    error messages are identical to :func:`_cycle_accurate_reference`;
    only the wall-clock cost differs.
    """
    if resolved is None:
        resolved = mapping.resolve(graph, system)
    analog_fed = _analog_fed_memories(graph, resolved)
    states, clock = _build_event_states(graph, resolved, analog_fed)
    if not states:
        return 0.0
    if not all(st.exactly_representable() for st in states):
        return _cycle_accurate_reference(graph, system, mapping, max_cycles,
                                         resolved=resolved)

    occupancy: Dict[str, float] = {m.name: 0.0 for m in system.memories}
    window = 4 * max(st.ns for st in states) + 16

    if all(st.done for st in states):
        return 0.0
    if max_cycles <= 0:
        raise SimulationError(
            f"cycle-accurate simulation exceeded {max_cycles} cycles")
    _precheck_ports(states)

    cycle = 0
    last_progress = 0
    while not all(st.done for st in states):
        if cycle >= max_cycles:
            raise SimulationError(
                f"cycle-accurate simulation exceeded {max_cycles} cycles")
        progressed = _event_cycle(states, occupancy, cycle)
        if progressed:
            last_progress = cycle
        elif cycle - last_progress > window:
            blocked = [st.stage.name for st in states if not st.done]
            raise StallError(
                f"digital pipeline deadlocked at cycle {cycle}; "
                f"blocked stages: {blocked}")
        cycle += 1

        # Skip ahead: cap at the max-cycles guard and, for an idle
        # pattern, at the watchdog trip point, so the guarded exact
        # iterations above fire at the reference cycle numbers.
        cap = max_cycles - cycle
        if not progressed:
            cap = min(cap, last_progress + window + 1 - cycle)
        if cap <= 0:
            continue
        k = _plan_jump(states, occupancy, cycle - 1, cap)
        if k > 0:
            _apply_jump(states, occupancy, cycle - 1, k)
            if progressed:
                last_progress = cycle - 1 + k
            cycle += k
    return cycle / clock


# --- reference per-cycle simulator (ground truth) ----------------------------


def _cycle_accurate_reference(graph: StageGraph, system: SensorSystem,
                              mapping: Mapping,
                              max_cycles: int = 50_000_000, *,
                              resolved: Optional[Dict[str, object]] = None
                              ) -> float:
    """The original per-cycle loop: O(cycles x stages x depth), exact.

    Kept as the ground truth for the event-driven simulator's
    equivalence tests and benchmarks, and as the fallback for
    configurations with non-integral occupancy bookkeeping.
    """
    if resolved is None:
        resolved = mapping.resolve(graph, system)
    states: List[_PipelineState] = []
    clock = None
    for stage in graph.topological_order:
        unit = resolved[stage.name]
        if not isinstance(unit, ComputeUnit):
            continue
        if clock is None:
            clock = unit.clock_hz
        elif abs(clock - unit.clock_hz) > 1e-6:
            raise SimulationError(
                "cycle-accurate simulation requires a uniform digital clock")
        states.append(_PipelineState(stage=stage, unit=unit))
    if not states:
        return 0.0

    occupancy: Dict[str, float] = {m.name: 0.0 for m in system.memories}
    analog_fed = _analog_fed_memories(graph, resolved)

    cycle = 0
    last_progress = 0
    while not all(s.done for s in states):
        if cycle >= max_cycles:
            raise SimulationError(
                f"cycle-accurate simulation exceeded {max_cycles} cycles")
        progressed = False
        for state in states:
            progressed |= _step_stage(state, occupancy, analog_fed)
        # Deliver pipeline outputs that matured this cycle.
        for state in states:
            progressed |= _deliver_outputs(state, occupancy, cycle)
        if progressed:
            last_progress = cycle
        elif cycle - last_progress > 4 * max(s.unit.num_stages
                                             for s in states) + 16:
            blocked = [s.stage.name for s in states if not s.done]
            raise StallError(
                f"digital pipeline deadlocked at cycle {cycle}; "
                f"blocked stages: {blocked}")
        cycle += 1
    return cycle / clock


def _step_stage(state: _PipelineState, occupancy: Dict[str, float],
                analog_fed: set) -> bool:
    """Try to issue one cycle of work; returns whether progress was made."""
    if state.consumed >= state.input_target and not state.pending \
            and state.produced >= state.stage.output_pixels:
        return False
    if state.consumed >= state.input_target:
        return False
    unit = state.unit
    need = unit.input_throughput
    # Port limits: words movable per cycle bound the consumable pixels.
    for memory in unit.input_memories:
        max_words = memory.num_read_ports
        if need > max_words * memory.pixels_per_read_word * len(
                unit.input_memories):
            raise StallError(
                f"memory {memory.name!r} has too few read ports for unit "
                f"{unit.name!r} ({need} pixels/cycle needed)")
    available = all(
        memory.name in analog_fed
        or occupancy[memory.name] >= need / max(1, len(unit.input_memories))
        for memory in unit.input_memories)
    if unit.input_memories and not available:
        return False
    out_memory = unit.output_memory
    if out_memory is not None:
        space = (out_memory.capacity_pixels
                 - occupancy[out_memory.name])
        if space < unit.output_throughput:
            return False
    for memory in unit.input_memories:
        if memory.name not in analog_fed:
            occupancy[memory.name] -= need / max(1, len(unit.input_memories))
    state.consumed += max(1, need)
    state.pending.append(unit.num_stages)
    return True


def _deliver_outputs(state: _PipelineState, occupancy: Dict[str, float],
                     cycle: int) -> bool:
    """Age the pipeline; deliver outputs whose latency elapsed."""
    if not state.pending:
        return False
    state.pending = deque(age - 1 for age in state.pending)
    delivered = False
    while state.pending and state.pending[0] <= 0:
        state.pending.popleft()
        produced = min(state.unit.output_throughput,
                       state.stage.output_pixels - state.produced)
        state.produced += produced
        if state.unit.output_memory is not None and produced > 0:
            occupancy[state.unit.output_memory.name] += produced
        delivered = True
    return delivered
