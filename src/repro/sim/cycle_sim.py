"""Cycle-level simulation of the digital domain (Sec. 3.3, Sec. 4.1).

Two simulation levels are provided:

* :func:`simulate_digital` — the default analytical timeline.  Stencil
  regularity makes cycle counts closed-form: a pipelined unit producing
  ``N`` outputs at ``k`` outputs/cycle runs ``N/k + depth - 1`` cycles, and
  streaming consumers start once the producer has filled the minimum
  window (one line-buffer row group, a full double buffer, ...).  This is
  what the energy model and delay estimator consume.

* :func:`cycle_accurate_latency` — an event-driven per-cycle loop used to
  validate the analytical model on small configurations and to detect the
  three stall scenarios of Sec. 4.1 exactly (missing producer data, full
  memory, insufficient ports).

Both report the digital-domain latency ``T_D`` that the analog delay
estimation needs (Fig. 6) plus per-memory access counts for Eq. 16.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import SimulationError, StallError
from repro.hw.analog.array import AnalogArray
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit, SystolicArray
from repro.hw.digital.memory import DigitalMemory, DoubleBuffer, LineBuffer
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import DNNProcessStage, ProcessStage, Stage


@dataclass
class UnitActivity:
    """One digital stage executing on one compute unit."""

    unit_name: str
    stage_name: str
    cycles: float
    start: float
    duration: float
    energy: float

    @property
    def finish(self) -> float:
        """Wall-clock completion time within the frame."""
        return self.start + self.duration


@dataclass
class DigitalTimeline:
    """Result of the digital-domain simulation."""

    activities: List[UnitActivity] = field(default_factory=list)
    memory_reads: Dict[str, float] = field(default_factory=dict)
    memory_writes: Dict[str, float] = field(default_factory=dict)
    #: Memory name -> name of the first stage reading it (stage attribution).
    memory_stage: Dict[str, str] = field(default_factory=dict)

    @property
    def total_latency(self) -> float:
        """``T_D``: makespan of the digital domain within one frame."""
        if not self.activities:
            return 0.0
        return max(a.finish for a in self.activities)

    def activity_for(self, stage_name: str) -> UnitActivity:
        """Activity record of one stage."""
        for activity in self.activities:
            if activity.stage_name == stage_name:
                return activity
        raise SimulationError(f"no digital activity for stage {stage_name!r}")


def _fill_fraction(producer: Stage, consumer: Stage,
                   memory: Optional[DigitalMemory]) -> float:
    """Fraction of the producer's output the consumer must wait for.

    * double buffer: the consumer works on the previous buffer — it starts
      only after the producer fills a full buffer (fraction 1);
    * line buffer: the consumer starts once ``kernel_rows - 1`` input rows
      plus one pixel are buffered (Fig. 6's "after the second line");
    * FIFO or direct hand-off: one producer output group suffices.
    """
    if isinstance(memory, DoubleBuffer):
        return 1.0
    if isinstance(memory, LineBuffer) and isinstance(consumer, ProcessStage):
        rows = producer.output_size[0]
        kernel_rows = consumer.kernel[0]
        return min(1.0, max(kernel_rows - 1, 1) / rows)
    rows = producer.output_size[0]
    return 1.0 / max(1, rows)


def _connecting_memory(producer_unit, consumer_unit
                       ) -> Optional[DigitalMemory]:
    """The memory structure through which two units hand data off."""
    if isinstance(consumer_unit, ComputeUnit):
        consumer_memories = consumer_unit.input_memories
    else:
        return None
    if isinstance(producer_unit, ComputeUnit):
        producer_out = ([producer_unit.output_memory]
                        if producer_unit.output_memory else [])
    elif isinstance(producer_unit, AnalogArray):
        producer_out = producer_unit.output_memories
    else:
        producer_out = []
    for memory in consumer_memories:
        if memory in producer_out:
            return memory
    if consumer_memories:
        return consumer_memories[0]
    return None


def _stage_cycles(stage: Stage, unit: ComputeUnit) -> float:
    """Active cycle count of one stage on one unit."""
    if isinstance(unit, SystolicArray) and isinstance(stage, DNNProcessStage):
        return unit.cycles_for_macs(stage.num_macs)
    return unit.active_cycles(stage.output_pixels)


def _stage_energy(stage: Stage, unit: ComputeUnit, cycles: float) -> float:
    """Compute energy of one stage on one unit (Eq. 15)."""
    if isinstance(unit, SystolicArray) and isinstance(stage, DNNProcessStage):
        return unit.energy_for_macs(stage.num_macs)
    return cycles * unit.energy_per_cycle


def simulate_digital(graph: StageGraph, system: SensorSystem,
                     mapping: Mapping) -> DigitalTimeline:
    """Analytical digital-domain timeline with memory access counts."""
    resolved = mapping.resolve(graph, system)
    timeline = DigitalTimeline()
    unit_free: Dict[str, float] = {}
    stage_activity: Dict[str, UnitActivity] = {}

    for stage in graph.topological_order:
        unit = resolved[stage.name]
        if not isinstance(unit, ComputeUnit):
            continue
        cycles = _stage_cycles(stage, unit)
        duration = cycles * unit.cycle_time
        energy = _stage_energy(stage, unit, cycles)

        start = unit_free.get(unit.name, 0.0)
        for producer in stage.input_stages:
            producer_unit = resolved[producer.name]
            if not isinstance(producer_unit, ComputeUnit):
                continue  # analog feed adapts to the digital schedule
            producer_activity = stage_activity.get(producer.name)
            if producer_activity is None:
                continue
            memory = _connecting_memory(producer_unit, unit)
            fraction = _fill_fraction(producer, stage, memory)
            earliest = (producer_activity.start
                        + fraction * producer_activity.duration)
            start = max(start, earliest)

        activity = UnitActivity(unit_name=unit.name, stage_name=stage.name,
                                cycles=cycles, start=start,
                                duration=duration, energy=energy)
        timeline.activities.append(activity)
        stage_activity[stage.name] = activity
        unit_free[unit.name] = activity.finish

        _count_memory_accesses(timeline, graph, resolved, stage, unit, cycles)

    _count_analog_feed_writes(timeline, graph, resolved)
    return timeline


def _count_memory_accesses(timeline: DigitalTimeline, graph: StageGraph,
                           resolved: Dict[str, object], stage: Stage,
                           unit: ComputeUnit, cycles: float) -> None:
    """Reads by this stage and writes of its output (Eq. 16 inputs)."""
    steady_cycles = max(0.0, cycles - (unit.num_stages - 1))
    shapes = unit.input_pixels_per_cycle
    seen: List[DigitalMemory] = []
    for index, memory in enumerate(unit.input_memories):
        if memory in seen:
            continue
        seen.append(memory)
        shape = shapes[min(index, len(shapes) - 1)]
        pixels = steady_cycles * _volume(shape)
        timeline.memory_reads[memory.name] = (
            timeline.memory_reads.get(memory.name, 0.0) + pixels)
        timeline.memory_stage.setdefault(memory.name, stage.name)
    if unit.output_memory is not None:
        timeline.memory_writes[unit.output_memory.name] = (
            timeline.memory_writes.get(unit.output_memory.name, 0.0)
            + stage.output_pixels)


def _count_analog_feed_writes(timeline: DigitalTimeline, graph: StageGraph,
                              resolved: Dict[str, object]) -> None:
    """Writes into digital memories performed by the analog front-end."""
    for producer, consumer in graph.edges():
        producer_unit = resolved[producer.name]
        consumer_unit = resolved[consumer.name]
        if not isinstance(producer_unit, AnalogArray):
            continue
        if not isinstance(consumer_unit, ComputeUnit):
            continue
        memory = _connecting_memory(producer_unit, consumer_unit)
        if memory is None:
            continue
        timeline.memory_writes[memory.name] = (
            timeline.memory_writes.get(memory.name, 0.0)
            + producer.output_pixels)


def _volume(shape) -> int:
    product = 1
    for value in shape:
        product *= value
    return product


# --- cycle-accurate validation simulator -------------------------------------


@dataclass
class _PipelineState:
    """Per-stage bookkeeping of the event-driven simulator."""

    stage: Stage
    unit: ComputeUnit
    consumed: float = 0.0
    produced: float = 0.0
    pending: deque = field(default_factory=deque)

    @property
    def input_target(self) -> float:
        """Total pixels the stage must consume."""
        if isinstance(self.unit, SystolicArray) and isinstance(
                self.stage, DNNProcessStage):
            cycles = self.unit.cycles_for_macs(self.stage.num_macs)
            return cycles * self.unit.input_throughput
        cycles = self.unit.active_cycles(self.stage.output_pixels)
        steady = max(0.0, cycles - (self.unit.num_stages - 1))
        return steady * self.unit.input_throughput

    @property
    def done(self) -> bool:
        """Whether the stage produced its full frame output."""
        return self.produced >= self.stage.output_pixels and not self.pending


def cycle_accurate_latency(graph: StageGraph, system: SensorSystem,
                           mapping: Mapping,
                           max_cycles: int = 50_000_000) -> float:
    """Event-driven per-cycle digital simulation (uniform clock required).

    Returns ``T_D`` in seconds.  Raises :class:`StallError` on deadlock —
    which corresponds to the paper's stall scenarios — and
    :class:`SimulationError` when units run on different clocks (the
    analytical model handles those).
    """
    resolved = mapping.resolve(graph, system)
    states: List[_PipelineState] = []
    clock = None
    for stage in graph.topological_order:
        unit = resolved[stage.name]
        if not isinstance(unit, ComputeUnit):
            continue
        if clock is None:
            clock = unit.clock_hz
        elif abs(clock - unit.clock_hz) > 1e-6:
            raise SimulationError(
                "cycle-accurate simulation requires a uniform digital clock")
        states.append(_PipelineState(stage=stage, unit=unit))
    if not states:
        return 0.0

    occupancy: Dict[str, float] = {m.name: 0.0 for m in system.memories}
    analog_fed = _analog_fed_memories(graph, resolved)

    cycle = 0
    last_progress = 0
    while not all(s.done for s in states):
        if cycle >= max_cycles:
            raise SimulationError(
                f"cycle-accurate simulation exceeded {max_cycles} cycles")
        progressed = False
        for state in states:
            progressed |= _step_stage(state, occupancy, analog_fed)
        # Deliver pipeline outputs that matured this cycle.
        for state in states:
            progressed |= _deliver_outputs(state, occupancy, cycle)
        if progressed:
            last_progress = cycle
        elif cycle - last_progress > 4 * max(s.unit.num_stages
                                             for s in states) + 16:
            blocked = [s.stage.name for s in states if not s.done]
            raise StallError(
                f"digital pipeline deadlocked at cycle {cycle}; "
                f"blocked stages: {blocked}")
        cycle += 1
    return cycle / clock


def _analog_fed_memories(graph: StageGraph, resolved: Dict[str, object]
                         ) -> set:
    """Memories written by the analog front-end: modeled as always ready."""
    fed = set()
    for producer, consumer in graph.edges():
        producer_unit = resolved[producer.name]
        consumer_unit = resolved[consumer.name]
        if isinstance(producer_unit, AnalogArray) and isinstance(
                consumer_unit, ComputeUnit):
            memory = _connecting_memory(producer_unit, consumer_unit)
            if memory is not None:
                fed.add(memory.name)
    return fed


def _step_stage(state: _PipelineState, occupancy: Dict[str, float],
                analog_fed: set) -> bool:
    """Try to issue one cycle of work; returns whether progress was made."""
    if state.consumed >= state.input_target and not state.pending \
            and state.produced >= state.stage.output_pixels:
        return False
    if state.consumed >= state.input_target:
        return False
    unit = state.unit
    need = unit.input_throughput
    # Port limits: words movable per cycle bound the consumable pixels.
    for memory in unit.input_memories:
        max_words = memory.num_read_ports
        if need > max_words * memory.pixels_per_read_word * len(
                unit.input_memories):
            raise StallError(
                f"memory {memory.name!r} has too few read ports for unit "
                f"{unit.name!r} ({need} pixels/cycle needed)")
    available = all(
        memory.name in analog_fed
        or occupancy[memory.name] >= need / max(1, len(unit.input_memories))
        for memory in unit.input_memories)
    if unit.input_memories and not available:
        return False
    out_memory = unit.output_memory
    if out_memory is not None:
        space = (out_memory.capacity_pixels
                 - occupancy[out_memory.name])
        if space < unit.output_throughput:
            return False
    for memory in unit.input_memories:
        if memory.name not in analog_fed:
            occupancy[memory.name] -= need / max(1, len(unit.input_memories))
    state.consumed += max(1, need)
    state.pending.append(unit.num_stages)
    return True


def _deliver_outputs(state: _PipelineState, occupancy: Dict[str, float],
                     cycle: int) -> bool:
    """Age the pipeline; deliver outputs whose latency elapsed."""
    if not state.pending:
        return False
    state.pending = deque(age - 1 for age in state.pending)
    delivered = False
    while state.pending and state.pending[0] <= 0:
        state.pending.popleft()
        produced = min(state.unit.output_throughput,
                       state.stage.output_pixels - state.produced)
        state.produced += produced
        if state.unit.output_memory is not None and produced > 0:
            occupancy[state.unit.output_memory.name] += produced
        delivered = True
    return delivered
