"""Textual rendering of the Fig. 6 pipeline diagram.

Turns the frame-timing inference into the picture the paper draws: the
exposure slot, one slot per analog array, and the digital activities
packed at the end of the frame, all on a shared time axis.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro import units
from repro.energy.analog_model import analog_usage
from repro.hw.chip import SensorSystem
from repro.sim.cycle_sim import simulate_digital
from repro.sim.delay import estimate_frame_timing
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import Stage

_WIDTH = 56


def pipeline_chart(stages: Union[StageGraph, List[Stage]],
                   system: SensorSystem,
                   mapping: Union[Mapping, Dict[str, str]],
                   frame_rate: float,
                   exposure_slots: int = 1) -> str:
    """Render the per-frame pipeline schedule as an ASCII chart."""
    graph = stages if isinstance(stages, StageGraph) else StageGraph(stages)
    mapping = mapping if isinstance(mapping, Mapping) else Mapping(mapping)
    mapping.validate(graph, system)

    timeline = simulate_digital(graph, system, mapping)
    usages = analog_usage(graph, system, mapping)
    timing = estimate_frame_timing(frame_rate, timeline.total_latency,
                                   num_analog_arrays=len(usages),
                                   exposure_slots=exposure_slots)

    frame_time = timing.frame_time
    rows: List[tuple] = []
    cursor = 0.0
    for slot in range(exposure_slots):
        rows.append((f"Exposure", cursor, timing.analog_stage_delay))
        cursor += timing.analog_stage_delay
    for usage in usages:
        rows.append((usage.array.name, cursor, timing.analog_stage_delay))
        cursor += timing.analog_stage_delay
    digital_origin = cursor
    for activity in timeline.activities:
        rows.append((f"{activity.stage_name}@{activity.unit_name}",
                     digital_origin + activity.start, activity.duration))

    label_width = max((len(label) for label, _, _ in rows), default=8)
    lines = [f"Frame budget {units.format_time(frame_time)} @ "
             f"{frame_rate:g} FPS  "
             f"(T_A {units.format_time(timing.analog_stage_delay)}, "
             f"T_D {units.format_time(timing.digital_latency)})"]
    for label, start, duration in rows:
        begin = int(round(_WIDTH * start / frame_time))
        span = max(1, int(round(_WIDTH * duration / frame_time)))
        end = min(_WIDTH, begin + span)
        if end <= begin:  # sub-column activity at the frame edge
            begin = max(0, _WIDTH - 1)
            end = _WIDTH
        bar = " " * begin + "#" * (end - begin)
        bar = bar.ljust(_WIDTH)
        lines.append(f"{label:<{label_width}} |{bar}| "
                     f"{units.format_time(duration)}")
    return "\n".join(lines)
