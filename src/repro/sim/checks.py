"""Pre-simulation design checks (Sec. 3.2).

Before estimating energy, CamJ verifies the algorithm/hardware combination:

1. *functional viability* — signal domains must chain legally and an ADC
   must sit between the analog and digital domains;
2. *no pipeline stalls* — producer/consumer throughput and memory
   capacity/ports must sustain streaming without accumulating latency;
3. *well-formed DAG* — enforced by :class:`repro.sw.dag.StageGraph` at
   construction, re-validated here for completeness.

Each failure raises a :class:`repro.exceptions.CheckError` subclass whose
message tells the designer what to fix — the feedback loop of Fig. 4.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.exceptions import CheckError, DomainMismatchError, StallError
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.domain import SignalDomain, compatible
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import DoubleBuffer, LineBuffer
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import ProcessStage


def run_pre_simulation_checks(graph: StageGraph, system: SensorSystem,
                              mapping: Mapping, *,
                              resolved: Optional[Dict[str, object]] = None
                              ) -> None:
    """Run every design check; raises on the first failure.

    ``resolved`` accepts a pre-computed ``mapping.resolve`` result so the
    engine resolves the mapping exactly once per run.
    """
    if resolved is None:
        resolved = mapping.resolve(graph, system)
    check_analog_domains(graph, resolved)
    check_analog_chain_wiring(graph, resolved)
    check_adc_boundary(graph, resolved)
    check_line_buffer_capacity(graph, resolved)
    check_memory_ports(graph, resolved)
    check_throughput_handshake(graph, resolved)


def check_analog_domains(graph: StageGraph, resolved: Dict[str, object]
                         ) -> None:
    """Producer output domain must match consumer input domain (Sec. 3.3)."""
    for producer, consumer in graph.edges():
        p_unit = resolved[producer.name]
        c_unit = resolved[consumer.name]
        if p_unit is c_unit:
            continue
        if not isinstance(p_unit, AnalogArray):
            continue
        if not isinstance(c_unit, AnalogArray):
            continue
        if not compatible(p_unit.output_domain, c_unit.input_domain):
            raise DomainMismatchError(
                f"analog array {p_unit.name!r} outputs "
                f"{p_unit.output_domain} but {c_unit.name!r} consumes "
                f"{c_unit.input_domain}; insert a conversion component")


def check_analog_chain_wiring(graph: StageGraph, resolved: Dict[str, object]
                              ) -> None:
    """Analog arrays handing data to each other must be physically wired."""
    for producer, consumer in graph.edges():
        p_unit = resolved[producer.name]
        c_unit = resolved[consumer.name]
        if p_unit is c_unit:
            continue
        if isinstance(p_unit, AnalogArray) and isinstance(c_unit, AnalogArray):
            if not _wired(p_unit, c_unit):
                raise CheckError(
                    f"stage {consumer.name!r} consumes {producer.name!r} but "
                    f"array {c_unit.name!r} is not wired to "
                    f"{p_unit.name!r} (call set_output)")


def _wired(producer: AnalogArray, consumer: AnalogArray) -> bool:
    """Whether a (possibly multi-hop) wiring path exists between arrays."""
    frontier = [producer]
    visited = set()
    while frontier:
        array = frontier.pop()
        if array is consumer:
            return True
        if id(array) in visited:
            continue
        visited.add(id(array))
        frontier.extend(array.output_arrays)
    return False


def check_adc_boundary(graph: StageGraph, resolved: Dict[str, object]
                       ) -> None:
    """An ADC must exist wherever data leaves the analog domain.

    When a stage mapped to an analog array feeds a stage mapped to a
    digital compute unit, the *signal chain* reaching the digital side —
    the producing array or any array wired downstream of it — must end in
    the digital domain (i.e. contain an ADC-like component).
    """
    for producer, consumer in graph.edges():
        p_unit = resolved[producer.name]
        c_unit = resolved[consumer.name]
        if not isinstance(p_unit, AnalogArray):
            continue
        if not isinstance(c_unit, ComputeUnit):
            continue
        if not _chain_reaches_digital(p_unit):
            raise DomainMismatchError(
                f"stage {consumer.name!r} (digital, on {c_unit.name!r}) "
                f"consumes analog data from array {p_unit.name!r} whose "
                f"signal chain never reaches the digital domain; an ADC is "
                f"missing")


def _chain_reaches_digital(array: AnalogArray) -> bool:
    frontier = [array]
    visited = set()
    while frontier:
        current = frontier.pop()
        if id(current) in visited:
            continue
        visited.add(id(current))
        if current.output_domain is SignalDomain.DIGITAL:
            return True
        frontier.extend(current.output_arrays)
    return False


def check_line_buffer_capacity(graph: StageGraph,
                               resolved: Dict[str, object]) -> None:
    """A line buffer must hold at least the consumer's kernel rows."""
    for stage in graph.topological_order:
        unit = resolved[stage.name]
        if not isinstance(unit, ComputeUnit):
            continue
        if not isinstance(stage, ProcessStage):
            continue
        for memory in unit.input_memories:
            if not isinstance(memory, LineBuffer):
                continue
            if memory.num_rows < stage.kernel[0]:
                raise StallError(
                    f"line buffer {memory.name!r} holds {memory.num_rows} "
                    f"rows but stage {stage.name!r} needs a "
                    f"{stage.kernel[0]}-row window; the pipeline would "
                    f"stall waiting for pixels")
            if memory.row_length < stage.input_size[1]:
                raise StallError(
                    f"line buffer {memory.name!r} rows are "
                    f"{memory.row_length} pixels but stage {stage.name!r} "
                    f"input rows are {stage.input_size[1]} pixels wide")


def check_memory_ports(graph: StageGraph, resolved: Dict[str, object]
                       ) -> None:
    """Per-cycle word movement must fit the memory's port counts."""
    for stage in graph.topological_order:
        unit = resolved[stage.name]
        if not isinstance(unit, ComputeUnit):
            continue
        shapes = unit.input_pixels_per_cycle
        for index, memory in enumerate(unit.input_memories):
            shape = shapes[min(index, len(shapes) - 1)]
            pixels_per_cycle = _volume(shape)
            words_per_cycle = (pixels_per_cycle
                               / memory.pixels_per_read_word)
            if words_per_cycle > memory.num_read_ports:
                raise StallError(
                    f"unit {unit.name!r} reads {words_per_cycle:g} words "
                    f"per cycle from {memory.name!r}, which has only "
                    f"{memory.num_read_ports} read port(s)")
        if unit.output_memory is not None:
            memory = unit.output_memory
            words_per_cycle = (unit.output_throughput
                               / memory.pixels_per_write_word)
            if words_per_cycle > memory.num_write_ports:
                raise StallError(
                    f"unit {unit.name!r} writes {words_per_cycle:g} words "
                    f"per cycle into {memory.name!r}, which has only "
                    f"{memory.num_write_ports} write port(s)")


def check_throughput_handshake(graph: StageGraph,
                               resolved: Dict[str, object]) -> None:
    """Downstream digital units must keep up with upstream producers.

    A consumer slower than its producer accumulates backlog; unless the
    connecting memory can absorb a whole frame, latency grows every frame —
    the stall CamJ asks designers to fix (Sec. 4.1).
    """
    for producer, consumer in graph.edges():
        p_unit = resolved[producer.name]
        c_unit = resolved[consumer.name]
        if p_unit is c_unit:
            continue
        if not isinstance(p_unit, ComputeUnit):
            continue
        if not isinstance(c_unit, ComputeUnit):
            continue
        producer_rate = p_unit.output_throughput * p_unit.clock_hz
        consumed_pixels = consumer.output_pixels if not isinstance(
            consumer, ProcessStage) else consumer.input_reads
        produced_pixels = producer.output_pixels
        # Time each side needs for its share of the frame's data.
        producer_time = produced_pixels / producer_rate
        consumer_rate = c_unit.input_throughput * c_unit.clock_hz
        consumer_time = consumed_pixels / consumer_rate
        memory = _connecting(p_unit, c_unit)
        if memory is None:
            continue
        if isinstance(memory, DoubleBuffer):
            # Ping-pong buffers decouple rates across frames; only a full
            # frame of producer output must fit.
            if producer.output_bytes > memory.capacity_bytes:
                raise StallError(
                    f"double buffer {memory.name!r} "
                    f"({memory.capacity_bytes:g} B) cannot hold one frame "
                    f"of {producer.name!r} output "
                    f"({producer.output_bytes:g} B); the pipeline stalls")
            continue
        if consumer_time > producer_time:
            backlog = produced_pixels * (1.0 - producer_time
                                         / consumer_time)
            if backlog > memory.capacity_pixels:
                raise StallError(
                    f"unit {c_unit.name!r} drains slower than "
                    f"{p_unit.name!r} fills {memory.name!r}: backlog "
                    f"~{backlog:.0f} px exceeds capacity "
                    f"{memory.capacity_pixels:g} px; the pipeline stalls")


def _connecting(producer_unit: ComputeUnit, consumer_unit: ComputeUnit):
    if producer_unit.output_memory is None:
        return None
    if producer_unit.output_memory in consumer_unit.input_memories:
        return producer_unit.output_memory
    return None


def _volume(shape) -> int:
    product = 1
    for value in shape:
        product *= value
    return product
