"""Delay estimation (Sec. 4.1, Fig. 6).

CamJ's insight: the CIS pipeline is designed to never stall, because pixels
arrive at a constant exposure rate.  In a balanced pipeline every analog
stage therefore shares the same delay, which can be *inferred* from the
frame-rate target instead of asked from the user:

    ``N_slots * T_A + T_D = T_FR = 1 / FPS``

where ``N_slots`` counts the analog pipeline stages — the exposure phase
plus every analog functional array on the signal path (the Fig. 6 example
has exposure + binned-pixel readout + ADC, hence ``3 * T_A + T_D``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError, TimingError

#: The exposure phase occupies one analog pipeline slot (Fig. 6).
EXPOSURE_SLOTS = 1


@dataclass(frozen=True)
class FrameTiming:
    """Timing facts of one frame under a frame-rate target."""

    frame_rate: float
    frame_time: float
    digital_latency: float
    num_analog_slots: int
    analog_stage_delay: float

    @property
    def analog_total_time(self) -> float:
        """Total time the analog domain occupies per frame."""
        return self.num_analog_slots * self.analog_stage_delay


def estimate_frame_timing(frame_rate: float, digital_latency: float,
                          num_analog_arrays: int,
                          exposure_slots: int = EXPOSURE_SLOTS
                          ) -> FrameTiming:
    """Infer the balanced analog stage delay ``T_A`` from the FPS target.

    Raises :class:`TimingError` when the digital domain alone exceeds the
    frame budget — the "re-design the accelerator" feedback of Sec. 3.3.
    """
    if frame_rate <= 0:
        raise ConfigurationError(
            f"frame rate must be positive, got {frame_rate}")
    if digital_latency < 0:
        raise ConfigurationError(
            f"digital latency must be non-negative, got {digital_latency}")
    if num_analog_arrays < 0:
        raise ConfigurationError(
            f"analog array count must be non-negative, "
            f"got {num_analog_arrays}")
    if exposure_slots < 0:
        raise ConfigurationError(
            f"exposure slots must be non-negative, got {exposure_slots}")
    frame_time = 1.0 / frame_rate
    slots = num_analog_arrays + exposure_slots
    analog_budget = frame_time - digital_latency
    if analog_budget <= 0:
        raise TimingError(
            f"digital latency ({digital_latency:.3e} s) exceeds the frame "
            f"budget ({frame_time:.3e} s at {frame_rate:g} FPS); the "
            f"digital pipeline needs a re-design")
    if slots == 0:
        analog_stage_delay = analog_budget
    else:
        analog_stage_delay = analog_budget / slots
    return FrameTiming(frame_rate=frame_rate, frame_time=frame_time,
                       digital_latency=digital_latency,
                       num_analog_slots=slots,
                       analog_stage_delay=analog_stage_delay)
