"""Pareto analysis over design candidates (two-objective shim).

The Sec. 6 explorations trade *energy per frame* against *power density*
(Table 3 shows they conflict: 3D stacking cuts energy but concentrates
power).  :class:`DesignPoint` keeps that fixed two-objective view for
existing call sites; dominance and frontier extraction delegate to the
N-objective machinery in :mod:`repro.explore.engine`, which is what new
code should use directly (any number of objectives, named metrics,
infeasible-point bookkeeping, JSON round-tripping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.area.model import power_density
from repro.energy.report import EnergyReport
from repro.exceptions import ConfigurationError
from repro.explore.engine import dominates as _dominates
from repro.explore.engine import pareto_indices as _pareto_indices
from repro.hw.chip import SensorSystem

#: Both legacy objectives minimize.
_GOALS = ("min", "min")


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design with its two competing objectives."""

    label: str
    energy_per_frame: float
    power_density: float

    def _vector(self) -> tuple:
        return (self.energy_per_frame, self.power_density)

    def dominates(self, other: "DesignPoint") -> bool:
        """Strict Pareto dominance: no worse on both, better on one.

        Ties (equal on both objectives) dominate in neither direction,
        and NaN-valued points are incomparable — shared semantics with
        :func:`repro.explore.engine.dominates`.
        """
        return _dominates(self._vector(), other._vector(), _GOALS)

    def describe(self) -> str:
        density = self.power_density / (units.mW / units.mm2)
        return (f"{self.label:<20} "
                f"{units.format_energy(self.energy_per_frame):>10}/frame  "
                f"{density:6.2f} mW/mm^2")


def design_point(label: str, system: SensorSystem,
                 report: EnergyReport) -> DesignPoint:
    """Package one simulated design as a Pareto candidate."""
    return DesignPoint(label=label,
                       energy_per_frame=report.total_energy,
                       power_density=power_density(system, report))


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated subset, in deterministic order.

    Sorted by energy, then power density, then label, so the returned
    frontier is stable across runs and input permutations (ties included:
    value-identical candidates are all non-dominated and all kept).
    """
    if not points:
        raise ConfigurationError("pareto front needs at least one point")
    front = [points[index] for index in
             _pareto_indices([p._vector() for p in points], _GOALS)]
    return sorted(front, key=lambda p: (p.energy_per_frame,
                                        p.power_density, p.label))


def dominated_points(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The candidates a designer can discard outright.

    A point is discardable only when some other candidate strictly
    dominates it; NaN-valued points are incomparable, so they appear
    neither here nor on the frontier.
    """
    if not points:
        raise ConfigurationError("pareto front needs at least one point")
    return [point for point in points
            if any(other.dominates(point) for other in points)]
