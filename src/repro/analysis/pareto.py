"""Pareto analysis over design candidates.

The Sec. 6 explorations trade *energy per frame* against *power density*
(Table 3 shows they conflict: 3D stacking cuts energy but concentrates
power).  A Pareto front over candidate designs makes that tension
explicit and tells the designer which candidates are strictly dominated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.area.model import power_density
from repro.energy.report import EnergyReport
from repro.exceptions import ConfigurationError
from repro.hw.chip import SensorSystem


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design with its two competing objectives."""

    label: str
    energy_per_frame: float
    power_density: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Strict Pareto dominance: no worse on both, better on one."""
        no_worse = (self.energy_per_frame <= other.energy_per_frame
                    and self.power_density <= other.power_density)
        better = (self.energy_per_frame < other.energy_per_frame
                  or self.power_density < other.power_density)
        return no_worse and better

    def describe(self) -> str:
        density = self.power_density / (units.mW / units.mm2)
        return (f"{self.label:<20} "
                f"{units.format_energy(self.energy_per_frame):>10}/frame  "
                f"{density:6.2f} mW/mm^2")


def design_point(label: str, system: SensorSystem,
                 report: EnergyReport) -> DesignPoint:
    """Package one simulated design as a Pareto candidate."""
    return DesignPoint(label=label,
                       energy_per_frame=report.total_energy,
                       power_density=power_density(system, report))


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated subset, sorted by energy."""
    if not points:
        raise ConfigurationError("pareto front needs at least one point")
    front = [p for p in points
             if not any(q.dominates(p) for q in points)]
    return sorted(front, key=lambda p: p.energy_per_frame)


def dominated_points(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The candidates a designer can discard outright."""
    front = set(id(p) for p in pareto_front(points))
    return [p for p in points if id(p) not in front]
