"""Design-analysis tooling on top of energy reports.

The paper positions CamJ inside an iterative refinement loop (Sec. 3.1):
estimate, *identify energy bottlenecks*, re-design the offending
component, re-estimate.  This subpackage provides that loop's analysis
half: bottleneck ranking, report-to-report comparison, and parameter
sweeps.

Sweeps, Pareto analysis, and bottleneck ranking are compatibility shims
over :mod:`repro.explore` — the unified design-space exploration engine
with composable multi-axis spaces, a named-metric registry, N-objective
frontiers, and JSON round-tripping.  New code should prefer
:func:`repro.explore.explore` directly.
"""

from repro.analysis.bottleneck import (
    Bottleneck,
    identify_bottlenecks,
    dominant_category,
)
from repro.analysis.compare import (
    ReportDelta,
    compare_reports,
    savings_fraction,
)
from repro.analysis.sweep import (
    SweepPoint,
    sweep_frame_rate,
    sweep_nodes,
    sweep_parameter,
)
from repro.analysis.pareto import (
    DesignPoint,
    design_point,
    pareto_front,
    dominated_points,
)

__all__ = [
    "Bottleneck",
    "identify_bottlenecks",
    "dominant_category",
    "ReportDelta",
    "compare_reports",
    "savings_fraction",
    "SweepPoint",
    "sweep_frame_rate",
    "sweep_nodes",
    "sweep_parameter",
    "DesignPoint",
    "design_point",
    "pareto_front",
    "dominated_points",
]
