"""Design-analysis tooling on top of energy reports.

The paper positions CamJ inside an iterative refinement loop (Sec. 3.1):
estimate, *identify energy bottlenecks*, re-design the offending
component, re-estimate.  This subpackage provides that loop's analysis
half: bottleneck ranking, report-to-report comparison, and parameter
sweeps.
"""

from repro.analysis.bottleneck import (
    Bottleneck,
    identify_bottlenecks,
    dominant_category,
)
from repro.analysis.compare import (
    ReportDelta,
    compare_reports,
    savings_fraction,
)
from repro.analysis.sweep import (
    SweepPoint,
    sweep_frame_rate,
    sweep_nodes,
    sweep_parameter,
)
from repro.analysis.pareto import (
    DesignPoint,
    design_point,
    pareto_front,
    dominated_points,
)

__all__ = [
    "Bottleneck",
    "identify_bottlenecks",
    "dominant_category",
    "ReportDelta",
    "compare_reports",
    "savings_fraction",
    "SweepPoint",
    "sweep_frame_rate",
    "sweep_nodes",
    "sweep_parameter",
    "DesignPoint",
    "design_point",
    "pareto_front",
    "dominated_points",
]
