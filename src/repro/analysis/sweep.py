"""Parameter sweeps over rebuildable designs, batched through the session API.

A sweep drives a *builder* — any callable returning a
:class:`repro.api.Design` or the legacy ``(stages, system, mapping)``
triple — across a parameter range and records the resulting reports,
marking points where the design stops being feasible (TimingError /
StallError) instead of aborting: infeasibility boundaries are exactly
what a designer sweeps to find.

All sweeps execute through :meth:`repro.api.Simulator.run_many`, so the
points are simulated in parallel and identical designs (by content hash)
are only evaluated once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.api.design import Design
from repro.api.result import SimOptions, SimResult
from repro.api.simulator import Simulator
from repro.energy.report import EnergyReport
from repro.exceptions import CamJError, ConfigurationError

#: What a sweep builder may return.
BuilderResult = Union[Design, tuple]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep."""

    parameter: float
    report: Optional[EnergyReport]
    failure: Optional[str]

    @property
    def feasible(self) -> bool:
        return self.report is not None


def _as_design(built: BuilderResult) -> Design:
    if isinstance(built, Design):
        return built
    stages, system, mapping = built
    return Design(stages, system, mapping)


def _to_points(parameters: Sequence[float],
               results: Sequence[SimResult]) -> List[SweepPoint]:
    return [SweepPoint(parameter=parameter, report=result.report,
                       failure=result.failure)
            for parameter, result in zip(parameters, results)]


def _build_points(values: Sequence[float],
                  build_one: Callable[[float], BuilderResult]
                  ) -> Tuple[List[Tuple[float, Design]], List[SweepPoint]]:
    """Build one design per value; a failing builder marks the point.

    A value the builder itself rejects (bad node, inconsistent mapping —
    any :class:`CamJError`) is an infeasibility boundary just like a
    simulation-time failure, so it becomes a failed point instead of
    aborting the sweep.
    """
    buildable: List[Tuple[float, Design]] = []
    failed: List[SweepPoint] = []
    for value in values:
        try:
            buildable.append((value, _as_design(build_one(value))))
        except CamJError as error:
            failed.append(SweepPoint(parameter=value, report=None,
                                     failure=str(error)))
    return buildable, failed


def _merge_points(values: Sequence[float], simulated: List[SweepPoint],
                  failed: List[SweepPoint]) -> List[SweepPoint]:
    by_parameter = {point.parameter: point
                    for point in [*simulated, *failed]}
    return [by_parameter[value] for value in values]


def sweep_parameter(builder_for_value: Callable[[float], BuilderResult],
                    values: Sequence[float],
                    options: Optional[SimOptions] = None,
                    simulator: Optional[Simulator] = None
                    ) -> List[SweepPoint]:
    """Evaluate ``builder_for_value(value)`` across ``values``.

    The generic sweep: the parameter may change anything — a process
    node, a buffer size, a kernel width — as long as the builder returns
    a complete design for each value.  Points are simulated in parallel
    and come back in input order.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    simulator = simulator if simulator is not None else Simulator(options)
    buildable, failed = _build_points(values, builder_for_value)
    results = simulator.run_many([design for _, design in buildable],
                                 options=options)
    simulated = _to_points([value for value, _ in buildable], results)
    return _merge_points(values, simulated, failed)


def sweep_frame_rate(builder: Callable[[], BuilderResult],
                     frame_rates: Sequence[float],
                     simulator: Optional[Simulator] = None
                     ) -> List[SweepPoint]:
    """Evaluate one design across FPS targets.

    Analog energy generally rises with FPS (faster settling, higher ADC
    rates) while leakage-per-frame falls; the sweep exposes the trade-off
    and the FPS where the digital pipeline stops fitting.
    """
    if not frame_rates:
        raise ConfigurationError("sweep needs at least one frame rate")
    simulator = simulator if simulator is not None else Simulator()
    # The design is the same at every point; build it exactly once — its
    # pre-simulation checks then run once for the whole sweep, since the
    # session memoizes them per design.
    try:
        design = _as_design(builder())
    except CamJError as error:
        return [SweepPoint(parameter=fps, report=None, failure=str(error))
                for fps in frame_rates]
    # Vary only the FPS: session defaults (cycle_accurate, exposure
    # slots, ...) apply at every point instead of being silently reset.
    base = simulator.options
    items = [(design, base.replace(frame_rate=fps)) for fps in frame_rates]
    results = simulator.run_many(items)
    return _to_points(frame_rates, results)


def sweep_nodes(builder_for_node: Callable[[float], Callable],
                nodes: Sequence[float],
                frame_rate: float = 30.0,
                simulator: Optional[Simulator] = None) -> List[SweepPoint]:
    """Evaluate a node-parameterized design across process nodes.

    ``builder_for_node(node)`` must return a zero-argument builder for the
    design instantiated at that node.
    """
    if not nodes:
        raise ConfigurationError("sweep needs at least one node")
    return sweep_parameter(lambda node: builder_for_node(node)(), nodes,
                           options=SimOptions(frame_rate=frame_rate),
                           simulator=simulator)
