"""Parameter sweeps: the 1-D compatibility layer over ``repro.explore``.

A sweep is a one-axis exploration: the generic machinery lives in
:func:`repro.explore.engine.explore`, which enumerates a parameter
space, batches every point through
:meth:`repro.api.Simulator.run_many` (parallel, content-hash
deduplicated), and keeps infeasible points — builder rejections and
simulation-time failures alike — as typed data instead of aborting.
These wrappers keep the historical ``sweep_*`` signatures and the
:class:`SweepPoint` shape for existing call sites; new code wanting
more than one axis or named objectives should use the engine directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.api.design import Design
from repro.api.result import SimOptions
from repro.api.simulator import Simulator
from repro.energy.report import EnergyReport
from repro.exceptions import ConfigurationError
from repro.explore.engine import ExplorationResult, explore
from repro.explore.space import OPTIONS_PREFIX, choice

#: What a sweep builder may return.
BuilderResult = Union[Design, tuple]

#: Axis name the 1-D shims bind the swept value under.
_VALUE = "value"

#: The sweeps only need the reports; this never-failing objective keeps
#: the engine from rejecting points over an unrelated metric.
_SWEEP_OBJECTIVES = ("energy_per_frame",)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep.

    ``parameter`` carries whatever value the sweep bound — a frame rate,
    a process node, a memory technology name — so non-numeric sweeps are
    first-class rather than squeezed through ``float``.
    """

    parameter: Any
    report: Optional[EnergyReport]
    failure: Optional[str]

    @property
    def feasible(self) -> bool:
        return self.report is not None


def _to_sweep_points(values: Sequence[Any],
                     result: ExplorationResult) -> List[SweepPoint]:
    return [SweepPoint(parameter=value, report=point.report,
                       failure=point.failure)
            for value, point in zip(values, result.points)]


def sweep_parameter(builder_for_value: Callable[[Any], BuilderResult],
                    values: Sequence[Any],
                    options: Optional[SimOptions] = None,
                    simulator: Optional[Simulator] = None
                    ) -> List[SweepPoint]:
    """Evaluate ``builder_for_value(value)`` across ``values``.

    The generic sweep: the parameter may change anything — a process
    node, a buffer size, a memory technology name — as long as the
    builder returns a complete design for each value.  Points are
    simulated in parallel and come back in input order.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    result = explore(choice(_VALUE, list(values)),
                     lambda **params: builder_for_value(params[_VALUE]),
                     objectives=_SWEEP_OBJECTIVES, options=options,
                     simulator=simulator, annotate=False,
                     engine="object")
    return _to_sweep_points(values, result)


def sweep_frame_rate(builder: Callable[[], BuilderResult],
                     frame_rates: Sequence[float],
                     simulator: Optional[Simulator] = None
                     ) -> List[SweepPoint]:
    """Evaluate one design across FPS targets.

    Analog energy generally rises with FPS (faster settling, higher ADC
    rates) while leakage-per-frame falls; the sweep exposes the trade-off
    and the FPS where the digital pipeline stops fitting.  The frame
    rate is an ``options.``-axis, so the design is built (and checked)
    exactly once and the session's other defaults apply at every point.
    """
    if not frame_rates:
        raise ConfigurationError("sweep needs at least one frame rate")
    # Sweep points hand the full EnergyReport to callers, which only the
    # per-point object path materializes; the vector fast path carries
    # metric columns instead of reports, so it is pinned off here.
    result = explore(choice(OPTIONS_PREFIX + "frame_rate",
                            list(frame_rates)),
                     lambda **_: builder(),
                     objectives=_SWEEP_OBJECTIVES,
                     simulator=simulator if simulator is not None
                     else Simulator(),
                     annotate=False, engine="object")
    return _to_sweep_points(frame_rates, result)


def sweep_nodes(builder_for_node: Callable[[float], Callable],
                nodes: Sequence[float],
                frame_rate: float = 30.0,
                simulator: Optional[Simulator] = None) -> List[SweepPoint]:
    """Evaluate a node-parameterized design across process nodes.

    ``builder_for_node(node)`` must return a zero-argument builder for the
    design instantiated at that node.
    """
    if not nodes:
        raise ConfigurationError("sweep needs at least one node")
    return sweep_parameter(lambda node: builder_for_node(node)(), nodes,
                           options=SimOptions(frame_rate=frame_rate),
                           simulator=simulator)
