"""Parameter sweeps over a rebuildable design.

A sweep drives a *builder* — any callable returning ``(stages, system,
mapping)`` — across a parameter range and records the resulting reports,
marking points where the design stops being feasible (TimingError /
StallError) instead of aborting: infeasibility boundaries are exactly what
a designer sweeps to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.energy.report import EnergyReport
from repro.exceptions import CamJError, ConfigurationError
from repro.sim.simulator import simulate


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep."""

    parameter: float
    report: Optional[EnergyReport]
    failure: Optional[str]

    @property
    def feasible(self) -> bool:
        return self.report is not None


def _evaluate(builder: Callable, frame_rate: float) -> EnergyReport:
    stages, system, mapping = builder()
    return simulate(stages, system, mapping, frame_rate=frame_rate)


def sweep_frame_rate(builder: Callable, frame_rates: Sequence[float]
                     ) -> List[SweepPoint]:
    """Evaluate one design across FPS targets.

    Analog energy generally rises with FPS (faster settling, higher ADC
    rates) while leakage-per-frame falls; the sweep exposes the trade-off
    and the FPS where the digital pipeline stops fitting.
    """
    if not frame_rates:
        raise ConfigurationError("sweep needs at least one frame rate")
    points = []
    for fps in frame_rates:
        try:
            report = _evaluate(builder, fps)
            points.append(SweepPoint(parameter=fps, report=report,
                                     failure=None))
        except CamJError as error:
            points.append(SweepPoint(parameter=fps, report=None,
                                     failure=str(error)))
    return points


def sweep_nodes(builder_for_node: Callable[[float], Callable],
                nodes: Sequence[float],
                frame_rate: float = 30.0) -> List[SweepPoint]:
    """Evaluate a node-parameterized design across process nodes.

    ``builder_for_node(node)`` must return a zero-argument builder for the
    design instantiated at that node.
    """
    if not nodes:
        raise ConfigurationError("sweep needs at least one node")
    points = []
    for node in nodes:
        try:
            report = _evaluate(builder_for_node(node), frame_rate)
            points.append(SweepPoint(parameter=node, report=report,
                                     failure=None))
        except CamJError as error:
            points.append(SweepPoint(parameter=node, report=None,
                                     failure=str(error)))
    return points
