"""Compatibility shim: bottleneck analysis lives in ``repro.explore``.

The implementation moved to :mod:`repro.explore.annotate`, where the
exploration engine uses it to annotate Pareto-frontier points.  This
module keeps the historical import path working.
"""

from repro.explore.annotate import (  # noqa: F401
    _HINTS,
    Bottleneck,
    dominant_category,
    identify_bottlenecks,
)

__all__ = ["Bottleneck", "identify_bottlenecks", "dominant_category"]
