"""Report-to-report comparison: quantify what a re-design bought.

The Sec. 6 explorations are all pairwise comparisons of energy reports
(2D-In vs 2D-Off, SRAM vs STT-RAM, digital vs mixed); this module provides
that arithmetic with per-category attribution of the delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import units
from repro.energy.report import Category, EnergyReport
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ReportDelta:
    """Energy difference between a baseline and a candidate design."""

    baseline_name: str
    candidate_name: str
    baseline_total: float
    candidate_total: float
    by_category: Dict[Category, float]  # candidate - baseline, per category

    @property
    def total_delta(self) -> float:
        """Candidate minus baseline (negative = candidate saves energy)."""
        return self.candidate_total - self.baseline_total

    @property
    def savings_fraction(self) -> float:
        """Fraction of the baseline the candidate saves."""
        return -self.total_delta / self.baseline_total

    def biggest_mover(self) -> Category:
        """The category whose change contributes most to the delta."""
        return max(self.by_category, key=lambda c: abs(self.by_category[c]))

    def describe(self) -> str:
        direction = "saves" if self.total_delta < 0 else "costs"
        lines = [f"{self.candidate_name} vs {self.baseline_name}: "
                 f"{direction} "
                 f"{units.format_energy(abs(self.total_delta))} "
                 f"({100 * abs(self.savings_fraction):.1f}%)"]
        for category, delta in sorted(self.by_category.items(),
                                      key=lambda kv: kv[1]):
            if delta == 0:
                continue
            sign = "-" if delta < 0 else "+"
            lines.append(f"  {category.value:<7} {sign}"
                         f"{units.format_energy(abs(delta))}")
        return "\n".join(lines)


def compare_reports(baseline: EnergyReport, candidate: EnergyReport
                    ) -> ReportDelta:
    """Per-category delta between two simulated designs."""
    if baseline.total_energy <= 0:
        raise ConfigurationError(
            "baseline report has no energy; nothing to compare against")
    base_rollup = baseline.by_category()
    cand_rollup = candidate.by_category()
    categories = set(base_rollup) | set(cand_rollup)
    deltas = {category: (cand_rollup.get(category, 0.0)
                         - base_rollup.get(category, 0.0))
              for category in categories}
    return ReportDelta(
        baseline_name=baseline.system_name,
        candidate_name=candidate.system_name,
        baseline_total=baseline.total_energy,
        candidate_total=candidate.total_energy,
        by_category=deltas)


def savings_fraction(baseline: EnergyReport, candidate: EnergyReport
                     ) -> float:
    """Shorthand: fraction of the baseline's energy the candidate saves."""
    return compare_reports(baseline, candidate).savings_fraction
