"""The ``distributed`` executor: batches sharded to remote workers.

A :class:`DistributedExecutor` turns one ``run_many`` batch into tasks
on a :class:`~repro.exec.queue.WorkQueue`, then harvests outcomes as
``repro worker`` processes claim, execute, and complete them over the
dispatch HTTP endpoints.  The executor never talks HTTP itself — it
shares the queue object with the serve transport — so the same
instance can serve many concurrent batches (the serve daemon's job
workers all submit through one shared session).

Robustness model (see :mod:`repro.exec.queue` for the lease protocol):

* lease expiries surface here as re-dispatches the executor counts in
  ``BatchStats.lease_expiries``; a task quarantined after
  :data:`~repro.resilience.policy.QUARANTINE_THRESHOLD` expiries comes
  back as a typed :class:`~repro.exceptions.WorkerCrashError` result —
  a poison task fails loudly instead of cycling forever;
* the coordinator **degrades to local execution** rather than hang: if
  no worker ever connects within the fallback window, or every
  registered worker has gone silent with no leases left to wait out,
  the still-pending tasks are withdrawn from the queue and run through
  the ordinary thread backend in-process;
* completed results are stored to the session's *memory* cache tier
  only — the worker already wrote the shared disk tier, and writing it
  again from the coordinator would double the I/O on every point.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Any, Dict, Optional

from repro.api.result import SimResult
from repro.exceptions import WorkerCrashError
from repro.exec.base import SimulationExecutor, cacheable_result
from repro.exec.local import ThreadExecutor
from repro.exec.queue import WorkQueue

#: How long the harvest loop sleeps between progress checks.  Wakeups
#: also arrive via the queue's condition on every completion, so this
#: bounds only the latency of lease-expiry sweeps.
POLL_S = 0.05


class DistributedExecutor(SimulationExecutor):
    """Execute batches through a lease-based remote work queue.

    Not name-registered: it needs its :class:`WorkQueue`, so sessions
    receive it as an instance — ``Simulator(executor=
    DistributedExecutor(queue))`` — which is exactly what
    ``repro serve --dispatch`` builds.

    ``fallback_after_s`` is the patience for the *first* worker to
    connect before batches degrade to local execution (default: one
    lease TTL).  Once any worker has registered, fallback instead
    triggers when no live worker remains and no outstanding lease is
    left to wait out.
    """

    name = "distributed"
    requires_serializable = True

    def __init__(self, queue: WorkQueue, *,
                 fallback_after_s: Optional[float] = None,
                 poll_s: float = POLL_S) -> None:
        self.queue = queue
        if fallback_after_s is None:
            fallback_after_s = queue.lease_ttl_s
        self.fallback_after_s = float(fallback_after_s)
        self.poll_s = float(poll_s)
        self._local = ThreadExecutor()
        self._lock = threading.Lock()
        self._batch_seq = 0
        self._no_worker_deadline: Optional[float] = None

    def describe(self) -> Dict[str, Any]:
        doc = super().describe()
        doc["dispatch"] = self.queue.describe()
        return doc

    def run_pending(self, session, pending, max_workers, worker_ids,
                    counters) -> Dict[Any, SimResult]:
        with self._lock:
            batch = self._batch_seq
            self._batch_seq += 1
            if self._no_worker_deadline is None:
                self._no_worker_deadline = (time.monotonic()
                                            + self.fallback_after_s)
        if session._cache_enabled:
            with session._lock:
                session._cache_misses += len(pending)

        by_id: Dict[str, Any] = {}
        tasks = []
        for index, (key, (design, resolved)) in enumerate(pending.items()):
            task_id = f"b{batch}-{index}"
            by_id[task_id] = key
            tasks.append({"task_id": task_id,
                          "design": design.to_dict(),
                          "options": resolved.to_dict(),
                          "design_hash": key[0],
                          "attempt": 0})
        self.queue.enqueue(tasks)

        outcomes: Dict[Any, SimResult] = {}
        unresolved = set(by_id)
        while unresolved:
            expired = self.queue.expire_leases()
            if expired:
                counters.add("lease_expiries", expired)
            harvested = self.queue.collect(list(unresolved))
            for task_id, outcome in harvested.items():
                key = by_id[task_id]
                design, resolved = pending[key]
                outcomes[key] = self._settle(session, key, design,
                                             resolved, outcome,
                                             worker_ids, counters)
                unresolved.discard(task_id)
            if not unresolved:
                break
            if harvested or expired:
                continue  # more may already be ready — do not sleep yet
            if self._should_fall_back():
                reclaimed = self.queue.withdraw(list(unresolved))
                if reclaimed:
                    local = {by_id[doc["task_id"]]:
                             pending[by_id[doc["task_id"]]]
                             for doc in reclaimed}
                    outcomes.update(self._local.run_pending(
                        session, local, max_workers, worker_ids,
                        counters))
                    unresolved.difference_update(
                        doc["task_id"] for doc in reclaimed)
                    continue
            self.queue.wait_progress(self.poll_s)
        return outcomes

    def _settle(self, session, key, design, resolved, outcome,
                worker_ids, counters) -> SimResult:
        if outcome["state"] == "done":
            worker_ids.add(outcome["worker"])
            result = replace(SimResult.from_dict(outcome["result"]),
                             design_hash=key[0])
            if session._cache_enabled and cacheable_result(result):
                # Memory tier only: the worker wrote the shared disk
                # tier before completing its lease.
                with session._lock:
                    session._cache.setdefault(key, result)
                    session._cache_hashes.add(key[0])
            return result
        counters.add("quarantined")
        return SimResult(
            design_name=design.name, options=resolved,
            design_hash=key[0],
            error=WorkerCrashError(
                f"design {design.name!r} lost {outcome['strikes']} "
                f"lease(s) to dead workers and is quarantined"))

    def _should_fall_back(self) -> bool:
        """Whether still-pending tasks should run locally instead.

        Never-connected: past the fallback window with zero
        registrations, every batch runs locally until a worker shows
        up.  Stranded: the fleet went silent (no live heartbeats) and
        no lease is left whose expiry could change that — waiting any
        longer cannot make progress, so the coordinator finishes the
        work itself.  Either way ``run_many`` cannot hang.
        """
        now = time.monotonic()
        if not self.queue.ever_registered:
            return now >= (self._no_worker_deadline or now)
        return (self.queue.live_workers(now) == 0
                and self.queue.outstanding_leases() == 0)
