"""The executor abstraction behind :meth:`repro.api.Simulator.run_many`.

A :class:`SimulationExecutor` is the strategy object that takes one
batch's cache-missing jobs and turns them into results: inline in the
calling thread, fanned across a thread or process pool, or sharded to
remote worker processes over the dispatch work queue.  The
:class:`~repro.api.Simulator` session owns everything an executor
needs — the result cache, the retry policy, the persistent pools — and
passes itself into :meth:`SimulationExecutor.run_pending`, so executor
instances themselves stay stateless per batch and one instance may be
shared across sessions (the serve daemon's distributed executor is).

Backends are looked up by name through :mod:`repro.exec.registry`;
``Simulator(executor="thread")`` and friends resolve there, and the
``REPRO_EXECUTOR`` environment variable picks the default backend for
sessions that do not name one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Dict, Tuple

from repro.resilience.policy import FailureClass, classify

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.result import SimResult

#: Environment variable naming the default executor backend for
#: sessions constructed without an explicit ``executor=`` argument.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Sentinel first element of batch keys for unserializable designs:
#: such jobs still fan out to workers but bypass dedup and the cache.
UNCACHED = object()


def cacheable_result(result: "SimResult") -> bool:
    """Whether a result is a property of its ``(design, options)`` key.

    Reports and permanent failures are; transient, timeout, and
    worker-crash outcomes describe one unlucky execution, and caching
    them would turn a recoverable hiccup into a sticky failure that
    every retry would then hit.
    """
    return result.ok or classify(result.error) is FailureClass.PERMANENT


class SimulationExecutor(ABC):
    """Strategy interface for executing one batch's unique pending jobs.

    ``run_pending(session, pending, max_workers, worker_ids, counters)``
    receives the calling :class:`~repro.api.Simulator` session, the
    ``{key: (design, options)}`` jobs that missed the cache, the batch's
    worker budget, a set to record the distinct workers used (thread
    idents, process pids, or remote worker ids — only the cardinality is
    observed), and the batch's mutable resilience counters.  It must
    return ``{key: SimResult}`` for every pending key; retry policy,
    quarantine, and cache stores are the executor's responsibility
    (helpers on the session do the heavy lifting).
    """

    #: Registry name of the backend (also what ``pool_info()`` reports).
    name: str = "?"

    #: Backends that ship serialized payloads to other processes cannot
    #: run designs whose parts do not serialize; ``run_many`` executes
    #: those inline in the calling thread instead of handing them over.
    requires_serializable: bool = False

    @abstractmethod
    def run_pending(self, session, pending: Dict[Any, Tuple],
                    max_workers: int, worker_ids: set,
                    counters) -> Dict[Any, "SimResult"]:
        """Execute every pending job; return ``{key: SimResult}``."""

    def pool_width_floor(self, session) -> int:
        """Lower bound on the batch's worker budget (pool reuse).

        Pool-backed executors return the width of the session pool they
        already grew so a narrow follow-up batch keeps reporting (and
        reusing) the wide pool instead of shrinking it.
        """
        return 0

    def describe(self) -> Dict[str, Any]:
        """Introspection document for dashboards (``/stats``)."""
        return {"backend": self.name,
                "requires_serializable": self.requires_serializable}

    def close(self, session) -> None:
        """Release executor-owned resources (session pools are not ours)."""
