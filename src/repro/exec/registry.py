"""Name → backend registry for :class:`~repro.exec.SimulationExecutor`.

The built-in backends (``inline``, ``thread``, ``process``) register
themselves when :mod:`repro.exec` is imported; external code may add
its own with :func:`register_executor` and sessions pick them up by
name — ``Simulator(executor="mybackend")`` — or by instance for
backends that need construction arguments (the ``distributed``
executor takes its work queue that way).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.exec.base import EXECUTOR_ENV, SimulationExecutor

#: Factories producing a fresh executor per session, keyed by name.
_FACTORIES: Dict[str, Callable[[], SimulationExecutor]] = {}

#: The backend used when neither the session nor the environment
#: names one.
DEFAULT_EXECUTOR = "thread"


def register_executor(name: str,
                      factory: Callable[[], SimulationExecutor], *,
                      replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    Re-registering an existing name raises unless ``replace=True`` —
    silently shadowing a built-in is almost always a bug.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"executor name must be a non-empty string, got {name!r}")
    if name in _FACTORIES and not replace:
        raise ConfigurationError(
            f"executor {name!r} is already registered; "
            f"pass replace=True to shadow it")
    _FACTORIES[name] = factory


def available_executors() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def create_executor(name: str) -> SimulationExecutor:
    """A fresh executor instance for ``name``.

    Unknown names raise :class:`~repro.exceptions.ConfigurationError`
    listing what is available (``distributed`` is deliberately not
    name-constructible: it needs a work queue, so it is passed to the
    session as an instance).
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"executor must be one of {available_executors()}, "
            f"got {name!r}")
    return factory()


def resolve_executor(spec: Union[str, SimulationExecutor, None]
                     ) -> SimulationExecutor:
    """The executor a session should use for ``spec``.

    ``None`` defers to the ``REPRO_EXECUTOR`` environment variable and
    falls back to the ``thread`` default; strings resolve through the
    registry; instances pass through untouched.
    """
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV, "").strip() or DEFAULT_EXECUTOR
    if isinstance(spec, SimulationExecutor):
        return spec
    if isinstance(spec, str):
        return create_executor(spec)
    raise ConfigurationError(
        f"executor must be a backend name or a SimulationExecutor, "
        f"got {type(spec).__name__}")
