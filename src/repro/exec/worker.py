"""The ``repro worker`` process: pulls leased tasks, executes, reports.

A :class:`DispatchWorker` connects to a coordinator started with
``repro serve --dispatch`` (or ``repro dispatch``), registers itself,
and loops: claim a task batch, execute every task through a local
:class:`~repro.api.Simulator` (sharing the concurrent-writer-safe disk
cache tier with the coordinator and its sibling workers via
``REPRO_CACHE_DIR``), post the results back, repeat.  A background
thread renews the worker's leases by heartbeating at the interval the
coordinator announced at registration.

Failure behavior:

* SIGTERM → graceful: the current batch is finished and posted, the
  worker deregisters (releasing nothing — its leases are complete) and
  exits 0;
* SIGKILL or a crash (including injected ``REPRO_FAULTS`` kills, which
  the worker's simulator inherits from its environment) → the
  heartbeats stop, the coordinator expires the leases, and the tasks
  are re-dispatched elsewhere;
* a coordinator restart → requests fail with ``UnknownWorker`` (409)
  and the worker silently re-registers under a fresh id;
* an unreachable coordinator → capped-backoff reconnection, forever
  (workers are cattle; the supervisor decides when to give up).

``run_supervised`` implements ``repro worker --respawn``: a parent
process that restarts the worker child whenever it dies abnormally —
the distributed analogue of the process pool healing its workers.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.api.design import Design
from repro.api.result import SimOptions, SimResult
from repro.api.simulator import Simulator
from repro.resilience.policy import classify
from repro.serve.client import ServeClient, ServeError

#: Idle poll bounds while the queue has nothing to claim.
IDLE_POLL_MIN_S = 0.02
IDLE_POLL_MAX_S = 0.5

#: Reconnect backoff bounds while the coordinator is unreachable.
RECONNECT_MIN_S = 0.1
RECONNECT_MAX_S = 5.0

#: Tasks requested per claim.  Small enough that a mid-batch death
#: strands few leases, large enough that claim round-trips do not
#: dominate sub-millisecond simulations.
DEFAULT_BATCH_SIZE = 32


class DispatchWorker:
    """One pull-based worker process attached to a coordinator."""

    def __init__(self, url: str, *,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 cache_dir: Optional[str] = None,
                 executor: str = "inline",
                 announce: bool = True) -> None:
        self.client = ServeClient.from_url(url)
        self.batch_size = max(int(batch_size), 1)
        self.announce = announce
        simulator_kwargs: Dict[str, Any] = {"executor": executor}
        if cache_dir is not None:
            simulator_kwargs["cache_dir"] = cache_dir
        self.simulator = Simulator(**simulator_kwargs)
        self.worker_id: Optional[str] = None
        self.heartbeat_s = 5.0
        self._stop = threading.Event()
        self._in_progress_lock = threading.Lock()
        self._in_progress: List[str] = []
        self._stats = {"claimed": 0, "completed": 0, "batches": 0,
                       "reconnects": 0, "reregistrations": 0}

    # --- protocol plumbing ------------------------------------------------

    def _say(self, message: str) -> None:
        if self.announce:
            print(f"repro worker: {message}", flush=True)

    def _register(self) -> None:
        import os
        grant = self.client._request(
            "POST", "/dispatch/register",
            {"pid": os.getpid(), "executor": "inline"})
        if self.worker_id is not None:
            self._stats["reregistrations"] += 1
        self.worker_id = grant["worker_id"]
        self.heartbeat_s = float(grant["heartbeat_s"])
        self._say(f"registered as {self.worker_id} "
                  f"(lease ttl {grant['lease_ttl_s']:g}s, "
                  f"heartbeat {self.heartbeat_s:g}s)")

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            worker_id = self.worker_id
            if worker_id is None:
                continue
            with self._in_progress_lock:
                held = list(self._in_progress)
            try:
                self.client._request("POST", "/dispatch/heartbeat",
                                     {"worker_id": worker_id,
                                      "task_ids": held})
            except (ServeError, OSError):
                # A lost beat is survivable (three are not); the main
                # loop owns re-registration and reconnection.
                pass

    def stop(self) -> None:
        """Request a graceful exit after the current batch."""
        self._stop.set()

    # --- task execution ---------------------------------------------------

    def _execute(self, task: Dict[str, Any]) -> SimResult:
        """Run one leased task, with local transient retries.

        The coordinator's ``attempt`` is the base fed to the fault
        injector so a task re-dispatched after a lease expiry is a
        *retry* there (deterministic ``kill_rate`` faults spare it);
        local transient retries stack on top.
        """
        design = Design.from_dict(task["design"])
        options = SimOptions.from_dict(task["options"])
        base_attempt = int(task.get("attempt", 0))
        policy = self.simulator._retry
        local_attempt = 0
        while True:
            result = self.simulator._run_resolved(
                design, options, probe_disk=True,
                attempt=base_attempt + local_attempt)
            if result.ok or result.cached:
                return result
            if local_attempt + 1 >= policy.max_attempts \
                    or not policy.retryable(classify(result.error)):
                return result
            time.sleep(policy.backoff_s(local_attempt, task["task_id"]))
            local_attempt += 1

    # --- the pull loop ----------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Claim-execute-complete until stopped; returns a summary."""
        started = time.monotonic()
        heartbeats = threading.Thread(target=self._heartbeat_loop,
                                      name="repro-worker-heartbeat",
                                      daemon=True)
        heartbeats.start()
        idle_poll = IDLE_POLL_MIN_S
        reconnect = RECONNECT_MIN_S
        try:
            while not self._stop.is_set():
                if self.worker_id is None:
                    try:
                        self._register()
                        reconnect = RECONNECT_MIN_S
                    except (ServeError, OSError):
                        self._stats["reconnects"] += 1
                        self._stop.wait(reconnect)
                        reconnect = min(reconnect * 2, RECONNECT_MAX_S)
                        continue
                try:
                    tasks = self.client._request(
                        "POST", "/dispatch/claim",
                        {"worker_id": self.worker_id,
                         "max_tasks": self.batch_size})["tasks"]
                except ServeError as error:
                    if error.error_type == "UnknownWorker":
                        self.worker_id = None  # coordinator restarted
                        continue
                    raise
                except OSError:
                    self._stats["reconnects"] += 1
                    self._stop.wait(reconnect)
                    reconnect = min(reconnect * 2, RECONNECT_MAX_S)
                    continue
                reconnect = RECONNECT_MIN_S
                if not tasks:
                    self._stop.wait(idle_poll)
                    idle_poll = min(idle_poll * 2, IDLE_POLL_MAX_S)
                    continue
                idle_poll = IDLE_POLL_MIN_S
                self._run_batch(tasks)
        finally:
            self._stop.set()
            self._deregister()
        summary = dict(self._stats)
        summary["worker_id"] = self.worker_id
        summary["elapsed_s"] = round(time.monotonic() - started, 3)
        return summary

    def _run_batch(self, tasks: List[Dict[str, Any]]) -> None:
        with self._in_progress_lock:
            self._in_progress = [task["task_id"] for task in tasks]
        self._stats["claimed"] += len(tasks)
        self._stats["batches"] += 1
        results = []
        try:
            for task in tasks:
                result = self._execute(task)
                results.append({"task_id": task["task_id"],
                                "result": result.to_dict()})
        finally:
            # Post whatever finished even when stopping mid-batch (or
            # when one task raised): completed work must not wait for a
            # lease expiry to be rediscovered.
            posted = self._post_results(results)
            with self._in_progress_lock:
                self._in_progress = []
            if posted:
                self._stats["completed"] += posted

    def _post_results(self, results: List[Dict[str, Any]]) -> int:
        if not results:
            return 0
        try:
            accepted = self.client._request(
                "POST", "/dispatch/complete",
                {"worker_id": self.worker_id,
                 "results": results})["accepted"]
            return int(accepted)
        except ServeError as error:
            if error.error_type == "UnknownWorker":
                # Coordinator restarted mid-batch: these leases are
                # gone; the new incarnation will re-dispatch the tasks.
                self.worker_id = None
                return 0
            raise
        except OSError:
            # One bounded retry after a beat; then let the leases
            # expire and the tasks re-dispatch.
            self._stop.wait(min(self.heartbeat_s, 1.0))
            try:
                accepted = self.client._request(
                    "POST", "/dispatch/complete",
                    {"worker_id": self.worker_id,
                     "results": results})["accepted"]
                return int(accepted)
            except (ServeError, OSError):
                return 0

    def _deregister(self) -> None:
        if self.worker_id is None:
            return
        try:
            self.client._request("POST", "/dispatch/deregister",
                                 {"worker_id": self.worker_id})
            self._say(f"{self.worker_id} deregistered")
        except (ServeError, OSError):
            pass  # the coordinator will expire whatever we held


def run_worker(url: str, *, batch_size: int = DEFAULT_BATCH_SIZE,
               cache_dir: Optional[str] = None,
               announce: bool = True) -> Dict[str, Any]:
    """CLI body of ``repro worker``: run until SIGTERM/SIGINT.

    Installs signal handlers (main thread only) that request a graceful
    stop — finish the batch, post results, deregister.
    """
    worker = DispatchWorker(url, batch_size=batch_size,
                            cache_dir=cache_dir, announce=announce)
    installed = []
    if threading.current_thread() is threading.main_thread():
        def _graceful(signum, frame):  # noqa: ARG001
            worker.stop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((signum, signal.signal(signum,
                                                        _graceful)))
            except (ValueError, OSError):
                pass
    try:
        return worker.run()
    finally:
        for signum, previous in installed:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass


def run_supervised(argv: List[str], announce: bool = True) -> int:
    """``repro worker --respawn``: restart the child when it dies badly.

    Remote workers have no pool above them to heal a crash (injected
    ``REPRO_FAULTS`` kills included), so the supervisor is that layer:
    a child exiting non-zero is relaunched after a short pause; a clean
    exit (graceful SIGTERM path) ends the loop.  SIGTERM to the
    supervisor is forwarded to the child, so the pair tears down as one
    unit.
    """
    command = [sys.executable, "-m", "repro", "worker", *argv]
    stopping = threading.Event()
    child: List[Optional[subprocess.Popen]] = [None]

    def _forward(signum, frame):  # noqa: ARG001
        stopping.set()
        current = child[0]
        if current is not None and current.poll() is None:
            current.terminate()

    installed = []
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((signum, signal.signal(signum,
                                                        _forward)))
            except (ValueError, OSError):
                pass
    respawns = 0
    try:
        while True:
            child[0] = subprocess.Popen(command)
            code = child[0].wait()
            if code == 0 or stopping.is_set():
                return 0 if stopping.is_set() else code
            respawns += 1
            if announce:
                print(f"repro worker: child exited {code}; "
                      f"respawn #{respawns}", flush=True)
            if stopping.wait(0.2):
                return 0
    finally:
        for signum, previous in installed:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
