"""Pluggable execution backends for :meth:`repro.api.Simulator.run_many`.

``inline``, ``thread``, and ``process`` run in (or from) the calling
process and reproduce the pre-registry pool semantics bit-identically;
``distributed`` shards batches across ``repro worker`` processes through
a lease-based work queue served over HTTP (see :mod:`repro.exec.queue`
and :mod:`repro.exec.distributed`).
"""

from repro.exec.base import (EXECUTOR_ENV, UNCACHED, SimulationExecutor,
                             cacheable_result)
from repro.exec.local import InlineExecutor, ProcessExecutor, ThreadExecutor
from repro.exec.registry import (DEFAULT_EXECUTOR, available_executors,
                                 create_executor, register_executor,
                                 resolve_executor)

register_executor("inline", InlineExecutor)
register_executor("thread", ThreadExecutor)
register_executor("process", ProcessExecutor)

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV",
    "InlineExecutor",
    "ProcessExecutor",
    "SimulationExecutor",
    "ThreadExecutor",
    "UNCACHED",
    "available_executors",
    "cacheable_result",
    "create_executor",
    "register_executor",
    "resolve_executor",
]
