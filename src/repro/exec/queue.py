"""The coordinator-side lease-based work queue of the ``distributed``
executor.

One :class:`WorkQueue` sits between the :class:`~repro.exec.distributed.
DistributedExecutor` (which enqueues task batches and harvests their
outcomes) and the HTTP dispatch endpoints (which ``repro worker``
processes call to register, claim, heartbeat, complete, and deregister).
It is a plain lock-protected in-memory structure: every method is fast
and non-blocking, safe to call from asyncio request handlers and from
executor threads alike.

Fault tolerance is the design center:

* every claimed task is held under a **lease** (task id + worker id +
  deadline); workers renew their leases by heartbeating;
* a lease that reaches its deadline without renewal — the worker was
  SIGKILLed, partitioned, or hung — **expires**: the task re-enters the
  queue with a strike against its identity and a bumped attempt number
  (so deterministic ``kill_rate`` fault injection does not re-kill the
  retry), and the worker is marked lost;
* a task whose lease expires :data:`~repro.resilience.policy.
  QUARANTINE_THRESHOLD` times is *quarantined* — failed with a terminal
  outcome instead of cycling through workers forever.  Re-dispatched
  crash suspects are flagged ``solo`` and never ride in a batch with
  innocent tasks, mirroring the process pool's solo in-flight window;
* graceful deregistration (worker SIGTERM) releases held leases back to
  the front of the queue with **no** strike — an orderly goodbye is not
  evidence against the task.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.resilience.policy import QUARANTINE_THRESHOLD

#: Environment knobs of the lease protocol (coordinator side; the
#: values are echoed to workers at registration so both sides agree).
LEASE_TTL_ENV = "REPRO_LEASE_TTL_S"
HEARTBEAT_ENV = "REPRO_HEARTBEAT_S"

#: Default lease deadline.  Generous next to per-task runtimes (most
#: simulations are sub-second) because expiry is the *crash* detector,
#: not the scheduler: a false expiry double-executes a task.
DEFAULT_LEASE_TTL_S = 15.0


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number, got {raw!r}") from None


class _Worker:
    """Coordinator-side record of one registered worker."""

    __slots__ = ("worker_id", "meta", "registered_at", "last_heartbeat",
                 "leased", "completed", "expired", "active")

    def __init__(self, worker_id: str, meta: Dict[str, Any],
                 now: float) -> None:
        self.worker_id = worker_id
        self.meta = meta
        self.registered_at = now
        self.last_heartbeat = now
        self.leased = 0
        self.completed = 0
        self.expired = 0
        self.active = True


class _Task:
    """One enqueued task and its strike/attempt accounting."""

    __slots__ = ("task_id", "spec", "attempt", "strikes", "solo")

    def __init__(self, task_id: str, spec: Dict[str, Any],
                 attempt: int = 0) -> None:
        self.task_id = task_id
        self.spec = spec
        self.attempt = attempt
        self.strikes = 0
        self.solo = False

    def wire(self) -> Dict[str, Any]:
        """The claim-response document a worker executes from."""
        return {"task_id": self.task_id, "attempt": self.attempt,
                **self.spec}


class WorkQueue:
    """Lease-based task queue shared by the executor and the dispatch
    endpoints.

    ``lease_ttl_s``/``heartbeat_s`` default to the ``REPRO_LEASE_TTL_S``
    and ``REPRO_HEARTBEAT_S`` environment variables, then to
    :data:`DEFAULT_LEASE_TTL_S` and a third of the lease TTL — three
    missed heartbeats kill a lease.
    """

    def __init__(self, lease_ttl_s: Optional[float] = None,
                 heartbeat_s: Optional[float] = None) -> None:
        if lease_ttl_s is None:
            lease_ttl_s = _env_float(LEASE_TTL_ENV, DEFAULT_LEASE_TTL_S)
        if heartbeat_s is None:
            heartbeat_s = _env_float(HEARTBEAT_ENV, None)
        if heartbeat_s is None:
            heartbeat_s = lease_ttl_s / 3.0
        if lease_ttl_s <= 0:
            raise ConfigurationError(
                f"lease TTL must be positive, got {lease_ttl_s}")
        if not 0 < heartbeat_s <= lease_ttl_s:
            raise ConfigurationError(
                f"heartbeat interval must be in (0, lease_ttl_s], "
                f"got {heartbeat_s}")
        self.lease_ttl_s = float(lease_ttl_s)
        self.heartbeat_s = float(heartbeat_s)
        self._lock = threading.Lock()
        #: Signalled whenever a task reaches a terminal outcome or a
        #: worker (de)registers — what the executor's harvest loop and
        #: its no-worker fallback check wait on.
        self._progress = threading.Condition(self._lock)
        self._pending: deque = deque()  # task_ids awaiting a claim
        self._tasks: Dict[str, _Task] = {}
        #: task_id -> (worker_id, lease deadline, monotonic).
        self._leases: Dict[str, Any] = {}
        #: task_id -> terminal outcome document (collected once).
        self._outcomes: Dict[str, Dict[str, Any]] = {}
        self._workers: Dict[str, _Worker] = {}
        self._worker_seq = 0
        self._ever_registered = False
        self._enqueued_total = 0
        self._completed_total = 0
        self._expired_total = 0
        self._quarantined_total = 0

    # --- executor side ----------------------------------------------------

    def enqueue(self, tasks: List[Dict[str, Any]]) -> None:
        """Add executor task specs (each must carry a unique ``task_id``)."""
        with self._lock:
            for spec in tasks:
                spec = dict(spec)
                task_id = spec.pop("task_id")
                attempt = int(spec.pop("attempt", 0))
                if task_id in self._tasks:
                    raise ConfigurationError(
                        f"task {task_id!r} is already queued")
                self._tasks[task_id] = _Task(task_id, spec, attempt)
                self._pending.append(task_id)
                self._enqueued_total += 1

    def collect(self, task_ids) -> Dict[str, Dict[str, Any]]:
        """Pop and return the terminal outcomes available for ``task_ids``.

        Each outcome is either ``{"state": "done", "worker": id,
        "result": <SimResult dict>}`` or ``{"state": "expired",
        "strikes": n, "attempt": k}`` for a quarantined task.
        """
        harvested: Dict[str, Dict[str, Any]] = {}
        wanted = set(task_ids)
        with self._lock:
            # Scan whichever side is smaller: a 10k-task batch polls
            # this often, and walking all 10k unresolved ids per wake
            # (instead of the few outcomes actually ready) would make
            # the harvest loop quadratic in batch size.
            if len(self._outcomes) < len(wanted):
                ready = [task_id for task_id in self._outcomes
                         if task_id in wanted]
            else:
                ready = [task_id for task_id in wanted
                         if task_id in self._outcomes]
            for task_id in ready:
                harvested[task_id] = self._outcomes.pop(task_id)
        return harvested

    def withdraw(self, task_ids) -> List[Dict[str, Any]]:
        """Reclaim still-pending tasks for local execution (fallback).

        Only tasks nobody holds a lease on are withdrawn; a leased task
        may still complete remotely (or expire and become withdrawable
        later).  Returns the wire documents of the withdrawn tasks.
        """
        withdrawn: List[Dict[str, Any]] = []
        with self._lock:
            wanted = {task_id for task_id in task_ids
                      if task_id in self._tasks
                      and task_id not in self._leases
                      and task_id not in self._outcomes}
            if not wanted:
                return withdrawn
            kept = deque()
            for task_id in self._pending:
                if task_id in wanted:
                    withdrawn.append(self._tasks.pop(task_id).wire())
                else:
                    kept.append(task_id)
            self._pending = kept
        return withdrawn

    def expire_leases(self, now: Optional[float] = None) -> int:
        """Reclaim every lease past its deadline; returns how many.

        Each expiry strikes the task's identity and bumps its attempt;
        under :data:`QUARANTINE_THRESHOLD` strikes the task re-enters
        the queue front as a ``solo`` suspect, at the threshold it is
        failed terminally.  The owning worker is marked lost — its
        heartbeats evidently stopped.
        """
        now = time.monotonic() if now is None else now
        expired = 0
        with self._lock:
            stale = [task_id for task_id, (_, deadline) in
                     self._leases.items() if deadline <= now]
            for task_id in stale:
                worker_id, _ = self._leases.pop(task_id)
                expired += 1
                self._expired_total += 1
                worker = self._workers.get(worker_id)
                if worker is not None:
                    worker.expired += 1
                    worker.active = False
                task = self._tasks[task_id]
                task.strikes += 1
                task.attempt += 1
                if task.strikes >= QUARANTINE_THRESHOLD:
                    del self._tasks[task_id]
                    self._quarantined_total += 1
                    self._outcomes[task_id] = {
                        "state": "expired", "strikes": task.strikes,
                        "attempt": task.attempt, "worker": worker_id}
                else:
                    task.solo = True
                    self._pending.appendleft(task_id)
            if expired:
                self._progress.notify_all()
        return expired

    def wait_progress(self, timeout: float) -> None:
        """Block until something terminal happens (or ``timeout``)."""
        with self._progress:
            self._progress.wait(timeout)

    # --- worker side (called by the dispatch HTTP endpoints) --------------

    def register_worker(self, meta: Optional[Dict[str, Any]] = None
                        ) -> Dict[str, Any]:
        """Admit a worker; returns its id and the lease protocol terms."""
        now = time.monotonic()
        with self._lock:
            self._worker_seq += 1
            worker_id = f"w{self._worker_seq}"
            self._workers[worker_id] = _Worker(worker_id, meta or {}, now)
            self._ever_registered = True
            self._progress.notify_all()
        return {"worker_id": worker_id,
                "lease_ttl_s": self.lease_ttl_s,
                "heartbeat_s": self.heartbeat_s}

    def deregister_worker(self, worker_id: str) -> Dict[str, Any]:
        """Graceful goodbye: release held leases strike-free."""
        released = 0
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                raise KeyError(worker_id)
            worker.active = False
            held = [task_id for task_id, (owner, _) in
                    self._leases.items() if owner == worker_id]
            for task_id in held:
                del self._leases[task_id]
                self._pending.appendleft(task_id)
                released += 1
            if held:
                self._progress.notify_all()
        return {"worker_id": worker_id, "released": released}

    def heartbeat(self, worker_id: str,
                  task_ids: Optional[List[str]] = None) -> Dict[str, Any]:
        """Renew the worker's liveness and its leases' deadlines."""
        now = time.monotonic()
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None or not worker.active:
                raise KeyError(worker_id)
            worker.last_heartbeat = now
            renewed = 0
            for task_id in (task_ids or []):
                lease = self._leases.get(task_id)
                if lease is not None and lease[0] == worker_id:
                    self._leases[task_id] = (worker_id,
                                             now + self.lease_ttl_s)
                    renewed += 1
        return {"worker_id": worker_id, "renewed": renewed}

    def claim(self, worker_id: str, max_tasks: int = 1
              ) -> List[Dict[str, Any]]:
        """Lease up to ``max_tasks`` pending tasks to the worker.

        A ``solo`` suspect (a task already implicated in a lease
        expiry) is claimed strictly alone: it never shares a batch, so
        a repeat crash cannot strike the innocent tasks around it.
        """
        now = time.monotonic()
        claimed: List[Dict[str, Any]] = []
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None or not worker.active:
                raise KeyError(worker_id)
            worker.last_heartbeat = now
            while self._pending and len(claimed) < max(max_tasks, 1):
                task = self._tasks[self._pending[0]]
                if task.solo and claimed:
                    break  # suspects travel alone; stop the batch here
                self._pending.popleft()
                self._leases[task.task_id] = (worker_id,
                                              now + self.lease_ttl_s)
                worker.leased += 1
                claimed.append(task.wire())
                if task.solo:
                    break
        return claimed

    def complete(self, worker_id: str,
                 results: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Accept finished results for leases the worker still holds.

        Results for leases the worker lost (expired and re-dispatched,
        or released at deregistration) are dropped: exactly one outcome
        per task reaches the executor, whichever execution reported
        under a valid lease first.
        """
        accepted = 0
        stale = 0
        now = time.monotonic()
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is None:
                raise KeyError(worker_id)
            worker.last_heartbeat = now
            for item in results:
                task_id = item["task_id"]
                lease = self._leases.get(task_id)
                if lease is None or lease[0] != worker_id:
                    stale += 1
                    continue
                del self._leases[task_id]
                del self._tasks[task_id]
                worker.completed += 1
                self._completed_total += 1
                self._outcomes[task_id] = {"state": "done",
                                           "worker": worker_id,
                                           "result": item["result"]}
                accepted += 1
            if accepted:
                self._progress.notify_all()
        return {"worker_id": worker_id, "accepted": accepted,
                "stale": stale}

    # --- introspection ----------------------------------------------------

    @property
    def ever_registered(self) -> bool:
        """Whether any worker has ever connected to this queue."""
        with self._lock:
            return self._ever_registered

    def live_workers(self, now: Optional[float] = None) -> int:
        """Workers still considered alive (heartbeat within one TTL)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            return sum(1 for worker in self._workers.values()
                       if worker.active
                       and now - worker.last_heartbeat <= self.lease_ttl_s)

    def outstanding_leases(self) -> int:
        with self._lock:
            return len(self._leases)

    def describe(self) -> Dict[str, Any]:
        """The ``/stats`` dispatch document: queue and worker liveness."""
        now = time.monotonic()
        with self._lock:
            workers = [{
                "id": worker.worker_id,
                "pid": worker.meta.get("pid"),
                "alive": worker.active and (now - worker.last_heartbeat
                                            <= self.lease_ttl_s),
                "active": worker.active,
                "last_heartbeat_age_s": round(
                    now - worker.last_heartbeat, 3),
                "leased": worker.leased,
                "completed": worker.completed,
                "expired": worker.expired,
            } for worker in self._workers.values()]
            return {
                "lease_ttl_s": self.lease_ttl_s,
                "heartbeat_s": self.heartbeat_s,
                "queue_depth": len(self._pending),
                "leases_outstanding": len(self._leases),
                "enqueued_total": self._enqueued_total,
                "completed_total": self._completed_total,
                "expired_total": self._expired_total,
                "quarantined_total": self._quarantined_total,
                "workers": workers,
            }
