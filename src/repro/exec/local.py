"""The in-process executor backends: ``inline``, ``thread``, ``process``.

These wrap what :meth:`repro.api.Simulator.run_many` used to hard-code:
the thread-pool fan-out with whole-task deadlines, and the windowed,
self-healing process-pool runner with crash quarantine.  ``inline`` is
the degenerate backend — sequential execution in the calling thread
with the same retry semantics — useful for debugging, deterministic
profiling, and as the coordinator's degraded mode when no distributed
worker ever connects.

All three produce bit-identical results for the same batch; only the
parallelism (and therefore the wall clock and ``workers_used``) differs.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as futures_wait
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.api.design import Design
from repro.api.result import SimOptions, SimResult
from repro.exceptions import ExecutionTimeoutError, WorkerCrashError
from repro.exec.base import (UNCACHED, SimulationExecutor,
                             cacheable_result)
from repro.resilience.policy import QUARANTINE_THRESHOLD, classify


class InlineExecutor(SimulationExecutor):
    """Sequential execution in the calling thread.

    Same cache, retry, and backoff behavior as the thread backend —
    just without a pool, so results are bit-identical while execution
    order is the batch's key order and ``workers_used`` is exactly 1.
    """

    name = "inline"

    def run_pending(self, session, pending, max_workers, worker_ids,
                    counters) -> Dict[Any, SimResult]:
        policy = session._retry
        outcomes: Dict[Any, SimResult] = {}
        for key, (design, resolved) in pending.items():
            worker_ids.add(threading.get_ident())
            attempt = 0
            while True:
                result = session._run_resolved(design, resolved,
                                               probe_disk=False,
                                               attempt=attempt)
                if result.ok or result.cached:
                    break
                if attempt + 1 >= policy.max_attempts \
                        or not policy.retryable(classify(result.error)):
                    break
                counters.add("retries")
                time.sleep(policy.backoff_s(attempt, key))
                attempt += 1
            outcomes[key] = result
        return outcomes


class ThreadExecutor(SimulationExecutor):
    """Fan the batch across the session's persistent thread pool."""

    name = "thread"

    def pool_width_floor(self, session) -> int:
        return session._thread_pool_width or 0

    def run_pending(self, session, pending, max_workers, worker_ids,
                    counters) -> Dict[Any, SimResult]:
        policy = session._retry

        def job(key: Any, design: Design,
                resolved: SimOptions) -> SimResult:
            worker_ids.add(threading.get_ident())
            attempt = 0
            while True:
                # The batch already disk-probed this key; see
                # Simulator._run_resolved.
                result = session._run_resolved(design, resolved,
                                               probe_disk=False,
                                               attempt=attempt)
                if result.ok or result.cached:
                    return result
                if attempt + 1 >= policy.max_attempts \
                        or not policy.retryable(classify(result.error)):
                    return result
                counters.add("retries")
                time.sleep(policy.backoff_s(attempt, key))
                attempt += 1

        with session._pools_lock:
            pool = session._acquire_pool("thread", max_workers)
            futures = {key: pool.submit(job, key, design, resolved)
                       for key, (design, resolved) in pending.items()}

        # A running thread cannot be interrupted, so in thread mode the
        # deadline covers the whole task and is enforced at harvest: a
        # late task is reported as a typed timeout while its thread is
        # left to finish in the background (the stray result is simply
        # dropped — never cached, because the store happens here).
        outcomes: Dict[Any, SimResult] = {}
        deadline = (time.monotonic() + policy.timeout_s
                    if policy.timeout_s is not None else None)
        for key, future in futures.items():
            try:
                if deadline is None:
                    outcomes[key] = future.result()
                else:
                    outcomes[key] = future.result(timeout=max(
                        deadline - time.monotonic(), 0.0))
            except FuturesTimeoutError:
                future.cancel()  # only helps tasks still queued
                counters.add("timeouts")
                design, resolved = pending[key]
                design_hash = key[0] if key[0] is not UNCACHED else None
                outcomes[key] = SimResult(
                    design_name=design.name, options=resolved,
                    design_hash=design_hash,
                    error=ExecutionTimeoutError(
                        f"task {design.name!r} exceeded the "
                        f"{policy.timeout_s:g}s deadline"),
                    elapsed_s=policy.timeout_s)
        return outcomes


class ProcessExecutor(SimulationExecutor):
    """Fan cache-missing jobs out as serialized payloads.

    Workers live as long as the session: the pool initializer runs
    once per worker process (not per batch), and every batch after
    the first reuses the already-warm workers.

    Submission is *windowed* — at most ``max_workers`` tasks are in
    flight — which is what makes worker deaths survivable: when a
    dead worker poisons the executor (``BrokenProcessPool``), the
    suspect set is exactly the in-flight window.  The pool is
    rebuilt, the suspects are re-queued, and a task implicated in
    :data:`~repro.resilience.policy.QUARANTINE_THRESHOLD` pool
    deaths is failed with a typed
    :class:`~repro.exceptions.WorkerCrashError` result instead of
    sinking the whole batch.  Transient failures re-queue under the
    retry policy's backoff; a per-attempt deadline expiry retires
    the pool (reclaiming the hung slot; the stuck worker process is
    abandoned and exits with its task).
    """

    name = "process"
    requires_serializable = True

    def pool_width_floor(self, session) -> int:
        return session._process_pool_width or 0

    def run_pending(self, session, pending, max_workers, worker_ids,
                    counters) -> Dict[Any, SimResult]:
        policy = session._retry
        outcomes: Dict[Any, SimResult] = {}
        if session._cache_enabled:
            with session._lock:
                session._cache_misses += len(pending)

        #: Work queue entries are (key, design, options, attempt).
        ready = deque((key, design, resolved, 0)
                      for key, (design, resolved) in pending.items())
        #: Backoff parking lot: (ready_at, key, design, options, attempt).
        delayed: List[Tuple] = []
        #: Pool deaths each key has been implicated in.
        crashes: Dict[Any, int] = {}
        #: future -> (key, design, options, attempt, started_at).
        in_flight: Dict[Any, Tuple] = {}
        #: Heal rounds that neither settled nor implicated anything —
        #: a pool that cannot even start is not healable by rebuilding.
        barren_rebuilds = 0

        def settle(entry, pid, result) -> None:
            key, design, resolved, attempt = entry[:4]
            worker_ids.add(pid)
            result = replace(result, design_hash=key[0])
            if not result.ok and policy.retryable(classify(result.error)) \
                    and attempt + 1 < policy.max_attempts:
                counters.add("retries")
                delayed.append((
                    time.monotonic() + policy.backoff_s(attempt, key),
                    key, design, resolved, attempt + 1))
                return
            if session._cache_enabled and cacheable_result(result):
                session._store(key, result)
            outcomes[key] = result

        while ready or delayed or in_flight:
            _promote_due(delayed, ready)
            broken: Optional[BaseException] = None

            # Fill the in-flight window from the ready queue.  A crash
            # suspect (implicated in a previous pool death) reruns
            # *alone* in the window: if it kills its worker again the
            # blast radius is just itself, so innocent neighbours are
            # never implicated twice into quarantine by riding along.
            try:
                with session._pools_lock:
                    pool = session._acquire_pool("process", max_workers)
                    solo = any(crashes.get(entry[0])
                               for entry in in_flight.values())
                    while ready and not solo \
                            and len(in_flight) < max_workers:
                        key, design, resolved, attempt = ready[0]
                        if crashes.get(key):
                            if in_flight:
                                break  # wait for the window to drain
                            solo = True
                        future = pool.submit(
                            _subprocess_job, design.to_dict(), resolved,
                            attempt, key[0])
                        ready.popleft()
                        in_flight[future] = (key, design, resolved,
                                             attempt, time.monotonic())
            except BrokenExecutor as error:
                broken = error

            if broken is None and not in_flight:
                # Everything left is waiting out a backoff delay.
                if delayed:
                    time.sleep(max(
                        min(entry[0] for entry in delayed)
                        - time.monotonic(), 0.0))
                continue

            if broken is None:
                # Wake on the first completion — or in time to promote
                # delayed work / expire the nearest per-attempt deadline.
                wait_s = 0.05 if delayed else None
                if policy.timeout_s is not None:
                    slack = max(
                        min(entry[4] for entry in in_flight.values())
                        + policy.timeout_s - time.monotonic(), 0.0)
                    wait_s = slack if wait_s is None \
                        else min(wait_s, slack)
                done, _ = futures_wait(set(in_flight), timeout=wait_s,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    entry = in_flight.pop(future)
                    try:
                        pid, result = future.result()
                    except BrokenExecutor as error:
                        broken = error
                        # This future's task was in flight when the
                        # worker died: it is a suspect like the rest.
                        in_flight[future] = entry
                        break
                    settle(entry, pid, result)
                    barren_rebuilds = 0
                if broken is None and done:
                    continue
                if broken is None and policy.timeout_s is not None:
                    expired = self._expire_attempts(
                        session, in_flight, pool, policy, counters,
                        ready, outcomes)
                    if expired:
                        continue
                if broken is None:
                    continue

            # --- heal a broken pool -----------------------------------
            # Every in-flight future is either already failed with
            # BrokenProcessPool or carries a result computed before the
            # death; drain both kinds, then rebuild.
            suspects = []
            for future in list(in_flight):
                entry = in_flight.pop(future)
                try:
                    pid, result = future.result(timeout=1.0)
                except (BrokenExecutor, FuturesTimeoutError, OSError):
                    suspects.append(entry)
                    continue
                settle(entry, pid, result)
                barren_rebuilds = 0
            counters.add("pool_rebuilds")
            stale = session._process_pool
            if stale is not None:
                session._retire_pool("process", stale)
            if suspects:
                barren_rebuilds = 0
            else:
                barren_rebuilds += 1
                if barren_rebuilds > 3:
                    # Rebuilding is not helping (workers die before
                    # taking any work): surface the infrastructure
                    # failure instead of spinning forever.
                    raise broken
            for entry in suspects:
                key, design, resolved, attempt = entry[:4]
                count = crashes.get(key, 0) + 1
                crashes[key] = count
                if count >= QUARANTINE_THRESHOLD:
                    counters.add("quarantined")
                    outcomes[key] = SimResult(
                        design_name=design.name, options=resolved,
                        design_hash=key[0],
                        error=WorkerCrashError(
                            f"design {design.name!r} was in flight for "
                            f"{count} worker-process deaths and is "
                            f"quarantined"))
                else:
                    # Re-queue on the healed pool.  The bumped attempt
                    # number also tells the fault injector this is a
                    # retry, so kill_rate faults (first attempt only by
                    # default) let recovery be measured.
                    ready.append((key, design, resolved, attempt + 1))
        return outcomes

    def _expire_attempts(self, session, in_flight, pool, policy,
                         counters, ready, outcomes) -> bool:
        """Time out in-flight attempts past the per-attempt deadline.

        Process mode cannot interrupt a busy worker either — but it can
        retire the whole pool, which reclaims the hung slot for the
        rebuilt pool while the abandoned worker process dies with its
        task.  Non-expired in-flight futures stay harvestable: a pool
        shutdown without cancellation lets running tasks finish.
        """
        now = time.monotonic()
        expired = [future for future, entry in in_flight.items()
                   if now - entry[4] >= policy.timeout_s]
        if not expired:
            return False
        for future in expired:
            key, design, resolved, attempt = in_flight.pop(future)[:4]
            future.cancel()
            counters.add("timeouts")
            if policy.retry_timeouts and attempt + 1 < policy.max_attempts:
                counters.add("retries")
                ready.append((key, design, resolved, attempt + 1))
            else:
                outcomes[key] = SimResult(
                    design_name=design.name, options=resolved,
                    design_hash=key[0],
                    error=ExecutionTimeoutError(
                        f"task {design.name!r} exceeded the "
                        f"{policy.timeout_s:g}s per-attempt deadline"),
                    elapsed_s=policy.timeout_s)
        counters.add("pool_rebuilds")
        session._retire_pool("process", pool)
        return True


def _promote_due(delayed: List[Tuple], ready: deque) -> None:
    """Move backoff entries whose delay has elapsed onto the ready queue."""
    now = time.monotonic()
    due = [entry for entry in delayed if entry[0] <= now]
    if not due:
        return
    delayed[:] = [entry for entry in delayed if entry[0] > now]
    due.sort(key=lambda entry: entry[0])
    for _, key, design, resolved, attempt in due:
        ready.append((key, design, resolved, attempt))


def _init_worker() -> None:
    """Process-pool initializer: warm each worker exactly once.

    Runs when a worker process starts — not per batch — and the state it
    creates (imported engine modules, populated caches) persists for the
    session's lifetime, which is what makes pool reuse pay off in
    ``executor="process"`` mode.

    Fork-started workers also inherit the parent's signal plumbing.
    Under an asyncio host (the serve daemon), that includes the event
    loop's wakeup fd — a socketpair *shared* with the parent — so a
    SIGTERM delivered to a worker (e.g. by the executor terminating
    siblings while healing a crashed pool) would echo into the parent's
    loop and be handled as the daemon's own shutdown signal.  Detach
    the wakeup fd and restore default dispositions so signals aimed at
    a worker stay in that worker.
    """
    import signal

    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass
    import repro.api.design  # noqa: F401  (pulls in the whole engine)
    import repro.sim.simulator  # noqa: F401


def _subprocess_job(payload: Dict[str, Any], options: SimOptions,
                    attempt: int = 0,
                    design_hash: Optional[str] = None
                    ) -> Tuple[int, SimResult]:
    """Worker body of the process executor: rebuild, simulate, return.

    The design travels as its serialized payload (always picklable),
    so worker processes never depend on pickling user-built objects.
    ``attempt`` reaches the fault injector (inherited via the
    environment), which is how retried tasks stop being re-killed;
    ``design_hash`` travels alongside so the injector keys its
    decisions on the same content identity in every executor mode
    instead of degrading to the (possibly shared) design name.
    """
    from repro.api.simulator import Simulator

    design = Design.from_dict(payload)
    key = (design_hash, options) if design_hash is not None else None
    result = Simulator(cache=False)._execute(design, options, key,
                                             attempt=attempt)
    return os.getpid(), result
