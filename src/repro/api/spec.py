"""Scenario spec files: the JSON form of (design, options).

A *scenario spec* is what ``python -m repro run <spec.json>`` executes
and what :meth:`repro.api.Design.save` + an ``options`` block archives.
Three layouts are accepted:

1. Full scenario::

       {"design": {... Design.to_dict() payload ...},
        "options": {"frame_rate": 60.0}}

2. Registry reference::

       {"design": {"usecase": "edgaze",
                   "params": {"placement": "2D-In", "cis_node": 65}},
        "options": {"frame_rate": 30.0}}

3. Bare design payload (``schema`` key at top level): default options.

The ``options`` block is optional everywhere and follows
:meth:`repro.api.SimOptions.to_dict`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

from repro.api.design import Design
from repro.api.registry import build_usecase
from repro.api.result import SimOptions
from repro.api.serialize import DESIGN_SCHEMA
from repro.exceptions import SerializationError


def design_from_spec(payload: Dict[str, Any]) -> Design:
    """A design from either a structural payload or a registry reference."""
    if not isinstance(payload, dict):
        raise SerializationError(
            f"design spec must be an object, got {type(payload).__name__}")
    if "usecase" in payload:
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise SerializationError(
                f"usecase 'params' must be an object, "
                f"got {type(params).__name__}")
        return build_usecase(payload["usecase"], **params)
    if payload.get("schema") == DESIGN_SCHEMA:
        return Design.from_dict(payload)
    raise SerializationError(
        "design spec needs either a 'usecase' reference or a "
        f"{DESIGN_SCHEMA!r} structural payload")


def scenario_from_spec(payload: Dict[str, Any]
                       ) -> Tuple[Design, SimOptions]:
    """``(design, options)`` from any accepted spec layout."""
    if not isinstance(payload, dict):
        raise SerializationError(
            f"scenario spec must be an object, got {type(payload).__name__}")
    if "design" in payload:
        design = design_from_spec(payload["design"])
        options = SimOptions.from_dict(payload.get("options", {}))
        return design, options
    # Bare design payload (or bare usecase reference): default options.
    return design_from_spec(payload), SimOptions()


def load_scenario(path) -> Tuple[Design, SimOptions]:
    """Read a scenario spec file written as JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"spec file {path} is not valid JSON: {error}") from error
    return scenario_from_spec(payload)
