"""The simulator session: cached, parallel execution of designs.

A :class:`Simulator` carries a default :class:`~repro.api.result.SimOptions`
and turns :class:`~repro.api.design.Design` values into structured
:class:`~repro.api.result.SimResult` outcomes.  :meth:`Simulator.run_many`
fans a batch out across a thread pool and deduplicates identical
``(design, options)`` jobs through a content-hash-keyed result cache, so
sweeps and exploration grids pay for each distinct scenario exactly once.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.design import Design
from repro.api.result import SimOptions, SimResult
from repro.exceptions import CamJError, ConfigurationError, SerializationError
from repro.sim.simulator import _simulate_graph

#: One batch item: a bare design (session options apply) or an explicit
#: ``(design, options)`` pair.
BatchItem = Union[Design, Tuple[Design, SimOptions]]

#: Sentinel first element of batch keys for unserializable designs:
#: such jobs still fan out to workers but bypass dedup and the cache.
_UNCACHED = object()


@dataclass(frozen=True)
class BatchStats:
    """What the last :meth:`Simulator.run_many` call actually did.

    ``workers_used`` counts the distinct pool workers that executed at
    least one job, plus the calling thread when it ran unserializable
    jobs inline; a batch served entirely from the result cache reports
    exactly 0 because no pool is spun up for it.
    """

    total: int
    unique: int
    cache_hits: int
    max_workers: int
    workers_used: int
    elapsed_s: float


@dataclass(frozen=True)
class CacheInfo:
    """Result-cache counters of one simulator session."""

    hits: int
    misses: int
    size: int


class Simulator:
    """A simulation session over :class:`Design` values.

    Parameters
    ----------
    options:
        Session-default options; ``None`` means ``SimOptions()``.
    max_workers:
        Thread-pool width for :meth:`run_many`.  Defaults to
        ``min(len(batch), max(2, os.cpu_count()))`` so batches always
        exercise multiple workers.
    cache:
        Enable per-design result caching keyed by
        ``(design.content_hash, options)``.  Designs containing custom,
        unserializable parts are simulated but never cached.
    executor:
        ``"thread"`` (default) fans batches across a thread pool;
        ``"process"`` ships each design's serialized payload to a
        :class:`~concurrent.futures.ProcessPoolExecutor` worker, which
        sidesteps the GIL for CPU-bound batches on multi-core machines
        at the cost of per-worker startup.

    The session is thread-safe: ``run`` may be called concurrently,
    which is exactly what ``run_many`` does.
    """

    _EXECUTORS = ("thread", "process")

    def __init__(self, options: Optional[SimOptions] = None, *,
                 max_workers: Optional[int] = None,
                 cache: bool = True,
                 executor: str = "thread"):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}")
        if executor not in self._EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {self._EXECUTORS}, "
                f"got {executor!r}")
        self.options = options if options is not None else SimOptions()
        self._max_workers = max_workers
        self._executor_kind = executor
        self._cache_enabled = cache
        self._cache: Dict[Tuple[str, SimOptions], SimResult] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        #: Content hashes whose pre-simulation checks already passed in
        #: this session: identical designs skip the check walk entirely.
        self._checked_hashes: set = set()
        self._lock = threading.Lock()
        self.last_batch_stats: Optional[BatchStats] = None

    # --- single runs ------------------------------------------------------

    def run(self, design: Design,
            options: Optional[SimOptions] = None) -> SimResult:
        """Simulate one design; failures come back as typed results.

        Framework errors (:class:`CamJError` subclasses — timing, stall,
        check, mapping failures) are captured into the result; genuine
        programming errors still propagate.
        """
        if not isinstance(design, Design):
            raise ConfigurationError(
                f"Simulator.run expects a Design, got "
                f"{type(design).__name__}; wrap the legacy triple via "
                f"Design(stages, system, mapping)")
        resolved = options if options is not None else self.options
        key = self._job_key(design, resolved)
        if key is not None and self._cache_enabled:
            with self._lock:
                hit = self._cache.get(key)
                if hit is not None:
                    self._cache_hits += 1
                    return replace(hit, cached=True)
                self._cache_misses += 1
        result = self._execute(design, resolved, key)
        if key is not None and self._cache_enabled:
            with self._lock:
                self._cache.setdefault(key, result)
        return result

    def _execute(self, design: Design, options: SimOptions,
                 key: Optional[Tuple[str, SimOptions]]) -> SimResult:
        started = time.perf_counter()
        design_hash = key[0] if key is not None else None
        try:
            # Checks depend only on the design, so a design already
            # validated — this object (memoized) or an identical one in
            # this session (by content hash) — never re-walks them.
            if not options.skip_checks:
                if design_hash is None \
                        or design_hash not in self._checked_hashes:
                    design.ensure_checked()
                    if design_hash is not None:
                        with self._lock:
                            self._checked_hashes.add(design_hash)
            report = _simulate_graph(
                design.graph, design.system, design.mapping,
                frame_rate=options.frame_rate,
                exposure_slots=options.exposure_slots,
                cycle_accurate=options.cycle_accurate,
                skip_checks=True,  # handled above, at most once per design
                mapping_validated=True,  # Design validated at construction
                resolved=design.resolved_units)
            return SimResult(design_name=design.name, options=options,
                             design_hash=design_hash, report=report,
                             elapsed_s=time.perf_counter() - started)
        except CamJError as error:
            return SimResult(design_name=design.name, options=options,
                             design_hash=design_hash, error=error,
                             elapsed_s=time.perf_counter() - started)

    def _job_key(self, design: Design, options: SimOptions
                 ) -> Optional[Tuple[str, SimOptions]]:
        """Content identity of one job; ``None`` when unserializable."""
        try:
            return (design.content_hash, options)
        except SerializationError:
            return None

    # --- batch runs -------------------------------------------------------

    def run_many(self, items: Iterable[BatchItem],
                 options: Optional[SimOptions] = None) -> List[SimResult]:
        """Simulate a batch in parallel; results come back in input order.

        ``items`` mixes bare designs and ``(design, options)`` pairs;
        bare designs use ``options`` (or the session default).  Identical
        ``(design, options)`` jobs — by content hash — are executed once
        and fanned back out to every requesting slot.
        """
        jobs = [self._normalize_item(item, options) for item in items]
        if not jobs:
            return []

        # Deduplicate by content: one worker job per distinct scenario.
        # Unserializable designs get a per-slot sentinel key — never
        # cached or deduplicated, but still fanned out (thread mode).
        unique: Dict[Any, Tuple[Design, SimOptions]] = {}
        slots: List[Any] = []
        deduplicated = 0
        for index, (design, resolved) in enumerate(jobs):
            key = self._job_key(design, resolved)
            if key is None:
                if self._executor_kind == "process":
                    # Can't ship a payload to a worker process; the
                    # assembly loop below runs these in-line.
                    slots.append((None, design, resolved))
                    continue
                key = (_UNCACHED, index)
            if key in unique:
                deduplicated += 1
            else:
                unique[key] = (design, resolved)
            slots.append((key, design, resolved))

        hits_before = self._cache_hits
        started = time.perf_counter()

        # Serve cache hits up front: a warm batch never touches a pool.
        outcomes: Dict[Any, SimResult] = {}
        pending: Dict[Any, Tuple[Design, SimOptions]] = {}
        for key, job in unique.items():
            if self._cache_enabled and key[0] is not _UNCACHED:
                with self._lock:
                    hit = self._cache.get(key)
                if hit is not None:
                    with self._lock:
                        self._cache_hits += 1
                    outcomes[key] = replace(hit, cached=True)
                    continue
            pending[key] = job

        max_workers = self._max_workers
        if max_workers is None:
            max_workers = min(max(len(pending), 1),
                              max(2, os.cpu_count() or 1))
        worker_ids = set()

        if pending:
            if self._executor_kind == "process":
                outcomes.update(self._run_unique_in_processes(
                    pending, max_workers, worker_ids))
            else:
                outcomes.update(self._run_unique_in_threads(
                    pending, max_workers, worker_ids))

        results: List[SimResult] = []
        ran_inline = False
        for key, design, resolved in slots:
            if key is None:
                results.append(self.run(design, resolved))
                ran_inline = True
            else:
                results.append(outcomes[key])

        self.last_batch_stats = BatchStats(
            total=len(jobs), unique=len(jobs) - deduplicated,
            cache_hits=self._cache_hits - hits_before,
            max_workers=max_workers,
            workers_used=len(worker_ids) + (1 if ran_inline else 0),
            elapsed_s=time.perf_counter() - started)
        return results

    def _run_unique_in_threads(self, pending, max_workers, worker_ids
                               ) -> Dict[Any, SimResult]:
        def job(design: Design, resolved: SimOptions) -> SimResult:
            worker_ids.add(threading.get_ident())
            return self.run(design, resolved)

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = {key: pool.submit(job, design, resolved)
                       for key, (design, resolved) in pending.items()}
            return {key: future.result()
                    for key, future in futures.items()}

    def _run_unique_in_processes(self, pending, max_workers, worker_ids
                                 ) -> Dict[Any, SimResult]:
        """Fan cache-missing jobs out as serialized payloads.

        Batches where every job shares one :class:`SimOptions` — the
        common case for ``run_many(designs, options=...)`` — ship the
        options to each worker process exactly once, through the pool
        initializer, instead of serializing them into every task.
        """
        outcomes: Dict[Any, SimResult] = {}
        if self._cache_enabled:
            with self._lock:
                self._cache_misses += len(pending)
        distinct_options = {options for _, options in pending.values()}
        shared = (next(iter(distinct_options))
                  if len(distinct_options) == 1 else None)
        pool_kwargs: Dict[str, Any] = {"max_workers": max_workers}
        if shared is not None:
            pool_kwargs.update(initializer=_set_worker_options,
                               initargs=(shared,))
        with ProcessPoolExecutor(**pool_kwargs) as pool:
            if shared is not None:
                futures = {
                    key: pool.submit(_subprocess_job_shared,
                                     design.to_dict())
                    for key, (design, _) in pending.items()}
            else:
                futures = {
                    key: pool.submit(_subprocess_job, design.to_dict(),
                                     resolved)
                    for key, (design, resolved) in pending.items()}
            for key, future in futures.items():
                pid, result = future.result()
                worker_ids.add(pid)
                result = replace(result, design_hash=key[0])
                if self._cache_enabled:
                    with self._lock:
                        self._cache.setdefault(key, result)
                outcomes[key] = result
        return outcomes

    def _normalize_item(self, item: BatchItem,
                        options: Optional[SimOptions]
                        ) -> Tuple[Design, SimOptions]:
        if isinstance(item, Design):
            return item, (options if options is not None else self.options)
        try:
            design, item_options = item
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"run_many items must be Design or (Design, SimOptions), "
                f"got {type(item).__name__}") from None
        if not isinstance(design, Design) \
                or not isinstance(item_options, SimOptions):
            raise ConfigurationError(
                f"run_many items must be Design or (Design, SimOptions), "
                f"got ({type(design).__name__}, "
                f"{type(item_options).__name__})")
        return design, item_options

    # --- cache management -------------------------------------------------

    def cache_info(self) -> CacheInfo:
        """Hit/miss/size counters of the session result cache."""
        with self._lock:
            return CacheInfo(hits=self._cache_hits,
                             misses=self._cache_misses,
                             size=len(self._cache))

    def clear_cache(self) -> None:
        """Drop cached results (counters are kept)."""
        with self._lock:
            self._cache.clear()


def _subprocess_job(payload: Dict[str, Any],
                    options: SimOptions) -> Tuple[int, SimResult]:
    """Worker body of the process executor: rebuild, simulate, return.

    The design travels as its serialized payload (always picklable),
    so worker processes never depend on pickling user-built objects.
    """
    design = Design.from_dict(payload)
    result = Simulator(cache=False)._execute(design, options, None)
    return os.getpid(), result


#: Batch-shared options installed once per worker process (see
#: :meth:`Simulator._run_unique_in_processes`).
_WORKER_OPTIONS: Optional[SimOptions] = None


def _set_worker_options(options: SimOptions) -> None:
    """Pool initializer: install the batch's shared options in the worker."""
    global _WORKER_OPTIONS
    _WORKER_OPTIONS = options


def _subprocess_job_shared(payload: Dict[str, Any]) -> Tuple[int, SimResult]:
    """Worker body for uniform-options batches: options come from the
    pool initializer, so each task pickles only the design payload."""
    assert _WORKER_OPTIONS is not None, "pool initializer did not run"
    return _subprocess_job(payload, _WORKER_OPTIONS)


def run_design(design: Design,
               options: Optional[SimOptions] = None,
               **overrides) -> "SimResult":
    """One-shot convenience: simulate a design with fresh session state.

    Keyword overrides are :class:`SimOptions` fields, e.g.
    ``run_design(design, frame_rate=60)``.
    """
    base = options if options is not None else SimOptions()
    if overrides:
        base = base.replace(**overrides)
    return Simulator(base, cache=False).run(design)
