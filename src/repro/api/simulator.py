"""The simulator session: cached, parallel execution of designs.

A :class:`Simulator` carries a default :class:`~repro.api.result.SimOptions`
and turns :class:`~repro.api.design.Design` values into structured
:class:`~repro.api.result.SimResult` outcomes.  :meth:`Simulator.run_many`
fans a batch out across a persistent worker pool and deduplicates
identical ``(design, options)`` jobs through a two-tier result cache:
an in-memory dict always, plus an opt-in disk tier
(``Simulator(cache_dir=...)`` or the ``REPRO_CACHE_DIR`` environment
variable) that keeps results warm across processes and CLI invocations.

Worker pools are created lazily on the first batch that needs one and
reused for every batch after it — ``explore()`` over many batches pays
pool startup once.  ``Simulator.close()`` (or using the session as a
context manager) releases the workers; a closed session stays usable
and simply recreates its pools on demand.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, replace
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import repro.exec  # noqa: F401  (registers the built-in executor backends)
from repro.api.design import Design
from repro.api.diskcache import (CACHE_DIR_ENV, DiskResultCache,
                                 default_cache_dir)
from repro.api.result import SimOptions, SimResult
from repro.exceptions import (CamJError, ConfigurationError,
                              SerializationError)
from repro.exec.base import UNCACHED, SimulationExecutor, cacheable_result
from repro.exec.registry import resolve_executor
from repro.resilience.faults import get_injector
from repro.resilience.policy import RetryPolicy
from repro.sim.simulator import PassCounters, PassMemo, _simulate_graph

#: One batch item: a bare design (session options apply) or an explicit
#: ``(design, options)`` pair.
BatchItem = Union[Design, Tuple[Design, SimOptions]]

#: Back-compat aliases — the canonical homes are :mod:`repro.exec.base`.
_UNCACHED = UNCACHED
_cacheable = cacheable_result

#: Sentinel for "no cache_dir argument given": fall back to
#: ``REPRO_CACHE_DIR``.
_UNSET = object()

#: How many designs' pass memos one session keeps (LRU).  A memo holds
#: the design-only pass outputs — timeline, analog usage, communication
#: entries — which is what makes option sweeps incremental.
_PASS_MEMO_LIMIT = 256

#: Upper bound on pending lazy results offered by the vectorized explore
#: path (see :meth:`Simulator.offer_result`); oldest offers are dropped
#: first — they can always be re-simulated.
_VECTOR_BACKFILL_LIMIT = 65536


@dataclass(frozen=True)
class BatchStats:
    """What the last :meth:`Simulator.run_many` call actually did.

    ``cache_hits`` counts this batch's own warm lookups (one per unique
    key served from either cache tier), never hits that concurrent
    ``run()`` callers score against the shared session counters while
    the batch is in flight.  ``workers_used`` counts the distinct pool
    workers that executed at least one job, plus the calling thread when
    it ran unserializable jobs inline; a batch served entirely from the
    result cache reports exactly 0 because no pool is touched for it.

    ``retries``/``timeouts``/``pool_rebuilds``/``quarantined`` are the
    batch's resilience events: transient-failure re-runs, per-task
    deadline expiries, process-pool heals after a worker death, and
    designs failed with a typed
    :class:`~repro.exceptions.WorkerCrashError` after repeatedly
    killing workers.  ``lease_expiries`` counts distributed-executor
    leases that timed out and were re-dispatched (a remote worker died
    or stalled mid-task).  All zero on a healthy batch.
    """

    total: int
    unique: int
    cache_hits: int
    max_workers: int
    workers_used: int
    elapsed_s: float
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0
    lease_expiries: int = 0


@dataclass(frozen=True)
class CacheInfo:
    """Result-cache counters of one simulator session.

    ``hits``/``misses``/``size`` describe the session (memory tier plus
    any disk-tier hits it absorbed); the ``disk_*`` fields describe the
    persistent tier and stay zero when no ``cache_dir`` is configured.
    ``disk_errors``/``disk_disabled`` report graceful degradation: I/O
    incidents the tier absorbed, and whether they downgraded the
    session to memory-only.
    """

    hits: int
    misses: int
    size: int
    disk_hits: int = 0
    disk_misses: int = 0
    disk_evictions: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    disk_errors: int = 0
    disk_disabled: bool = False


class Simulator:
    """A simulation session over :class:`Design` values.

    Parameters
    ----------
    options:
        Session-default options; ``None`` means ``SimOptions()``.
    max_workers:
        Worker-pool width for :meth:`run_many`.  Defaults to
        ``min(len(batch), max(2, os.cpu_count()))`` so batches always
        exercise multiple workers; the persistent pool grows to the
        widest batch seen.
    cache:
        Enable per-design result caching keyed by
        ``(design.content_hash, options)``.  Designs containing custom,
        unserializable parts are simulated but never cached.
    executor:
        The batch execution backend: a registered name or a
        :class:`~repro.exec.SimulationExecutor` instance.  ``"thread"``
        (the default) fans batches across a thread pool; ``"process"``
        ships each design's serialized payload to a
        :class:`~concurrent.futures.ProcessPoolExecutor` worker, which
        sidesteps the GIL for CPU-bound batches on multi-core machines;
        ``"inline"`` runs sequentially in the calling thread.  Either
        pool is created once and reused across batches; process workers
        keep their initializer state (warmed imports) for the lifetime
        of the session.  ``None`` defers to the ``REPRO_EXECUTOR``
        environment variable, falling back to ``"thread"``.  Backends
        needing construction arguments (the ``distributed`` executor
        takes its work queue) are passed as instances.
    cache_dir:
        Directory of the persistent result-cache tier.  Unset: honor
        the ``REPRO_CACHE_DIR`` environment variable.  ``None``: disk
        tier off even when the variable is set.
    cache_max_bytes:
        Size bound of the disk tier (LRU-evicted); ``None`` means the
        :data:`repro.api.diskcache.DEFAULT_MAX_BYTES` default.
    retry:
        The session's :class:`~repro.resilience.RetryPolicy` — per-task
        deadlines, transient-failure retries with capped exponential
        backoff, timeout handling.  ``None`` uses
        :meth:`RetryPolicy.from_env` (environment-tunable defaults).

    The session is thread-safe: ``run`` may be called concurrently,
    which is exactly what ``run_many`` does.  Sessions are context
    managers — ``with Simulator() as sim: ...`` shuts the worker pools
    down on exit.
    """

    def __init__(self, options: Optional[SimOptions] = None, *,
                 max_workers: Optional[int] = None,
                 cache: bool = True,
                 executor: Union[str, SimulationExecutor, None] = None,
                 cache_dir: Any = _UNSET,
                 cache_max_bytes: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}")
        self.options = options if options is not None else SimOptions()
        self._max_workers = max_workers
        self._executor = resolve_executor(executor)
        self._executor_kind = self._executor.name
        self._cache_enabled = cache
        self._cache: Dict[Tuple[str, SimOptions], SimResult] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        #: Lazy results offered by the vectorized explore path: thunks
        #: that materialize a full SimResult only if the key is ever
        #: probed again (see :meth:`offer_result`).
        self._vector_backfill: "OrderedDict[Tuple[str, SimOptions], Any]" \
            = OrderedDict()
        #: How many backfill entries each design hash owns — lets bulk
        #: probes for a design with no offers skip the tier entirely.
        self._backfill_hashes: Dict[str, int] = {}
        #: Design hashes with at least one memory-tier entry, grow-only
        #: (conservative: a stale member only costs a real probe).
        self._cache_hashes: set = set()
        env_derived = cache_dir is _UNSET
        if env_derived:
            cache_dir = default_cache_dir()
        self._disk_cache = None
        if cache and cache_dir:
            try:
                self._disk_cache = DiskResultCache(
                    cache_dir, max_bytes=cache_max_bytes)
            except OSError as error:
                if not env_derived:
                    raise ConfigurationError(
                        f"cannot use cache_dir {cache_dir!s}: "
                        f"{error}") from error
                # An ambient REPRO_CACHE_DIR must not break sessions
                # that never asked for a disk tier: degrade to
                # memory-only and say so.
                warnings.warn(
                    f"disk result cache disabled — {CACHE_DIR_ENV}="
                    f"{cache_dir!s} is unusable: {error}",
                    RuntimeWarning, stacklevel=2)
        #: Content hashes whose pre-simulation checks already passed in
        #: this session: identical designs skip the check walk entirely.
        self._checked_hashes: set = set()
        #: Design-only pass outputs shared across every design with the
        #: same content hash (see repro.sim.simulator.SIM_PASSES).
        self._pass_memos: "OrderedDict[str, PassMemo]" = OrderedDict()
        self._pass_counters = PassCounters()
        self._retry = retry if retry is not None else RetryPolicy.from_env()
        #: Session-lifetime resilience counters (sums of BatchStats).
        self._resilience_totals = {"retries": 0, "timeouts": 0,
                                   "pool_rebuilds": 0, "quarantined": 0,
                                   "lease_expiries": 0}
        self._lock = threading.Lock()
        #: Guards pool creation/growth and submission, so a batch never
        #: submits into a pool another thread just retired by growing it.
        self._pools_lock = threading.Lock()
        self._terminal = False
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._thread_pool_width = 0
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_pool_width = 0
        self.last_batch_stats: Optional[BatchStats] = None

    # --- session lifecycle ------------------------------------------------

    def close(self, wait: bool = True, *,
              cancel_pending: bool = False,
              terminal: bool = False) -> None:
        """Shut down the session's persistent worker pools.

        Idempotent and safe to call from any thread, including
        concurrently with in-flight ``run_many`` batches (their
        already-submitted jobs drain before the pool dies).  Cached
        results, pass memos, and counters survive; by default the
        session stays usable — the next ``run_many`` simply recreates
        its pool.

        ``wait=False`` returns without joining the workers;
        ``cancel_pending=True`` additionally cancels jobs still queued
        inside the pools (interrupt paths use both so a dying process
        never drains a long queue).  ``terminal=True`` closes the
        session *permanently*: later batches raise instead of silently
        resurrecting pools — what a daemon wants after its final
        shutdown.  Cached single-design ``run()`` calls keep working
        either way; they never touch a pool.
        """
        with self._pools_lock:
            if terminal:
                self._terminal = True
            for pool in (self._thread_pool, self._process_pool):
                if pool is not None:
                    pool.shutdown(wait=wait, cancel_futures=cancel_pending)
            self._thread_pool = None
            self._thread_pool_width = 0
            self._process_pool = None
            self._process_pool_width = 0
        self._executor.close(self)

    @property
    def closed(self) -> bool:
        """Whether the session was terminally closed (see :meth:`close`)."""
        return self._terminal

    def pool_info(self) -> Dict[str, Any]:
        """Live worker-pool state, for daemons and dashboards."""
        with self._pools_lock:
            return {
                "executor": self._executor_kind,
                "max_workers": self._max_workers,
                "thread_pool_width": self._thread_pool_width,
                "process_pool_width": self._process_pool_width,
                "terminal": self._terminal,
            }

    def executor_info(self) -> Dict[str, Any]:
        """The session's execution backend, self-described.

        The ``distributed`` backend folds in its work-queue and worker
        liveness document; local backends report name and
        serializability only.
        """
        return self._executor.describe()

    def resilience_info(self) -> Dict[str, Any]:
        """Session-lifetime fault-tolerance counters and policy."""
        with self._lock:
            totals = dict(self._resilience_totals)
        totals["policy"] = {
            "max_attempts": self._retry.max_attempts,
            "base_delay_s": self._retry.base_delay_s,
            "max_delay_s": self._retry.max_delay_s,
            "timeout_s": self._retry.timeout_s,
        }
        return totals

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __del__(self):
        # Sessions dropped without close() must not strand idle pool
        # workers until interpreter exit; no waiting here — GC must not
        # block on in-flight work.
        try:
            for pool in (getattr(self, "_thread_pool", None),
                         getattr(self, "_process_pool", None)):
                if pool is not None:
                    pool.shutdown(wait=False)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    # --- single runs ------------------------------------------------------

    def run(self, design: Design,
            options: Optional[SimOptions] = None) -> SimResult:
        """Simulate one design; failures come back as typed results.

        Framework errors (:class:`CamJError` subclasses — timing, stall,
        check, mapping failures) are captured into the result; genuine
        programming errors still propagate.
        """
        if not isinstance(design, Design):
            raise ConfigurationError(
                f"Simulator.run expects a Design, got "
                f"{type(design).__name__}; wrap the legacy triple via "
                f"Design(stages, system, mapping)")
        resolved = options if options is not None else self.options
        return self._run_resolved(design, resolved, probe_disk=True)

    def _run_resolved(self, design: Design, options: SimOptions,
                      probe_disk: bool, attempt: int = 0) -> SimResult:
        """One job through the cache and the engine.

        ``probe_disk=False`` is the batch-worker path: ``run_many``
        already probed the disk tier for this key, so the worker checks
        only the memory tier (still needed to dedup against concurrent
        batches) instead of re-reading the same file.
        """
        key = self._job_key(design, options)
        if key is not None and self._cache_enabled:
            hit = self._probe_cache(key, probe_disk=probe_disk)
            if hit is not None:
                return replace(hit, cached=True)
        result = self._execute(design, options, key, attempt=attempt)
        if key is not None and self._cache_enabled \
                and _cacheable(result):
            self._store(key, result)
        return result

    def _execute(self, design: Design, options: SimOptions,
                 key: Optional[Tuple[str, SimOptions]],
                 attempt: int = 0) -> SimResult:
        started = time.perf_counter()
        design_hash = key[0] if key is not None else None
        try:
            # Fault-injection point: inert unless REPRO_FAULTS is set.
            # Raised transient faults are captured as typed results
            # below, exactly like organic CamJError failures.
            injector = get_injector()
            if injector.active:
                injector.before_task(design.name, design_hash, attempt)
            # Checks depend only on the design, so a design already
            # validated — this object (memoized) or an identical one in
            # this session (by content hash) — never re-walks them.
            if not options.skip_checks:
                self.ensure_design_checked(design, design_hash)
            report = _simulate_graph(
                design.graph, design.system, design.mapping,
                frame_rate=options.frame_rate,
                exposure_slots=options.exposure_slots,
                cycle_accurate=options.cycle_accurate,
                skip_checks=True,  # handled above, at most once per design
                mapping_validated=True,  # Design validated at construction
                resolved=design.resolved_units,
                memo=self._pass_memo_for(design, design_hash),
                counters=self._pass_counters)
            return SimResult(design_name=design.name, options=options,
                             design_hash=design_hash, report=report,
                             elapsed_s=time.perf_counter() - started)
        except CamJError as error:
            return SimResult(design_name=design.name, options=options,
                             design_hash=design_hash, error=error,
                             elapsed_s=time.perf_counter() - started)

    def _job_key(self, design: Design, options: SimOptions
                 ) -> Optional[Tuple[str, SimOptions]]:
        """Content identity of one job; ``None`` when unserializable."""
        try:
            return (design.content_hash, options)
        except SerializationError:
            return None

    def design_key(self, design: Design) -> Optional[str]:
        """The design's content hash, or ``None`` when unserializable."""
        try:
            return design.content_hash
        except SerializationError:
            return None

    def ensure_design_checked(self, design: Design,
                              design_hash: Optional[str]) -> None:
        """Run the pre-simulation checks at most once per design.

        Session-deduplicated by content hash exactly like the engine
        path: a hash already validated this session (by this object or
        an identical design) skips the check walk entirely.
        """
        if design_hash is None \
                or design_hash not in self._checked_hashes:
            design.ensure_checked()
            if design_hash is not None:
                with self._lock:
                    self._checked_hashes.add(design_hash)

    def pass_context(self, design: Design, design_hash: Optional[str]):
        """(memo, counters) the engine would use for this design.

        Lets external evaluators (the vectorized explore path) run
        design-only passes with the same session-level memoization and
        accounting as :meth:`run`.
        """
        return self._pass_memo_for(design, design_hash), \
            self._pass_counters

    # --- the two-tier cache -----------------------------------------------

    def _probe_cache(self, key: Tuple[str, SimOptions],
                     count_miss: bool = True,
                     probe_disk: bool = True) -> Optional[SimResult]:
        """Memory tier first, then (optionally) disk; ``None`` on miss.

        The memory probe is a plain (GIL-atomic) dict read — the
        session lock guards only counter updates, so concurrent warm
        ``run()`` calls never serialize on each other's probes.  A disk
        hit is promoted into the memory tier.
        """
        hit = self._cache.get(key)
        if hit is not None:
            with self._lock:
                self._cache_hits += 1
            return hit
        if self._vector_backfill:
            with self._lock:
                thunk = self._vector_backfill.pop(key, None)
                if thunk is not None:
                    self._drop_backfill_hash(key[0])
            if thunk is not None:
                result = thunk()
                self._store(key, result)
                with self._lock:
                    self._cache_hits += 1
                return result
        if probe_disk and self._disk_cache is not None:
            persisted = self._disk_cache.get(key[0], key[1])
            if persisted is not None:
                with self._lock:
                    self._cache_hits += 1
                    self._cache.setdefault(key, persisted)
                    self._cache_hashes.add(key[0])
                return persisted
        if count_miss:
            with self._lock:
                self._cache_misses += 1
        return None

    def _store(self, key: Tuple[str, SimOptions],
               result: SimResult) -> None:
        """Publish one executed result to both cache tiers."""
        with self._lock:
            self._cache.setdefault(key, result)
            self._cache_hashes.add(key[0])
        if self._disk_cache is not None:
            self._disk_cache.put(key[0], key[1], result)

    def probe_result(self, key: Optional[Tuple[str, SimOptions]]
                     ) -> Optional[SimResult]:
        """Probe the result cache for one job key, counting hit or miss.

        The vectorized explore path uses this to give every point the
        same cache behavior a cold :meth:`run` would have — including
        the miss counter on absent keys.  ``None`` on miss, on ``None``
        keys (unserializable designs), and when caching is disabled
        (mirroring :meth:`run`, which skips the probe entirely then).
        """
        if key is None or not self._cache_enabled:
            return None
        hit = self._probe_cache(key)
        return replace(hit, cached=True) if hit is not None else None

    def design_probe_needed(self, design_hash: str, count: int) -> bool:
        """Whether probing ``count`` keys of one design could hit at all.

        ``False`` means the whole group cold-misses: no memory-tier or
        backfill entry carries this design hash and there is no disk
        tier.  The miss counters are bulk-updated here, so the caller
        may skip per-key probing with identical observable behavior.
        (``False`` with no counter change when caching is disabled,
        mirroring :meth:`probe_result`.)
        """
        if not self._cache_enabled:
            return False
        if self._disk_cache is not None \
                or design_hash in self._cache_hashes \
                or design_hash in self._backfill_hashes:
            return True
        with self._lock:
            self._cache_misses += count
        return False

    def probe_results(self, keys) -> List[Optional[SimResult]]:
        """Bulk :meth:`probe_result` over a whole group of job keys.

        Observable behavior (hits returned and promoted, counters
        ticked) matches probing each key individually, but each tier is
        consulted in one sweep — at most one lock round-trip for the
        backfill tier and one for the counters, instead of one per
        point.
        """
        if not self._cache_enabled:
            return [None] * len(keys)
        out: List[Optional[SimResult]] = [None] * len(keys)
        cache = self._cache
        hits = 0
        thunks: List[Tuple[int, Any]] = []
        if cache:
            remaining: List[int] = []
            for position, key in enumerate(keys):
                if key is None:
                    continue
                hit = cache.get(key)
                if hit is not None:
                    hits += 1
                    out[position] = replace(hit, cached=True)
                else:
                    remaining.append(position)
        else:
            remaining = [position for position, key in enumerate(keys)
                         if key is not None]
        # A cold exploration of a new design probes thousands of keys
        # that cannot be in the backfill tier; the hash index answers
        # that for the whole group without touching the OrderedDict.
        if remaining and self._backfill_hashes and any(
                keys[position][0] in self._backfill_hashes
                for position in remaining):
            with self._lock:
                backfill = self._vector_backfill
                still: List[int] = []
                for position in remaining:
                    thunk = backfill.pop(keys[position], None)
                    if thunk is not None:
                        self._drop_backfill_hash(keys[position][0])
                        thunks.append((position, thunk))
                    else:
                        still.append(position)
                remaining = still
            for position, thunk in thunks:
                result = thunk()
                self._store(keys[position], result)
                hits += 1
                out[position] = replace(result, cached=True)
        if remaining and self._disk_cache is not None:
            still = []
            for position in remaining:
                key = keys[position]
                persisted = self._disk_cache.get(key[0], key[1])
                if persisted is None:
                    still.append(position)
                    continue
                hits += 1
                with self._lock:
                    cache.setdefault(key, persisted)
                    self._cache_hashes.add(key[0])
                out[position] = replace(persisted, cached=True)
            remaining = still
        if hits or remaining:
            with self._lock:
                self._cache_hits += hits
                self._cache_misses += len(remaining)
        return out

    def offer_result(self, key: Optional[Tuple[str, SimOptions]],
                     thunk) -> None:
        """Lazily publish a vector-evaluated result to the cache.

        ``thunk`` must build the full :class:`SimResult` for ``key``
        when called.  It is only ever invoked if the key is probed again
        (a later identical run or explore point), at which point the
        materialized result is promoted into both cache tiers and the
        probe counts a hit — the same observable behavior as if the
        object path had executed and stored the point.  Deferring the
        materialization keeps the fast path fast: most explore points
        are never re-requested.

        Bounded (oldest offers dropped); no-op when caching is off, the
        key is ``None``, or the key is already cached.
        """
        if key is None or not self._cache_enabled:
            return
        if self._cache.get(key) is not None:
            return
        with self._lock:
            if key in self._vector_backfill:
                self._vector_backfill.move_to_end(key)
            else:
                self._backfill_hashes[key[0]] = \
                    self._backfill_hashes.get(key[0], 0) + 1
            self._vector_backfill[key] = thunk
            self._evict_backfill()

    def offer_results(self, offers, same_hash: Optional[str] = None
                      ) -> None:
        """Bulk :meth:`offer_result` over ``(key, thunk)`` pairs.

        Same semantics, one lock acquisition for the whole group.  A
        caller whose offers all carry one design hash may pass it as
        ``same_hash``; when that design has nothing cached or pending
        yet (the cold-exploration common case) the whole group inserts
        without per-key membership checks.
        """
        if not self._cache_enabled or not offers:
            return
        cache = self._cache
        backfill = self._vector_backfill
        hashes = self._backfill_hashes
        with self._lock:
            if same_hash is not None and same_hash not in hashes \
                    and not cache:
                before = len(backfill)
                for key, thunk in offers:
                    backfill[key] = thunk
                added = len(backfill) - before
                if added:
                    hashes[same_hash] = hashes.get(same_hash, 0) + added
                self._evict_backfill()
                return
            check_cache = bool(cache)
            for key, thunk in offers:
                if key is None or (check_cache
                                   and cache.get(key) is not None):
                    continue
                if key in backfill:
                    backfill.move_to_end(key)
                else:
                    hashes[key[0]] = hashes.get(key[0], 0) + 1
                backfill[key] = thunk
            self._evict_backfill()

    def _drop_backfill_hash(self, design_hash: str) -> None:
        """Un-count one backfill entry of ``design_hash`` (lock held)."""
        count = self._backfill_hashes.get(design_hash, 0)
        if count <= 1:
            self._backfill_hashes.pop(design_hash, None)
        else:
            self._backfill_hashes[design_hash] = count - 1

    def _evict_backfill(self) -> None:
        """Enforce the backfill tier's size bound (lock held)."""
        backfill = self._vector_backfill
        while len(backfill) > _VECTOR_BACKFILL_LIMIT:
            evicted, _ = backfill.popitem(last=False)
            self._drop_backfill_hash(evicted[0])

    def _pass_memo_for(self, design: Design,
                       design_hash: Optional[str]) -> PassMemo:
        """The design-only pass memo this run should reuse.

        Keyed by content hash (LRU-bounded) so independently built but
        identical designs share one memo; unserializable designs fall
        back to their per-object memo.
        """
        if design_hash is None:
            return design.pass_memo
        with self._lock:
            memo = self._pass_memos.get(design_hash)
            if memo is None:
                memo = design.pass_memo
                self._pass_memos[design_hash] = memo
                while len(self._pass_memos) > _PASS_MEMO_LIMIT:
                    self._pass_memos.popitem(last=False)
            else:
                self._pass_memos.move_to_end(design_hash)
            return memo

    # --- batch runs -------------------------------------------------------

    def run_many(self, items: Iterable[BatchItem],
                 options: Optional[SimOptions] = None) -> List[SimResult]:
        """Simulate a batch in parallel; results come back in input order.

        ``items`` mixes bare designs and ``(design, options)`` pairs;
        bare designs use ``options`` (or the session default).  Identical
        ``(design, options)`` jobs — by content hash — are executed once
        and fanned back out to every requesting slot.  The worker pool
        is created on the first batch that misses the cache and reused
        by every later batch.
        """
        jobs = [self._normalize_item(item, options) for item in items]
        if not jobs:
            return []

        # Deduplicate by content: one worker job per distinct scenario.
        # Unserializable designs get a per-slot sentinel key — never
        # cached or deduplicated, but still fanned out (thread mode).
        unique: Dict[Any, Tuple[Design, SimOptions]] = {}
        slots: List[Any] = []
        deduplicated = 0
        for index, (design, resolved) in enumerate(jobs):
            key = self._job_key(design, resolved)
            if key is None:
                if self._executor.requires_serializable:
                    # Can't ship a payload to another process; the
                    # assembly loop below runs these in-line.
                    slots.append((None, design, resolved))
                    continue
                key = (_UNCACHED, index)
            if key in unique:
                deduplicated += 1
            else:
                unique[key] = (design, resolved)
            slots.append((key, design, resolved))

        started = time.perf_counter()

        # Serve cache hits up front: a warm batch never touches a pool.
        # Hits are counted batch-locally so concurrent run() callers
        # racing on the shared session counters can't skew the stats.
        batch_hits = 0
        outcomes: Dict[Any, SimResult] = {}
        pending: Dict[Any, Tuple[Design, SimOptions]] = {}
        for key, job in unique.items():
            if self._cache_enabled and key[0] is not _UNCACHED:
                # Misses are not counted here: pending jobs re-probe (and
                # count) inside run() on their worker.
                hit = self._probe_cache(key, count_miss=False)
                if hit is not None:
                    batch_hits += 1
                    outcomes[key] = replace(hit, cached=True)
                    continue
            pending[key] = job

        max_workers = self._max_workers
        if max_workers is None:
            max_workers = min(max(len(pending), 1),
                              max(2, os.cpu_count() or 1))
        worker_ids = set()
        counters = _BatchCounters()

        if pending:
            max_workers = max(max_workers,
                              self._executor.pool_width_floor(self))
            outcomes.update(self._executor.run_pending(
                self, pending, max_workers, worker_ids, counters))

        results: List[SimResult] = []
        ran_inline = False
        for key, design, resolved in slots:
            if key is None:
                results.append(self.run(design, resolved))
                ran_inline = True
            else:
                results.append(outcomes[key])

        with self._lock:
            self._resilience_totals["retries"] += counters.retries
            self._resilience_totals["timeouts"] += counters.timeouts
            self._resilience_totals["pool_rebuilds"] += \
                counters.pool_rebuilds
            self._resilience_totals["quarantined"] += counters.quarantined
            self._resilience_totals["lease_expiries"] += \
                counters.lease_expiries
        self.last_batch_stats = BatchStats(
            total=len(jobs), unique=len(jobs) - deduplicated,
            cache_hits=batch_hits,
            max_workers=max_workers,
            workers_used=len(worker_ids) + (1 if ran_inline else 0),
            elapsed_s=time.perf_counter() - started,
            retries=counters.retries, timeouts=counters.timeouts,
            pool_rebuilds=counters.pool_rebuilds,
            quarantined=counters.quarantined,
            lease_expiries=counters.lease_expiries)
        return results

    def _acquire_pool(self, kind: str, width: int):
        """Get the persistent pool of ``kind``, growing it on demand.

        Must be called under ``_pools_lock``.  Growth replaces the pool;
        the retired one drains its in-flight work and exits without
        blocking the caller.  Pools never shrink — idle workers are
        cheap next to re-paying startup on the next wide batch.
        """
        if self._terminal:
            raise ConfigurationError(
                "session was terminally closed; create a new Simulator "
                "to run further batches")
        if kind == "process":
            pool, current = self._process_pool, self._process_pool_width
        else:
            pool, current = self._thread_pool, self._thread_pool_width
        if pool is not None and current >= width:
            return pool
        if pool is not None:
            pool.shutdown(wait=False)
        if kind == "process":
            from repro.exec.local import _init_worker
            pool = ProcessPoolExecutor(max_workers=width,
                                       initializer=_init_worker)
            self._process_pool, self._process_pool_width = pool, width
        else:
            pool = ThreadPoolExecutor(
                max_workers=width,
                thread_name_prefix="repro-simulator")
            self._thread_pool, self._thread_pool_width = pool, width
        return pool

    def _retire_pool(self, kind: str, pool) -> None:
        """Drop a broken executor so the next batch recreates one."""
        with self._pools_lock:
            if kind == "process" and self._process_pool is pool:
                self._process_pool = None
                self._process_pool_width = 0
            elif kind == "thread" and self._thread_pool is pool:
                self._thread_pool = None
                self._thread_pool_width = 0
        pool.shutdown(wait=False)

    def _normalize_item(self, item: BatchItem,
                        options: Optional[SimOptions]
                        ) -> Tuple[Design, SimOptions]:
        if isinstance(item, Design):
            return item, (options if options is not None else self.options)
        try:
            design, item_options = item
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"run_many items must be Design or (Design, SimOptions), "
                f"got {type(item).__name__}") from None
        if not isinstance(design, Design) \
                or not isinstance(item_options, SimOptions):
            raise ConfigurationError(
                f"run_many items must be Design or (Design, SimOptions), "
                f"got ({type(design).__name__}, "
                f"{type(item_options).__name__})")
        return design, item_options

    # --- cache management -------------------------------------------------

    def cache_info(self) -> CacheInfo:
        """Hit/miss/size counters of both result-cache tiers."""
        with self._lock:
            hits, misses = self._cache_hits, self._cache_misses
            size = len(self._cache)
        if self._disk_cache is None:
            return CacheInfo(hits=hits, misses=misses, size=size)
        disk = self._disk_cache.info()
        return CacheInfo(hits=hits, misses=misses, size=size,
                         disk_hits=disk.hits, disk_misses=disk.misses,
                         disk_evictions=disk.evictions,
                         disk_entries=disk.entries,
                         disk_bytes=disk.total_bytes,
                         disk_errors=disk.errors,
                         disk_disabled=disk.disabled)

    def clear_cache(self, disk: bool = False) -> None:
        """Drop cached results (counters are kept).

        The persistent tier survives by default — it exists to outlive
        sessions; pass ``disk=True`` to wipe it too.
        """
        with self._lock:
            self._cache.clear()
            self._vector_backfill.clear()
            self._backfill_hashes.clear()
            self._cache_hashes.clear()
        if disk and self._disk_cache is not None:
            self._disk_cache.clear()

    def pass_info(self) -> Dict[str, int]:
        """How many times each engine pass actually executed.

        Memoized design-only passes (see
        :data:`repro.sim.simulator.SIM_PASSES`) count only real runs,
        so an option sweep over one design shows e.g. ``timeline: 1``
        next to ``timing: N``.
        """
        return self._pass_counters.snapshot()


class _BatchCounters:
    """Mutable resilience tallies for one ``run_many`` call.

    Worker threads bump these concurrently, so increments go through a
    lock; ``run_many`` reads them only after every worker is done.
    """

    __slots__ = ("lock", "retries", "timeouts", "pool_rebuilds",
                 "quarantined", "lease_expiries")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self.quarantined = 0
        self.lease_expiries = 0

    def add(self, field: str, count: int = 1) -> None:
        with self.lock:
            setattr(self, field, getattr(self, field) + count)


def run_design(design: Design,
               options: Optional[SimOptions] = None,
               **overrides) -> "SimResult":
    """One-shot convenience: simulate a design with fresh session state.

    Keyword overrides are :class:`SimOptions` fields, e.g.
    ``run_design(design, frame_rate=60)``.
    """
    base = options if options is not None else SimOptions()
    if overrides:
        base = base.replace(**overrides)
    return Simulator(base, cache=False).run(design)
