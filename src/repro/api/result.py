"""Session options and structured simulation results.

:class:`SimOptions` captures everything :func:`repro.simulate` used to
take as loose keyword arguments, as one frozen, hashable value —
simulator sessions carry it, batches override it per design, and result
caches key on it.  :class:`SimResult` is the structured outcome of one
simulation: either an :class:`~repro.energy.report.EnergyReport` or a
typed failure, so batch consumers (sweeps, the CLI) no longer hand-roll
``try/except CamJError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.energy.report import EnergyReport
from repro.exceptions import CamJError, ConfigurationError, \
    SerializationError


@dataclass(frozen=True)
class SimOptions:
    """Frozen simulation options (the former ``simulate()`` kwargs).

    ``frame_rate``
        FPS target the analog delays are inferred from (Sec. 4.1).
    ``exposure_slots``
        Analog pipeline slots the exposure phase occupies (Fig. 6 uses 1).
    ``cycle_accurate``
        Use the event-driven per-cycle digital simulator instead of the
        analytical timeline.
    ``skip_checks``
        Skip the pre-simulation design checks (expert escape hatch).
    """

    frame_rate: float = 30.0
    exposure_slots: int = 1
    cycle_accurate: bool = False
    skip_checks: bool = False

    def __post_init__(self) -> None:
        # Spec files hand us arbitrary JSON values: type-check before
        # comparing, so a string frame rate fails cleanly.
        if isinstance(self.frame_rate, bool) \
                or not isinstance(self.frame_rate, (int, float)):
            raise ConfigurationError(
                f"frame rate must be a number, got {self.frame_rate!r}")
        if isinstance(self.exposure_slots, bool) \
                or not isinstance(self.exposure_slots, int):
            raise ConfigurationError(
                f"exposure slots must be an integer, "
                f"got {self.exposure_slots!r}")
        if not isinstance(self.cycle_accurate, bool) \
                or not isinstance(self.skip_checks, bool):
            raise ConfigurationError(
                "cycle_accurate and skip_checks must be booleans")
        if self.frame_rate <= 0:
            raise ConfigurationError(
                f"frame rate must be positive, got {self.frame_rate}")
        if self.exposure_slots < 1:
            raise ConfigurationError(
                f"exposure slots must be >= 1, got {self.exposure_slots}")

    def __hash__(self) -> int:
        # Options are hashed millions of times as cache-key components
        # during large explorations; memoize (safe: the value is frozen).
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash((self.frame_rate, self.exposure_slots,
                          self.cycle_accurate, self.skip_checks))
            object.__setattr__(self, "_hash", value)
        return value

    def replace(self, **changes: Any) -> "SimOptions":
        """A copy with some fields changed."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (the ``options`` block of a spec file)."""
        return {
            "frame_rate": self.frame_rate,
            "exposure_slots": self.exposure_slots,
            "cycle_accurate": self.cycle_accurate,
            "skip_checks": self.skip_checks,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimOptions":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"options must be an object, got {type(payload).__name__}")
        known = {"frame_rate", "exposure_slots", "cycle_accurate",
                 "skip_checks"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown simulation options: {sorted(unknown)}; "
                f"supported: {sorted(known)}")
        return cls(**payload)


@dataclass
class SimResult:
    """Outcome of simulating one design under one set of options.

    Exactly one of ``report`` / ``error`` is set.  ``error`` keeps the
    original :class:`CamJError` instance so :meth:`unwrap` re-raises it
    unchanged for callers that want the legacy raising behavior.
    """

    design_name: str
    options: SimOptions
    design_hash: Optional[str] = None
    report: Optional[EnergyReport] = None
    error: Optional[CamJError] = field(default=None, repr=False)
    elapsed_s: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        """Whether the simulation produced a report."""
        return self.report is not None

    @property
    def error_type(self) -> Optional[str]:
        """Class name of the captured failure, if any."""
        return type(self.error).__name__ if self.error is not None else None

    @property
    def failure(self) -> Optional[str]:
        """Human-readable failure message, if any."""
        return str(self.error) if self.error is not None else None

    def unwrap(self) -> EnergyReport:
        """The report, or re-raise the captured failure."""
        if self.error is not None:
            raise self.error
        assert self.report is not None
        return self.report

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form, report or typed failure included."""
        return {
            "design": self.design_name,
            "design_hash": self.design_hash,
            "options": self.options.to_dict(),
            "ok": self.ok,
            "report": self.report.to_dict() if self.report else None,
            "error": ({"type": self.error_type, "message": self.failure}
                      if self.error is not None else None),
            "elapsed_s": self.elapsed_s,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimResult":
        """Inverse of :meth:`to_dict` (the disk-cache load path).

        A captured failure is rebuilt as the same
        :mod:`repro.exceptions` class when its type name still exists
        there (plain :class:`CamJError` otherwise), so :meth:`unwrap`
        re-raises persisted failures just like fresh ones.
        """
        if not isinstance(payload, dict):
            raise SerializationError(
                f"result payload must be an object, "
                f"got {type(payload).__name__}")
        try:
            options = SimOptions.from_dict(payload["options"])
            raw_report = payload["report"]
            raw_error = payload["error"]
            design_name = payload["design"]
        except KeyError as error:
            raise SerializationError(
                f"result payload missing {error}") from error
        report = (EnergyReport.from_dict(raw_report)
                  if raw_report is not None else None)
        error = (_rebuild_error(raw_error) if raw_error is not None
                 else None)
        if (report is None) == (error is None):
            raise SerializationError(
                "result payload must carry exactly one of report/error")
        return cls(design_name=design_name, options=options,
                   design_hash=payload.get("design_hash"),
                   report=report, error=error,
                   elapsed_s=payload.get("elapsed_s", 0.0))


def _rebuild_error(raw: Any) -> CamJError:
    """A CamJError instance from its serialized ``{type, message}`` pair."""
    if not isinstance(raw, dict):
        raise SerializationError(
            f"serialized error must be an object, got {type(raw).__name__}")
    from repro import exceptions as exceptions_module

    error_cls = getattr(exceptions_module, str(raw.get("type")), None)
    if not (isinstance(error_cls, type)
            and issubclass(error_cls, CamJError)):
        error_cls = CamJError
    return error_cls(str(raw.get("message", "")))
