"""Structural (de)serialization of the three-part design description.

Every object a :class:`repro.api.Design` bundles — stages, cells,
components, arrays, digital units, memories, interfaces, the sensor
system, the mapping — round-trips through plain JSON-compatible dicts.
The encoding is *structural*: it captures the constructed objects, not
the Python code that built them, so a design assembled by any builder
(or loaded from a spec file) is equal to its round-tripped twin.

The payload layout is versioned through the top-level ``schema`` string
(currently ``"repro.design/1"``); decoders reject unknown schemas rather
than guessing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import SerializationError
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.cells import (
    AnalogCell,
    DynamicCell,
    NonLinearCell,
    StaticCell,
)
from repro.hw.analog.components import AnalogComponent, CellUsage
from repro.hw.analog.domain import SignalDomain
from repro.hw.analog.extended import _SingleSlopeCell
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit, SystolicArray
from repro.hw.digital.memory import (
    DigitalMemory,
    DoubleBuffer,
    FIFO,
    LineBuffer,
)
from repro.hw.interface import Interface
from repro.hw.layer import Layer, OFF_CHIP
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import (
    Conv2DStage,
    DepthwiseConv2DStage,
    DNNProcessStage,
    FullyConnectedStage,
    PixelInput,
    ProcessStage,
    Stage,
)

#: Version tag of the design payload layout.
DESIGN_SCHEMA = "repro.design/1"


# --- stages ------------------------------------------------------------------


def encode_stage(stage: Stage) -> Dict[str, Any]:
    """One stage to a dict; producers are referenced by name."""
    payload: Dict[str, Any]
    if type(stage) is PixelInput:
        payload = {
            "type": "PixelInput",
            "name": stage.name,
            "size": list(stage.output_size),
            "bits_per_pixel": stage.bits_per_pixel,
        }
    elif type(stage) in (ProcessStage, DNNProcessStage):
        payload = {
            "type": type(stage).__name__,
            "name": stage.name,
            "input_size": list(stage.input_size),
            "kernel": list(stage.kernel),
            "stride": list(stage.stride),
            "padding": stage.padding,
            "ops_per_output": stage._ops_per_output,
            "bits_per_pixel": stage.bits_per_pixel,
            "output_compression": stage.output_compression,
        }
    elif type(stage) is Conv2DStage:
        payload = {
            "type": "Conv2DStage",
            "name": stage.name,
            "input_size": list(stage.input_size),
            "num_kernels": stage.num_kernels,
            "kernel_size": list(stage.kernel[:2]),
            "stride": list(stage.stride),
            "padding": stage.padding,
            "bits_per_pixel": stage.bits_per_pixel,
        }
    elif type(stage) is DepthwiseConv2DStage:
        payload = {
            "type": "DepthwiseConv2DStage",
            "name": stage.name,
            "input_size": list(stage.input_size),
            "kernel_size": list(stage.kernel[:2]),
            "stride": list(stage.stride),
            "padding": stage.padding,
            "bits_per_pixel": stage.bits_per_pixel,
        }
    elif type(stage) is FullyConnectedStage:
        payload = {
            "type": "FullyConnectedStage",
            "name": stage.name,
            "in_features": stage.in_features,
            "out_features": stage.out_features,
            "bits_per_pixel": stage.bits_per_pixel,
        }
    else:
        raise SerializationError(
            f"stage {stage.name!r} has unsupported type "
            f"{type(stage).__name__}; supported: PixelInput, ProcessStage, "
            f"DNNProcessStage, Conv2DStage, DepthwiseConv2DStage, "
            f"FullyConnectedStage")
    payload["inputs"] = [producer.name for producer in stage.input_stages]
    return payload


def decode_stage(payload: Dict[str, Any]) -> Stage:
    """One stage from its dict form (producers wired separately)."""
    kind = payload.get("type")
    if kind == "PixelInput":
        return PixelInput(payload["size"], name=payload["name"],
                          bits_per_pixel=payload.get("bits_per_pixel", 8))
    if kind in ("ProcessStage", "DNNProcessStage"):
        cls = ProcessStage if kind == "ProcessStage" else DNNProcessStage
        return cls(payload["name"], input_size=payload["input_size"],
                   kernel=payload["kernel"], stride=payload["stride"],
                   ops_per_output=payload.get("ops_per_output"),
                   bits_per_pixel=payload.get("bits_per_pixel", 8),
                   output_compression=payload.get("output_compression", 1.0),
                   padding=payload.get("padding", "valid"))
    if kind == "Conv2DStage":
        return Conv2DStage(payload["name"], input_size=payload["input_size"],
                           num_kernels=payload["num_kernels"],
                           kernel_size=payload["kernel_size"],
                           stride=payload.get("stride", (1, 1, 1)),
                           bits_per_pixel=payload.get("bits_per_pixel", 8),
                           padding=payload.get("padding", "same"))
    if kind == "DepthwiseConv2DStage":
        return DepthwiseConv2DStage(
            payload["name"], input_size=payload["input_size"],
            kernel_size=payload["kernel_size"],
            stride=payload.get("stride", (1, 1, 1)),
            bits_per_pixel=payload.get("bits_per_pixel", 8),
            padding=payload.get("padding", "same"))
    if kind == "FullyConnectedStage":
        return FullyConnectedStage(
            payload["name"], in_features=payload["in_features"],
            out_features=payload["out_features"],
            bits_per_pixel=payload.get("bits_per_pixel", 8))
    raise SerializationError(f"unknown stage type {kind!r}")


def encode_stages(stages: Sequence[Stage]) -> List[Dict[str, Any]]:
    """A stage list to dicts, preserving declaration order."""
    return [encode_stage(stage) for stage in stages]


def decode_stages(payloads: Sequence[Dict[str, Any]]) -> List[Stage]:
    """Rebuild a stage list and its producer wiring."""
    stages = [decode_stage(payload) for payload in payloads]
    by_name = {stage.name: stage for stage in stages}
    if len(by_name) != len(stages):
        raise SerializationError("stage payload contains duplicate names")
    for stage, payload in zip(stages, payloads):
        for producer_name in payload.get("inputs", []):
            if producer_name not in by_name:
                raise SerializationError(
                    f"stage {stage.name!r} consumes unknown stage "
                    f"{producer_name!r}")
            stage.set_input_stage(by_name[producer_name])
    return stages


# --- analog cells, components, arrays ---------------------------------------


def encode_cell(cell: AnalogCell) -> Dict[str, Any]:
    """One A-Cell to a dict."""
    if type(cell) is DynamicCell:
        return {"type": "dynamic", "name": cell.name,
                "nodes": [[c, v] for c, v in cell.nodes]}
    if type(cell) is StaticCell:
        return {"type": "static", "name": cell.name,
                "load_capacitance": cell.load_capacitance,
                "voltage_swing": cell.voltage_swing,
                "vdda": cell.vdda, "mode": cell.mode,
                "gain": cell.gain, "gm_id": cell.gm_id}
    if type(cell) is NonLinearCell:
        return {"type": "nonlinear", "name": cell.name, "bits": cell.bits,
                "energy_per_conversion": cell.energy_per_conversion}
    if type(cell) is _SingleSlopeCell:
        return {"type": "single_slope", "name": cell.name, "bits": cell.bits,
                "comparator_bias": cell.comparator_bias, "vdda": cell.vdda,
                "counter_energy_per_step": cell.counter_energy_per_step}
    raise SerializationError(
        f"cell {cell.name!r} has unsupported type {type(cell).__name__}")


def decode_cell(payload: Dict[str, Any]) -> AnalogCell:
    """One A-Cell from its dict form."""
    kind = payload.get("type")
    if kind == "dynamic":
        return DynamicCell(payload["name"],
                           [tuple(node) for node in payload["nodes"]])
    if kind == "static":
        return StaticCell(payload["name"],
                          load_capacitance=payload["load_capacitance"],
                          voltage_swing=payload["voltage_swing"],
                          vdda=payload["vdda"], mode=payload["mode"],
                          gain=payload["gain"], gm_id=payload["gm_id"])
    if kind == "nonlinear":
        return NonLinearCell(
            payload["name"], bits=payload["bits"],
            energy_per_conversion=payload.get("energy_per_conversion"))
    if kind == "single_slope":
        return _SingleSlopeCell(
            payload["name"], bits=payload["bits"],
            comparator_bias=payload["comparator_bias"], vdda=payload["vdda"],
            counter_energy_per_step=payload["counter_energy_per_step"])
    raise SerializationError(f"unknown cell type {kind!r}")


def encode_component(component: AnalogComponent) -> Dict[str, Any]:
    """One A-Component (with its cell usages) to a dict."""
    if type(component) is not AnalogComponent:
        raise SerializationError(
            f"component {component.name!r} has unsupported type "
            f"{type(component).__name__}")
    return {
        "name": component.name,
        "input_domain": component.input_domain.value,
        "output_domain": component.output_domain.value,
        "num_input": list(component.num_input),
        "num_output": list(component.num_output),
        "cells": [
            {
                "cell": encode_cell(usage.cell),
                "spatial": usage.spatial,
                "temporal": usage.temporal,
                "on_critical_path": usage.on_critical_path,
                "static_time": usage.static_time,
            }
            for usage in component.cell_usages
        ],
    }


def decode_component(payload: Dict[str, Any]) -> AnalogComponent:
    """One A-Component from its dict form."""
    usages = [
        CellUsage(decode_cell(raw["cell"]),
                  spatial=raw.get("spatial", 1),
                  temporal=raw.get("temporal", 1),
                  on_critical_path=raw.get("on_critical_path", True),
                  static_time=raw.get("static_time"))
        for raw in payload["cells"]
    ]
    return AnalogComponent(payload["name"],
                           SignalDomain(payload["input_domain"]),
                           SignalDomain(payload["output_domain"]),
                           usages,
                           num_input=payload.get("num_input", (1, 1)),
                           num_output=payload.get("num_output", (1, 1)))


def encode_analog_array(array: AnalogArray) -> Dict[str, Any]:
    """One AFA to a dict; downstream consumers referenced by name."""
    return {
        "name": array.name,
        "layer": array.layer,
        "num_input": list(array.num_input),
        "num_output": list(array.num_output),
        "category": array._category,
        "components": [
            {"component": encode_component(component), "count": count}
            for component, count in array.components
        ],
        "output_arrays": [consumer.name for consumer in array.output_arrays],
        "output_memories": [memory.name
                            for memory in array.output_memories],
    }


def decode_analog_array(payload: Dict[str, Any]) -> AnalogArray:
    """One AFA from its dict form (wiring resolved by the system decoder)."""
    array = AnalogArray(payload["name"], payload["layer"],
                        num_input=payload["num_input"],
                        num_output=payload["num_output"],
                        category=payload.get("category"))
    for entry in payload["components"]:
        array.add_component(decode_component(entry["component"]),
                            (entry["count"],))
    return array


# --- digital memories and compute units -------------------------------------


def _encode_memory_common(memory: DigitalMemory) -> Dict[str, Any]:
    return {
        "name": memory.name,
        "layer": memory.layer,
        "write_energy_per_word": memory.write_energy_per_word,
        "read_energy_per_word": memory.read_energy_per_word,
        "pixels_per_write_word": memory.pixels_per_write_word,
        "pixels_per_read_word": memory.pixels_per_read_word,
        "leakage_power": memory.leakage_power,
        "duty_alpha": memory.duty_alpha,
        "num_read_ports": memory.num_read_ports,
        "num_write_ports": memory.num_write_ports,
        "area": memory.area,
    }


def encode_memory(memory: DigitalMemory) -> Dict[str, Any]:
    """One digital memory structure to a dict."""
    payload = _encode_memory_common(memory)
    if type(memory) is FIFO:
        payload["type"] = "FIFO"
        payload["size"] = list(memory.size)
    elif type(memory) is LineBuffer:
        payload["type"] = "LineBuffer"
        payload["size"] = list(memory.size)
    elif type(memory) is DoubleBuffer:
        payload["type"] = "DoubleBuffer"
        payload["size"] = list(memory.size)
        payload["capacity_bytes"] = memory.capacity_bytes
    elif type(memory) is DigitalMemory:
        payload["type"] = "DigitalMemory"
        payload["capacity_pixels"] = memory.capacity_pixels
    else:
        raise SerializationError(
            f"memory {memory.name!r} has unsupported type "
            f"{type(memory).__name__}")
    return payload


def decode_memory(payload: Dict[str, Any]) -> DigitalMemory:
    """One digital memory structure from its dict form."""
    kind = payload.get("type")
    common = dict(
        write_energy_per_word=payload["write_energy_per_word"],
        read_energy_per_word=payload["read_energy_per_word"],
        pixels_per_write_word=payload.get("pixels_per_write_word", 1),
        pixels_per_read_word=payload.get("pixels_per_read_word", 1),
        leakage_power=payload.get("leakage_power", 0.0),
        duty_alpha=payload.get("duty_alpha", 1.0),
        num_read_ports=payload.get("num_read_ports", 1),
        num_write_ports=payload.get("num_write_ports", 1),
        area=payload.get("area", 0.0))
    name, layer = payload["name"], payload["layer"]
    if kind == "FIFO":
        return FIFO(name, layer, size=payload["size"], **common)
    if kind == "LineBuffer":
        return LineBuffer(name, layer, size=payload["size"], **common)
    if kind == "DoubleBuffer":
        return DoubleBuffer(name, layer, size=payload["size"],
                            capacity_bytes=payload.get("capacity_bytes"),
                            **common)
    if kind == "DigitalMemory":
        return DigitalMemory(name, layer,
                             capacity_pixels=payload["capacity_pixels"],
                             **common)
    raise SerializationError(f"unknown memory type {kind!r}")


def encode_compute_unit(unit: ComputeUnit) -> Dict[str, Any]:
    """One compute unit to a dict; memories referenced by name."""
    wiring = {
        "inputs": [memory.name for memory in unit.input_memories],
        "output": unit.output_memory.name if unit.output_memory else None,
        "is_sink": unit.is_sink,
    }
    if type(unit) is SystolicArray:
        return {
            "type": "SystolicArray",
            "name": unit.name,
            "layer": unit.layer,
            "dimensions": list(unit.dimensions),
            "energy_per_mac": unit.energy_per_mac,
            "utilization": unit.utilization,
            "num_stages": unit.num_stages,
            "clock_hz": unit.clock_hz,
            "area": unit.area,
            **wiring,
        }
    if type(unit) is ComputeUnit:
        return {
            "type": "ComputeUnit",
            "name": unit.name,
            "layer": unit.layer,
            "input_pixels_per_cycle": [list(shape) for shape
                                       in unit.input_pixels_per_cycle],
            "output_pixels_per_cycle": list(unit.output_pixels_per_cycle),
            "energy_per_cycle": unit.energy_per_cycle,
            "num_stages": unit.num_stages,
            "clock_hz": unit.clock_hz,
            "area": unit.area,
            **wiring,
        }
    raise SerializationError(
        f"compute unit {unit.name!r} has unsupported type "
        f"{type(unit).__name__}")


def decode_compute_unit(payload: Dict[str, Any]) -> ComputeUnit:
    """One compute unit from its dict form (wiring resolved separately)."""
    kind = payload.get("type")
    if kind == "SystolicArray":
        return SystolicArray(payload["name"], payload["layer"],
                             dimensions=payload["dimensions"],
                             energy_per_mac=payload["energy_per_mac"],
                             utilization=payload.get("utilization", 0.85),
                             num_stages=payload.get("num_stages", 2),
                             clock_hz=payload["clock_hz"],
                             area=payload.get("area", 0.0))
    if kind == "ComputeUnit":
        return ComputeUnit(
            payload["name"], payload["layer"],
            input_pixels_per_cycle=payload["input_pixels_per_cycle"],
            output_pixels_per_cycle=payload["output_pixels_per_cycle"],
            energy_per_cycle=payload["energy_per_cycle"],
            num_stages=payload.get("num_stages", 1),
            clock_hz=payload["clock_hz"],
            area=payload.get("area", 0.0))
    raise SerializationError(f"unknown compute unit type {kind!r}")


# --- the sensor system -------------------------------------------------------


def encode_system(system: SensorSystem) -> Dict[str, Any]:
    """A complete sensor system to a dict."""
    pixel_array = None
    if system.pixel_array_dims is not None:
        rows, cols = system.pixel_array_dims
        pixel_array = {"rows": rows, "cols": cols,
                       "pitch": system.pixel_pitch}
    offchip_host = None
    if OFF_CHIP in system.layers:
        offchip_host = system.layers[OFF_CHIP].node_nm
    return {
        "name": system.name,
        "layers": [{"name": layer.name, "node_nm": layer.node_nm}
                   for layer in system.layers.values()
                   if layer.name != OFF_CHIP],
        "offchip_host": offchip_host,
        "analog_arrays": [encode_analog_array(array)
                          for array in system.analog_arrays],
        "memories": [encode_memory(memory) for memory in system.memories],
        "compute_units": [encode_compute_unit(unit)
                          for unit in system.compute_units],
        "offchip_interface": {
            "name": system.offchip_interface.name,
            "energy_per_byte": system.offchip_interface.energy_per_byte,
        },
        "interlayer_interface": {
            "name": system.interlayer_interface.name,
            "energy_per_byte": system.interlayer_interface.energy_per_byte,
        },
        "pixel_array": pixel_array,
    }


def decode_system(payload: Dict[str, Any]) -> SensorSystem:
    """A complete sensor system from its dict form, wiring included."""
    try:
        layers = [Layer(raw["name"], raw["node_nm"])
                  for raw in payload["layers"]]
        system = SensorSystem(payload["name"], layers=layers)
        if payload.get("offchip_host") is not None:
            system.add_offchip_host(payload["offchip_host"])

        memories = {raw["name"]: decode_memory(raw)
                    for raw in payload.get("memories", [])}
        arrays = {raw["name"]: decode_analog_array(raw)
                  for raw in payload.get("analog_arrays", [])}
        units = {raw["name"]: decode_compute_unit(raw)
                 for raw in payload.get("compute_units", [])}

        # Wiring pass: names resolve only once every unit exists.
        for raw in payload.get("analog_arrays", []):
            array = arrays[raw["name"]]
            for consumer_name in raw.get("output_arrays", []):
                array.set_output(_resolve(arrays, consumer_name, "array"))
            for memory_name in raw.get("output_memories", []):
                array.set_output(_resolve(memories, memory_name, "memory"))
        for raw in payload.get("compute_units", []):
            unit = units[raw["name"]]
            for memory_name in raw.get("inputs", []):
                unit.set_input(_resolve(memories, memory_name, "memory"))
            if raw.get("output") is not None:
                unit.set_output(_resolve(memories, raw["output"], "memory"))
            if raw.get("is_sink"):
                unit.set_sink()

        for raw in payload.get("analog_arrays", []):
            system.add_analog_array(arrays[raw["name"]])
        for raw in payload.get("memories", []):
            system.add_memory(memories[raw["name"]])
        for raw in payload.get("compute_units", []):
            system.add_compute_unit(units[raw["name"]])

        for role, setter in (("offchip_interface",
                              system.set_offchip_interface),
                             ("interlayer_interface",
                              system.set_interlayer_interface)):
            raw = payload.get(role)
            if raw is not None:
                setter(Interface(raw["name"], raw["energy_per_byte"]))
        if payload.get("pixel_array") is not None:
            geometry = payload["pixel_array"]
            system.set_pixel_array_geometry(geometry["rows"],
                                            geometry["cols"],
                                            pitch=geometry["pitch"])
    except KeyError as error:
        raise SerializationError(
            f"malformed system payload: missing key {error}") from error
    return system


def _resolve(pool: Dict[str, Any], name: str, kind: str) -> Any:
    if name not in pool:
        raise SerializationError(f"wiring references unknown {kind} {name!r}")
    return pool[name]


# --- the full design ---------------------------------------------------------


def encode_design(stages: Sequence[Stage], system: SensorSystem,
                  mapping: Mapping, name: Optional[str] = None
                  ) -> Dict[str, Any]:
    """The complete three-part design to a versioned dict payload."""
    return {
        "schema": DESIGN_SCHEMA,
        "name": name if name is not None else system.name,
        "stages": encode_stages(stages),
        "system": encode_system(system),
        "mapping": dict(mapping.assignments),
    }


def decode_design_parts(payload: Dict[str, Any]):
    """``(graph, system, mapping, name)`` from a design payload."""
    schema = payload.get("schema")
    if schema != DESIGN_SCHEMA:
        raise SerializationError(
            f"unsupported design schema {schema!r}; expected "
            f"{DESIGN_SCHEMA!r}")
    try:
        stages = decode_stages(payload["stages"])
        system = decode_system(payload["system"])
        mapping = Mapping(payload["mapping"])
    except KeyError as error:
        raise SerializationError(
            f"malformed design payload: missing key {error}") from error
    # Validate here (fail fast) and hand the graph on so Design need not
    # rebuild it.
    graph = StageGraph(stages)
    return graph, system, mapping, payload.get("name", system.name)
