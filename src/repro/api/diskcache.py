"""The persistent tier of the simulator's two-tier result cache.

A :class:`DiskResultCache` stores :class:`~repro.api.result.SimResult`
payloads under one directory, keyed — exactly like the in-memory tier —
by ``(design.content_hash, options)``, so every CLI invocation,
benchmark run, and exploration sharing a ``cache_dir`` starts warm.

On-disk format
--------------
One JSON file per key, named by the SHA-256 of the key, carrying the
versioned :data:`DISK_CACHE_SCHEMA` tag.  Loads are corruption-tolerant:
a truncated, unparseable, or schema-mismatched entry is a miss, never an
exception (corrupt files are swept away; files with a foreign schema are
left for whoever owns them).  Writes go through a temp file and
``os.replace``, so concurrent sessions sharing a directory always read
complete entries and last-writer-wins races are benign — both writers
hold identical content for identical keys.

Eviction is LRU by file mtime (bumped on every hit): when a write
pushes the directory over ``max_bytes``, the oldest entries are removed
down to a low-water mark (90% of the bound), so a cache running at
capacity isn't re-scanned on every write.  The directory size is
tracked as a cheap running estimate between full scans — one scan per
eviction pass, O(1) bookkeeping per put — which keeps the bound
best-effort under concurrent writers (each session enforces it against
its own view, refreshed on every pass).  Hit/miss/eviction counters are
per-session and surface through :meth:`repro.api.Simulator.cache_info`.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pathlib
import re
import threading
import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.api.result import SimOptions, SimResult
from repro.exceptions import CamJError, ConfigurationError
from repro.resilience.faults import get_injector

#: Version tag of the on-disk entry format.  Bump on any incompatible
#: change; entries with any other tag are treated as misses.
DISK_CACHE_SCHEMA = "repro.diskcache/1"

#: Default size bound of one cache directory.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Eviction drains to this fraction of ``max_bytes``, so back-to-back
#: writes at capacity don't trigger a directory scan each.
LOW_WATER_FRACTION = 0.9

#: Environment variable naming a default cache directory for every
#: :class:`~repro.api.Simulator` that does not set ``cache_dir``.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: What a cache entry's filename looks like (the SHA-256 key digest).
#: ``clear`` and eviction touch nothing else, so pointing a cache at a
#: directory holding other JSON files never deletes them.
_ENTRY_NAME = re.compile(r"^[0-9a-f]{64}\.json$")

#: Errnos that mean the directory itself is unusable (full, read-only,
#: forbidden, dying media): one of these downgrades the session to
#: memory-only immediately — retrying every key would just repeat it.
_HARD_ERRNOS = frozenset(
    code for code in (
        errno.ENOSPC, getattr(errno, "EDQUOT", None), errno.EROFS,
        errno.EACCES, errno.EPERM, errno.EIO)
    if code is not None)

#: How many *soft* disk errors (corrupt entries, transient I/O noise)
#: one session tolerates before concluding the tier is doing more harm
#: than good and downgrading anyway.
_SOFT_ERROR_LIMIT = 8


@dataclass(frozen=True)
class DiskCacheInfo:
    """State and per-session counters of one disk cache.

    ``errors`` counts I/O and corruption incidents this session
    absorbed; ``disabled`` reports whether they (or one hard error —
    disk full, read-only, permission denied) downgraded the session to
    memory-only.  A disabled tier is never an exception: simulations
    keep succeeding without persistence.
    """

    directory: str
    entries: int
    total_bytes: int
    max_bytes: int
    hits: int
    misses: int
    evictions: int
    errors: int = 0
    disabled: bool = False


class DiskResultCache:
    """Size-bounded, LRU-evicted result store under one directory.

    Parameters
    ----------
    directory:
        Where entries live; created (with parents) if missing.
    max_bytes:
        Total-size bound enforced after each write; ``None`` means
        :data:`DEFAULT_MAX_BYTES`.

    The cache is safe to share between threads of one process and
    between processes sharing the directory; all coordination happens
    through atomic filesystem operations.
    """

    def __init__(self, directory, max_bytes: Optional[int] = None):
        max_bytes = DEFAULT_MAX_BYTES if max_bytes is None else max_bytes
        if max_bytes < 1:
            raise ConfigurationError(
                f"cache max_bytes must be >= 1, got {max_bytes}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_errors = 0
        #: True once this session gave up on the tier (hard I/O error
        #: or too much corruption).  Probes and writes become no-ops.
        self._disabled = False
        #: Running directory-size estimate; None until the first write
        #: scans, refreshed exactly by every eviction pass.
        self._approx_bytes: Optional[int] = None

    # --- key layout -------------------------------------------------------

    def entry_path(self, design_hash: str, options: SimOptions
                   ) -> pathlib.Path:
        """Where the entry for one ``(design_hash, options)`` key lives."""
        canonical = json.dumps(options.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        digest = hashlib.sha256(
            f"{design_hash}\n{canonical}".encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.json"

    # --- lookups ----------------------------------------------------------

    def get(self, design_hash: str, options: SimOptions
            ) -> Optional[SimResult]:
        """The persisted result for one key, or ``None`` on a miss.

        Every failure mode — missing file, truncated write from a
        crashed process, malformed JSON, unknown schema version, a
        payload the current code cannot rebuild — counts as a miss.
        """
        if self._disabled:
            return self._miss()
        path = self.entry_path(design_hash, options)
        injector = get_injector()
        try:
            if injector.active:
                injector.before_disk("get", path.name)
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return self._miss()
        except OSError as error:
            self._note_disk_error("read", error)
            return self._miss()
        except (ValueError, UnicodeDecodeError) as error:
            self._discard(path)  # corrupt entry: sweep, don't crash
            self._note_disk_error("decode", error)
            return self._miss()
        if not isinstance(payload, dict) \
                or payload.get("schema") != DISK_CACHE_SCHEMA:
            # A different (possibly newer) format owns this file; reject
            # the entry but leave the file alone.
            return self._miss()
        try:
            result = SimResult.from_dict(payload["result"])
        except (KeyError, TypeError, CamJError) as error:
            self._discard(path)
            self._note_disk_error("rebuild", error)
            return self._miss()
        try:
            os.utime(path)  # bump recency for LRU eviction
        except OSError:
            pass
        with self._lock:
            self._hits += 1
        return result

    def put(self, design_hash: str, options: SimOptions,
            result: SimResult) -> bool:
        """Persist one result; returns whether the write landed.

        Cache-write failures (read-only directory, disk full, an
        unserializable payload) are soft: the simulation already
        succeeded, so the caller never sees an exception.  A hard
        failure (or enough soft ones) disables the tier for the rest of
        the session — see :meth:`_note_disk_error`.
        """
        if self._disabled:
            return False
        path = self.entry_path(design_hash, options)
        document = {
            "schema": DISK_CACHE_SCHEMA,
            "design_hash": design_hash,
            "result": result.to_dict(),
        }
        try:
            encoded = json.dumps(document, sort_keys=True)
        except (TypeError, ValueError):
            return False
        temp = path.with_name(f"{path.name}.tmp.{os.getpid()}."
                              f"{threading.get_ident()}")
        injector = get_injector()
        try:
            if injector.active:
                injector.before_disk("put", path.name)
            temp.write_text(encoded + "\n", encoding="utf-8")
            os.replace(temp, path)
        except OSError as error:
            try:
                temp.unlink()
            except OSError:
                pass
            self._note_disk_error("write", error)
            return False
        with self._lock:
            if self._approx_bytes is None:
                self._approx_bytes = sum(
                    size for _, _, size in self._entries())
            else:
                self._approx_bytes += len(encoded) + 1
            over_bound = self._approx_bytes > self.max_bytes
        if over_bound:
            self._evict_over_bound()
        return True

    # --- maintenance ------------------------------------------------------

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path, _, _ in self._entries():
            if self._discard(path):
                removed += 1
        with self._lock:
            self._approx_bytes = 0
        return removed

    def info(self) -> DiskCacheInfo:
        """Current directory state plus this session's counters."""
        entries = self._entries()
        with self._lock:
            return DiskCacheInfo(
                directory=str(self.directory),
                entries=len(entries),
                total_bytes=sum(size for _, _, size in entries),
                max_bytes=self.max_bytes,
                hits=self._hits, misses=self._misses,
                evictions=self._evictions,
                errors=self._disk_errors,
                disabled=self._disabled)

    @property
    def disabled(self) -> bool:
        """Whether this session downgraded the tier to memory-only."""
        return self._disabled

    # --- internals --------------------------------------------------------

    def _miss(self) -> None:
        with self._lock:
            self._misses += 1
        return None

    def _note_disk_error(self, operation: str,
                         error: BaseException) -> None:
        """Record one disk incident; downgrade the tier when warranted.

        Hard errors (:data:`_HARD_ERRNOS` — the directory is full,
        read-only, forbidden, or the media is failing) disable the tier
        at once; soft ones (corruption, transient I/O noise) disable it
        after :data:`_SOFT_ERROR_LIMIT` strikes.  Exactly one warning is
        emitted at the downgrade; the session continues memory-only.
        """
        hard = isinstance(error, OSError) and error.errno in _HARD_ERRNOS
        with self._lock:
            self._disk_errors += 1
            if self._disabled:
                return
            if not hard and self._disk_errors < _SOFT_ERROR_LIMIT:
                return
            self._disabled = True
        warnings.warn(
            f"disk result cache at {self.directory} disabled after "
            f"{operation} failure ({error}); continuing memory-only",
            RuntimeWarning, stacklevel=4)

    def _discard(self, path: pathlib.Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:  # already gone (concurrent sweep) or unwritable
            return False

    def _entries(self) -> List[Tuple[pathlib.Path, float, int]]:
        """All current entries as ``(path, mtime, size)`` triples."""
        entries = []
        try:
            listing = list(os.scandir(self.directory))
        except OSError:
            return entries
        for item in listing:
            if not _ENTRY_NAME.match(item.name):
                continue  # temp files and foreign content are not entries
            try:
                stat = item.stat()
            except OSError:  # unlinked by a concurrent session mid-scan
                continue
            entries.append((pathlib.Path(item.path),
                            stat.st_mtime, stat.st_size))
        return entries

    def _evict_over_bound(self) -> None:
        """Drop least-recently-used entries until under the low-water mark.

        One full directory scan per pass; the exact total it computes
        replaces the running estimate, so concurrent sessions' writes
        are folded in here.
        """
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        evicted = 0
        if total > self.max_bytes:
            floor = self.max_bytes * LOW_WATER_FRACTION
            for path, _, size in sorted(entries,
                                        key=lambda entry: entry[1]):
                if self._discard(path):
                    total -= size
                    evicted += 1
                if total <= floor:
                    break
        with self._lock:
            self._approx_bytes = total
            self._evictions += evicted


def default_cache_dir() -> Optional[str]:
    """The :data:`CACHE_DIR_ENV` directory, or ``None`` when unset."""
    directory = os.environ.get(CACHE_DIR_ENV, "").strip()
    return directory or None
