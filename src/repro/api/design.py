"""The first-class design object: one complete, serializable scenario.

A :class:`Design` bundles the paper's three-part programming interface
(Fig. 5) — the algorithm :class:`~repro.sw.dag.StageGraph`, the hardware
:class:`~repro.hw.chip.SensorSystem`, and the
:class:`~repro.sim.mapping.Mapping` between them — into a single frozen
value that can be hashed, serialized to JSON, stored, diffed, and
replayed.  It also unpacks like the legacy ``(stages, system, mapping)``
triple, so every pre-existing consumer of the builder functions keeps
working unchanged.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.api import serialize
from repro.exceptions import SerializationError
from repro.hw.chip import SensorSystem
from repro.sim.mapping import Mapping
from repro.sw.dag import StageGraph
from repro.sw.stage import Stage


class Design:
    """A frozen ``(stages, system, mapping)`` bundle.

    Parameters
    ----------
    stages:
        A :class:`StageGraph` or the plain stage list of ``camj_sw_config``.
    system:
        The hardware description.
    mapping:
        A :class:`Mapping` or the plain dict of ``camj_mapping``.
    name:
        Optional label; defaults to the system name.

    The mapping is validated against both descriptions at construction,
    so an inconsistent design fails fast rather than at simulation time.
    Freezing is shallow: the bundled objects are not copied, and mutating
    them after construction invalidates the cached content hash.
    """

    __slots__ = ("_stages", "_graph", "_system", "_mapping", "_name",
                 "_hash_cache", "_resolved_cache", "_checks_cache",
                 "_pass_memo")

    def __init__(self, stages: Union[StageGraph, Sequence[Stage]],
                 system: SensorSystem,
                 mapping: Union[Mapping, Dict[str, str]],
                 name: Optional[str] = None):
        if isinstance(stages, StageGraph):
            graph = stages
            stage_list = list(stages.stages)
        else:
            stage_list = list(stages)
            graph = StageGraph(stage_list)
        mapping = mapping if isinstance(mapping, Mapping) else Mapping(mapping)
        mapping.validate(graph, system)
        object.__setattr__(self, "_stages", stage_list)
        object.__setattr__(self, "_graph", graph)
        object.__setattr__(self, "_system", system)
        object.__setattr__(self, "_mapping", mapping)
        object.__setattr__(self, "_name",
                           name if name is not None else system.name)
        object.__setattr__(self, "_hash_cache", None)
        object.__setattr__(self, "_resolved_cache", None)
        object.__setattr__(self, "_checks_cache", None)
        object.__setattr__(self, "_pass_memo", None)

    # --- frozen-ness ------------------------------------------------------

    def __setattr__(self, attr: str, value: Any) -> None:
        raise AttributeError(
            f"Design is frozen; cannot set {attr!r}")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(
            f"Design is frozen; cannot delete {attr!r}")

    # --- the three parts ----------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable label of the scenario."""
        return self._name

    @property
    def stages(self) -> List[Stage]:
        """The algorithm stages, in declaration order."""
        return list(self._stages)

    @property
    def graph(self) -> StageGraph:
        """The validated algorithm DAG."""
        return self._graph

    @property
    def system(self) -> SensorSystem:
        """The hardware description."""
        return self._system

    @property
    def mapping(self) -> Mapping:
        """The stage-to-hardware mapping."""
        return self._mapping

    @property
    def resolved_units(self) -> Dict[str, Any]:
        """Stage name -> hardware unit object, resolved once and cached.

        The mapping was validated at construction, so resolution skips
        re-validation; the engine threads this dict through every phase
        of a run instead of re-resolving.
        """
        cached = self._resolved_cache
        if cached is None:
            cached = self._mapping.resolve(self._graph, self._system,
                                           validate=False)
            object.__setattr__(self, "_resolved_cache", cached)
        return cached

    @property
    def pass_memo(self):
        """This design's memo of design-only simulation pass outputs.

        The engine's passes (:data:`repro.sim.simulator.SIM_PASSES`)
        that read nothing but the design — the digital timeline, the
        analog usage walk, the cycle-accurate latency, the
        communication energy — memoize here, so sweeping options over
        one design object re-runs only the option-dependent passes.
        :class:`~repro.api.Simulator` sessions additionally share one
        memo per content hash across independently built twins.
        """
        from repro.sim.simulator import PassMemo

        cached = self._pass_memo
        if cached is None:
            cached = PassMemo()
            object.__setattr__(self, "_pass_memo", cached)
        return cached

    def ensure_checked(self) -> None:
        """Run the pre-simulation design checks exactly once.

        The checks depend only on the design, never on simulation
        options, so their outcome — pass or the raised
        :class:`~repro.exceptions.CheckError` — is memoized.  Sessions
        re-running one design across many options (frame-rate sweeps,
        cycle-accurate validation passes) pay for the check walk once.
        """
        from repro.sim.checks import run_pre_simulation_checks

        cached = self._checks_cache
        if cached is None:
            try:
                run_pre_simulation_checks(self._graph, self._system,
                                          self._mapping,
                                          resolved=self.resolved_units)
            except Exception as error:
                object.__setattr__(self, "_checks_cache", error)
                raise
            object.__setattr__(self, "_checks_cache", True)
        elif cached is not True:
            # Raise a fresh instance per call: re-raising the memoized one
            # would mutate its shared __traceback__ and alias one object
            # across every captured SimResult.
            raise type(cached)(*cached.args) from cached

    # --- legacy triple protocol ---------------------------------------------

    def __iter__(self) -> Iterator:
        """Unpack like the legacy ``(stages, system, mapping)`` triple."""
        return iter(self.as_tuple())

    def __len__(self) -> int:
        return 3

    def __getitem__(self, index):
        return self.as_tuple()[index]

    def as_tuple(self):
        """``(stage_list, system, mapping_dict)`` — the legacy triple."""
        return (list(self._stages), self._system,
                dict(self._mapping.assignments))

    # --- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Versioned, JSON-compatible payload (see ``repro.api.serialize``)."""
        return serialize.encode_design(self._stages, self._system,
                                       self._mapping, name=self._name)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Design":
        """Inverse of :meth:`to_dict`."""
        graph, system, mapping, name = serialize.decode_design_parts(payload)
        return cls(graph, system, mapping, name=name)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The design as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "Design":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"design document is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def save(self, path) -> None:
        """Write the design spec to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "Design":
        """Read a design spec written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # --- identity ---------------------------------------------------------

    @property
    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical serialized form.

        Two designs built independently from the same parameters hash
        identically; the hash keys the :class:`~repro.api.Simulator`
        result cache and names archived reports.
        """
        cached = self._hash_cache
        if cached is None:
            try:
                canonical = json.dumps(self.to_dict(), sort_keys=True,
                                       separators=(",", ":"))
            except SerializationError as error:
                # Remember the failure too: custom-typed designs would
                # otherwise re-walk the whole tree on every hash/eq/key.
                object.__setattr__(self, "_hash_cache", error)
                raise
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_hash_cache", cached)
        if isinstance(cached, SerializationError):
            raise cached
        return cached

    def _content_hash_or_none(self) -> Optional[str]:
        try:
            return self.content_hash
        except SerializationError:
            # Custom stage/cell/unit types simulate fine but have no
            # canonical form; such designs fall back to identity.
            return None

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Design):
            return NotImplemented
        if self is other:
            return True
        ours, theirs = self._content_hash_or_none(), \
            other._content_hash_or_none()
        if ours is None or theirs is None:
            return False
        return ours == theirs

    def __hash__(self) -> int:
        digest = self._content_hash_or_none()
        return hash(digest) if digest is not None else id(self)

    def __repr__(self) -> str:
        try:
            digest = self.content_hash[:12]
        except SerializationError:
            digest = "<unhashable>"
        return (f"Design({self._name!r}, stages={len(self._stages)}, "
                f"hash={digest})")
