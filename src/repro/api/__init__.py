"""The first-class session API: designs in, structured results out.

This package turns the paper's three-part interface into values:

* :class:`Design` — a frozen, hashable, JSON-serializable bundle of
  ``(StageGraph, SensorSystem, Mapping)``;
* :class:`SimOptions` / :class:`SimResult` — frozen run options and the
  structured outcome (report or typed failure) of one simulation;
* :class:`Simulator` — a session that runs designs, caches results by
  content hash, and executes batches in parallel via ``run_many``;
* the spec layer (:func:`load_scenario`, :func:`design_from_spec`) and
  the use-case registry (:func:`build_usecase`), which make every
  scenario storable, diffable, and replayable as plain JSON.
"""

from repro.api.design import Design
from repro.api.diskcache import DiskCacheInfo, DiskResultCache
from repro.api.registry import (
    available_usecases,
    build_usecase,
    register_usecase,
)
from repro.api.result import SimOptions, SimResult
from repro.api.serialize import DESIGN_SCHEMA
from repro.api.simulator import BatchStats, CacheInfo, Simulator, run_design
from repro.api.spec import design_from_spec, load_scenario, scenario_from_spec

__all__ = [
    "Design",
    "SimOptions",
    "SimResult",
    "Simulator",
    "BatchStats",
    "CacheInfo",
    "DiskCacheInfo",
    "DiskResultCache",
    "run_design",
    "DESIGN_SCHEMA",
    "design_from_spec",
    "scenario_from_spec",
    "load_scenario",
    "build_usecase",
    "register_usecase",
    "available_usecases",
]
