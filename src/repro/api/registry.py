"""Named design builders, addressable from serialized scenario specs.

A spec file may reference a design *by name with parameters* instead of
embedding the full structural payload::

    {"design": {"usecase": "edgaze", "params": {"placement": "2D-In",
                                                "cis_node": 65}}}

The registry maps those names onto the Sec. 6 use-case builders (and any
builder user code registers at runtime via :func:`register_usecase`).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.api.design import Design
from repro.exceptions import ConfigurationError

_REGISTRY: Dict[str, Callable[..., Design]] = {}
_BUILTINS_LOADED = False


def register_usecase(name: str,
                     builder: Callable[..., Design]) -> Callable[..., Design]:
    """Register ``builder`` under ``name``; returns the builder."""
    if not name:
        raise ConfigurationError("usecase name must be non-empty")
    _REGISTRY[name] = builder
    return builder


def _load_builtins() -> None:
    """Register the Sec. 6 use cases (lazy: usecases import the api)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from repro.usecases import (
        UseCaseConfig,
        build_edgaze,
        build_edgaze_mixed,
        build_rhythmic,
    )
    from repro.usecases.fig5 import build_fig5_design
    from repro.usecases.threelayer import build_three_layer

    register_usecase("fig5", build_fig5_design)
    register_usecase(
        "rhythmic",
        lambda placement="2D-In", cis_node=65:
            build_rhythmic(UseCaseConfig(placement, cis_node)))
    register_usecase(
        "edgaze",
        lambda placement="2D-In", cis_node=65:
            build_edgaze(UseCaseConfig(placement, cis_node)))
    register_usecase(
        "edgaze_mixed",
        lambda cis_node=65: build_edgaze_mixed(cis_node))
    register_usecase("threelayer", build_three_layer)
    # Only mark loaded on success; a failed import above re-raises on
    # the next call instead of leaving an empty registry behind.
    _BUILTINS_LOADED = True


def available_usecases() -> List[str]:
    """Registered builder names."""
    _load_builtins()
    return sorted(_REGISTRY)


def build_usecase(name: str, **params) -> Design:
    """Instantiate a registered use case as a :class:`Design`."""
    _load_builtins()
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown usecase {name!r}; available: {available_usecases()}")
    try:
        built = _REGISTRY[name](**params)
    except TypeError as error:
        # Bad/missing params arrive from user spec files: fail as a
        # framework error, not a traceback.
        raise ConfigurationError(
            f"usecase {name!r} rejected params {sorted(params)}: "
            f"{error}") from error
    if isinstance(built, Design):
        return built
    # A legacy builder returning the loose triple still works.
    stages, system, mapping = built
    return Design(stages, system, mapping)
