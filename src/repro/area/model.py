"""Conservative area estimation and power density (Sec. 6.2, Table 3).

The paper deliberately uses a *conservative* area proxy to upper-bound
power density: the pixel array approximates the analog area and the SRAM
macros approximate the digital area.  For a 2D design both shares sit on
one die; for a stacked design each layer's density is its own power over
its own area, and the reported chip density is the maximum across layers
(the thermal-relevant hotspot bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import units
from repro.exceptions import ConfigurationError
from repro.energy.report import EnergyReport
from repro.hw.chip import SensorSystem
from repro.hw.layer import OFF_CHIP

#: Reference power densities the paper compares against (Sec. 6.2).
CPU_POWER_DENSITY = 1.0 * units.W / units.mm2
GPU_POWER_DENSITY = 0.3 * units.W / units.mm2


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-layer silicon area of a sensor system (square meters)."""

    by_layer: Dict[str, float]

    @property
    def total(self) -> float:
        """Total area across on-chip layers."""
        return sum(self.by_layer.values())

    @property
    def footprint(self) -> float:
        """Die footprint of a stacked design: all layers share the outline
        of the largest layer (typically the pixel array)."""
        return max(self.by_layer.values(), default=0.0)


def estimate_area(system: SensorSystem) -> AreaBreakdown:
    """Conservative per-layer area: pixel array + memory macros + PEs."""
    by_layer: Dict[str, float] = {}
    for layer_name in system.layers:
        if layer_name == OFF_CHIP:
            continue
        area = system.memory_area(layer_name)
        area += sum(unit.area for unit in system.compute_units
                    if unit.layer == layer_name)
        by_layer[layer_name] = area
    # The pixel array sits on the layer hosting the first analog array.
    if system.analog_arrays and system.pixel_array_area > 0:
        pixel_layer = system.analog_arrays[0].layer
        by_layer[pixel_layer] = (by_layer.get(pixel_layer, 0.0)
                                 + system.pixel_array_area)
    return AreaBreakdown(by_layer=by_layer)


def _is_comm_entry(entry) -> bool:
    from repro.energy.report import Category
    return entry.category in (Category.MIPI, Category.UTSV)


def layer_power_density(system: SensorSystem, report: EnergyReport,
                        include_comm: bool = False) -> Dict[str, float]:
    """Power density of each on-chip layer (W/m^2 in SI; print as mW/mm^2).

    Communication energy (MIPI/uTSV link power) is excluded by default,
    matching Table 3's on-die accounting; pass ``include_comm=True`` to
    fold the transmitter power back in.
    """
    areas = estimate_area(system)
    power_by_layer = {}
    for entry in report.entries:
        if entry.layer == OFF_CHIP:
            continue
        if not include_comm and _is_comm_entry(entry):
            continue
        power_by_layer[entry.layer] = (power_by_layer.get(entry.layer, 0.0)
                                       + entry.energy * report.frame_rate)
    densities = {}
    # In a stacked design every die shares the chip footprint, so each
    # layer's density is its power over the footprint; in a 2D design the
    # single die's own area applies (same thing when only one layer exists).
    footprint = areas.footprint if system.is_stacked else None
    for layer_name, power in power_by_layer.items():
        area = footprint if footprint else areas.by_layer.get(layer_name,
                                                              0.0)
        if area <= 0:
            continue
        densities[layer_name] = power / area
    return densities


def power_density(system: SensorSystem, report: EnergyReport,
                  include_comm: bool = False) -> float:
    """Chip power density: on-chip power over area.

    2D designs divide total on-chip power by the single die area; stacked
    designs report the maximum per-layer density (the hotspot bound the
    thermal argument of Sec. 6.2 cares about).
    """
    densities = layer_power_density(system, report,
                                    include_comm=include_comm)
    if not densities:
        raise ConfigurationError(
            f"system {system.name!r} has no on-chip area to compute a "
            f"power density over; set pixel geometry or memory areas")
    if system.is_stacked:
        return max(densities.values())
    areas = estimate_area(system)
    total_area = areas.total
    total_power = sum(entry.energy * report.frame_rate
                      for entry in report.entries
                      if entry.layer != OFF_CHIP
                      and (include_comm or not _is_comm_entry(entry)))
    return total_power / total_area


def power_density_batch(system: SensorSystem, entries, frame_rate,
                        include_comm: bool = False):
    """Vector mirror of :func:`power_density` over energy columns.

    ``entries`` are ``VectorEntry`` columns (per-point energy vectors or
    design-constant floats) and ``frame_rate`` is the per-point frame
    rate vector; the fold orders and division sequence replicate the
    scalar functions exactly, so each element is bit-identical to the
    scalar density of that point.  The no-on-chip-area
    :class:`ConfigurationError` depends only on the design and is raised
    (not masked) for the whole batch, mirroring every scalar point
    failing the same way.
    """
    import numpy as np

    areas = estimate_area(system)
    power_by_layer = {}
    for entry in entries:
        if entry.layer == OFF_CHIP:
            continue
        if not include_comm and _is_comm_entry(entry):
            continue
        power_by_layer[entry.layer] = (power_by_layer.get(entry.layer, 0.0)
                                       + entry.energy * frame_rate)
    densities = {}
    footprint = areas.footprint if system.is_stacked else None
    for layer_name, power in power_by_layer.items():
        area = footprint if footprint else areas.by_layer.get(layer_name,
                                                              0.0)
        if area <= 0:
            continue
        densities[layer_name] = power / area
    if not densities:
        raise ConfigurationError(
            f"system {system.name!r} has no on-chip area to compute a "
            f"power density over; set pixel geometry or memory areas")
    if system.is_stacked:
        # max() over per-layer vectors, element-wise; np.maximum is a
        # selection (never rounds), so ties and order match the scalar
        # max() bit-for-bit.
        best = None
        for value in densities.values():
            best = value if best is None else np.maximum(best, value)
        return best
    total_area = areas.total
    total_power = 0
    for entry in entries:
        if entry.layer != OFF_CHIP \
                and (include_comm or not _is_comm_entry(entry)):
            total_power = total_power + entry.energy * frame_rate
    return total_power / total_area


def format_density(density: float) -> str:
    """Render a power density in the paper's mW/mm^2 unit."""
    return f"{density / (units.mW / units.mm2):.2f} mW/mm^2"
