"""Area and power-density modeling (Table 3 methodology)."""

from repro.area.model import (
    AreaBreakdown,
    estimate_area,
    power_density,
    layer_power_density,
)

__all__ = [
    "AreaBreakdown",
    "estimate_area",
    "power_density",
    "layer_power_density",
]
