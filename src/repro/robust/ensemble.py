"""Ensemble runners: Monte Carlo, corners, sensitivity, worst case.

Each runner fans a family of perturbed designs through the session's
cached, pooled :meth:`~repro.api.simulator.Simulator.run_many` path and
reduces the evaluations into one :class:`RobustResult`, serialized as a
versioned ``repro.robust/1`` document:

* :func:`monte_carlo` — ``samples`` seed-addressed draws of a
  :class:`~repro.robust.variation.VariationModel`, reduced to per-metric
  :class:`Distribution` objects (mean/std/min/max/quantiles);
* :func:`corners` — a named or explicit corner list, with goal-aware
  worst/best bounds and the responsible corner attached;
* :func:`sensitivity` — one-at-a-time ``+/- delta*sigma`` excursions per
  parameter, ranked by elasticity (relative metric change per relative
  parameter change);
* :func:`worst_case` — sensitivity signs steer every parameter to its
  per-metric worst extreme (``cutoff*sigma`` for normal models), which
  is then evaluated and attached as a synthetic corner.

All runners share chunked execution with ``on_progress(completed,
total, cache_hits)`` callbacks and a ``should_stop`` hook that raises
:class:`~repro.explore.engine.ExplorationInterrupted` at the next chunk
boundary — exactly the daemon's cancellation contract.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.api.design import Design
from repro.api.result import SimOptions
from repro.api.simulator import Simulator
from repro.exceptions import (CamJError, ConfigurationError,
                              SerializationError, SimulationError)
from repro.explore.engine import (DEFAULT_OBJECTIVES, RESILIENCE_COUNTERS,
                                  ExplorationInterrupted)
from repro.explore.metrics import Metric, resolve_metrics
from repro.robust.variation import Corner, VariationModel, corner_set, \
    perturb_design

#: Schema tag of a serialized robustness document.
ROBUST_SCHEMA = "repro.robust/1"

#: Default metrics an ensemble evaluates (the explore objectives).
DEFAULT_METRICS = DEFAULT_OBJECTIVES

#: Quantile levels every Monte Carlo distribution reports.
QUANTILE_LEVELS = (0.05, 0.25, 0.50, 0.75, 0.95)

#: At most this many per-sample failures are kept in the document.
MAX_FAILURES_KEPT = 32

#: Label of the unperturbed ensemble member.
NOMINAL_LABEL = "nominal"

def quantile(values: Sequence[float], level: float) -> float:
    """Linear-interpolation quantile of ``values`` (0 <= level <= 1)."""
    ordered = sorted(values)
    if not ordered:
        raise ConfigurationError("quantile of an empty sample")
    position = level * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class Distribution:
    """Summary statistics of one metric over an ensemble.

    A degenerate sample (every value identical — e.g. the
    zero-variation ensemble) reports that value exactly for every
    location statistic and an exact ``0.0`` spread, so nominal-path
    bit-identity survives the reduction arithmetic.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    quantiles: Mapping[str, float]

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Distribution":
        if not values:
            raise ConfigurationError(
                "cannot summarize an empty sample")
        lowest, highest = min(values), max(values)
        if lowest == highest:
            return cls(count=len(values), mean=lowest, std=0.0,
                       minimum=lowest, maximum=highest,
                       quantiles={_quantile_key(level): lowest
                                  for level in QUANTILE_LEVELS})
        mean = math.fsum(values) / len(values)
        variance = math.fsum((value - mean) ** 2
                             for value in values) / len(values)
        return cls(count=len(values), mean=mean, std=math.sqrt(variance),
                   minimum=lowest, maximum=highest,
                   quantiles={_quantile_key(level): quantile(values, level)
                              for level in QUANTILE_LEVELS})

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "mean": self.mean, "std": self.std,
                "min": self.minimum, "max": self.maximum,
                "quantiles": dict(self.quantiles)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Distribution":
        try:
            return cls(count=payload["count"], mean=payload["mean"],
                       std=payload["std"], minimum=payload["min"],
                       maximum=payload["max"],
                       quantiles=dict(payload["quantiles"]))
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed distribution: {error}") from error


def _quantile_key(level: float) -> str:
    return f"p{int(round(level * 100)):02d}"


@dataclass
class RobustResult:
    """Everything one robustness study produced, kind-tagged.

    ``accounting`` counts the perturbed evaluations only (the nominal
    run is reported separately in ``nominal``); ``resilience`` sums the
    fault-tolerance events the underlying batches absorbed.
    """

    kind: str
    name: str
    design_name: Optional[str]
    design_hash: Optional[str]
    options: SimOptions
    metrics: List[str]
    nominal: Dict[str, float]
    accounting: Dict[str, int]
    seed: Optional[int] = None
    samples: Optional[int] = None
    variation: Optional[VariationModel] = None
    distributions: Dict[str, Distribution] = field(default_factory=dict)
    corners: List[Dict[str, Any]] = field(default_factory=list)
    bounds: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    sensitivities: Dict[str, List[Dict[str, Any]]] = field(
        default_factory=dict)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    resilience: Dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(RESILIENCE_COUNTERS, 0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ROBUST_SCHEMA,
            "kind": self.kind,
            "name": self.name,
            "design": self.design_name,
            "design_hash": self.design_hash,
            "options": self.options.to_dict(),
            "metrics": list(self.metrics),
            "nominal": dict(self.nominal),
            "accounting": dict(self.accounting),
            "seed": self.seed,
            "samples": self.samples,
            "variation": (self.variation.to_dict()
                          if self.variation is not None else None),
            "distributions": {name: dist.to_dict()
                              for name, dist in self.distributions.items()},
            "corners": [dict(outcome) for outcome in self.corners],
            "bounds": {name: dict(bound)
                       for name, bound in self.bounds.items()},
            "sensitivities": {name: [dict(entry) for entry in entries]
                              for name, entries
                              in self.sensitivities.items()},
            "failures": [dict(entry) for entry in self.failures],
            "resilience": dict(self.resilience),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RobustResult":
        if not isinstance(payload, Mapping):
            raise SerializationError(
                f"robust document must be an object, "
                f"got {type(payload).__name__}")
        schema = payload.get("schema")
        if schema != ROBUST_SCHEMA:
            raise SerializationError(
                f"expected schema {ROBUST_SCHEMA!r}, got {schema!r}")
        try:
            variation = payload.get("variation")
            return cls(
                kind=payload["kind"],
                name=payload["name"],
                design_name=payload.get("design"),
                design_hash=payload.get("design_hash"),
                options=SimOptions.from_dict(payload.get("options", {})),
                metrics=list(payload["metrics"]),
                nominal=dict(payload["nominal"]),
                accounting=dict(payload["accounting"]),
                seed=payload.get("seed"),
                samples=payload.get("samples"),
                variation=(VariationModel.from_dict(variation)
                           if variation is not None else None),
                distributions={
                    name: Distribution.from_dict(raw)
                    for name, raw
                    in payload.get("distributions", {}).items()},
                corners=[dict(raw) for raw in payload.get("corners", [])],
                bounds={name: dict(raw)
                        for name, raw in payload.get("bounds", {}).items()},
                sensitivities={
                    name: [dict(entry) for entry in entries]
                    for name, entries
                    in payload.get("sensitivities", {}).items()},
                failures=[dict(raw) for raw in payload.get("failures", [])],
                resilience=dict(payload.get(
                    "resilience", dict.fromkeys(RESILIENCE_COUNTERS, 0))))
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed robust document: {error}") from error

    def summary(self) -> str:
        """A terminal-friendly digest of the study."""
        lines = [f"{self.kind} study of {self.design_name!r} "
                 f"({self.accounting.get('total', 0)} evaluations, "
                 f"{self.accounting.get('failed', 0)} failed)"]
        for metric in self.metrics:
            parts = [f"nominal={self.nominal.get(metric):.6g}"
                     if metric in self.nominal else "nominal=n/a"]
            dist = self.distributions.get(metric)
            if dist is not None:
                parts.append(f"mean={dist.mean:.6g} std={dist.std:.6g} "
                             f"p95={dist.quantiles.get('p95'):.6g}")
            bound = self.bounds.get(metric)
            if bound is not None and bound.get("worst") is not None:
                worst = bound["worst"]
                parts.append(f"worst={worst.get('value'):.6g} "
                             f"@ {worst.get('corner')}")
            ranked = self.sensitivities.get(metric)
            if ranked:
                parts.append(f"top-sensitivity={ranked[0]['param']}")
            lines.append(f"  {metric}: " + "  ".join(parts))
        return "\n".join(lines)


# --- shared evaluation machinery -------------------------------------------

@dataclass
class _Evaluation:
    """One ensemble member's outcome."""

    label: str
    metrics: Dict[str, float] = field(default_factory=dict)
    failure_type: Optional[str] = None
    failure: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.failure is None


ProgressHook = Callable[[int, int, int], None]


def _evaluate_ensemble(simulator: Simulator,
                       entries: Sequence[Tuple[str, Design]],
                       options: SimOptions,
                       metrics: Sequence[Metric],
                       chunk_size: Optional[int],
                       on_progress: Optional[ProgressHook],
                       should_stop: Optional[Callable[[], bool]],
                       resilience: Dict[str, int],
                       progress_offset: int = 0,
                       progress_total: Optional[int] = None
                       ) -> List[_Evaluation]:
    """Run labelled designs through ``run_many`` in cancelable chunks."""
    total = progress_total if progress_total is not None else len(entries)
    step = chunk_size if chunk_size is not None else max(len(entries), 1)
    if step < 1:
        raise ConfigurationError(
            f"chunk_size must be >= 1 or None, got {step}")
    evaluations: List[_Evaluation] = []
    completed = progress_offset
    for start in range(0, len(entries), step):
        if should_stop is not None and should_stop():
            raise ExplorationInterrupted(
                f"robust ensemble stopped after {completed} of "
                f"{total} evaluations")
        chunk = entries[start:start + step]
        results = simulator.run_many([design for _, design in chunk],
                                     options)
        stats = simulator.last_batch_stats
        hits = stats.cache_hits if stats is not None else 0
        if stats is not None:
            for counter in RESILIENCE_COUNTERS:
                resilience[counter] += getattr(stats, counter, 0)
        for (label, design), result in zip(chunk, results):
            evaluations.append(
                _evaluate_one(label, design, result, metrics))
        completed += len(chunk)
        if on_progress is not None:
            on_progress(completed, total, hits)
    return evaluations


def _evaluate_one(label: str, design: Design, result,
                  metrics: Sequence[Metric]) -> _Evaluation:
    if not result.ok:
        return _Evaluation(label=label, failure_type=result.error_type,
                           failure=result.failure)
    values: Dict[str, float] = {}
    for metric in metrics:
        try:
            values[metric.name] = metric.value(design, result.report)
        except CamJError as error:
            return _Evaluation(label=label,
                               failure_type=type(error).__name__,
                               failure=f"metric {metric.name!r}: {error}")
    return _Evaluation(label=label, metrics=values)


def _require_nominal(evaluation: _Evaluation, design: Design) -> None:
    if not evaluation.feasible:
        raise SimulationError(
            f"nominal design {design.name!r} is infeasible "
            f"({evaluation.failure_type}): {evaluation.failure}")


def _failure_entries(evaluations: Sequence[_Evaluation]
                     ) -> List[Dict[str, Any]]:
    entries = [{"label": evaluation.label,
                "type": evaluation.failure_type,
                "message": evaluation.failure}
               for evaluation in evaluations if not evaluation.feasible]
    return entries[:MAX_FAILURES_KEPT]


def _accounting(evaluations: Sequence[_Evaluation]) -> Dict[str, int]:
    ok = sum(1 for evaluation in evaluations if evaluation.feasible)
    return {"total": len(evaluations), "ok": ok,
            "failed": len(evaluations) - ok}


def _session(simulator: Optional[Simulator],
             options: Optional[SimOptions]
             ) -> Tuple[Simulator, SimOptions, bool]:
    owns = simulator is None
    session = simulator if simulator is not None else Simulator(options)
    resolved = options if options is not None else session.options
    return session, resolved, owns


# --- runners ---------------------------------------------------------------

def monte_carlo(design: Design,
                variation: VariationModel,
                *,
                samples: int = 64,
                seed: int = 0,
                metrics: Sequence[Union[str, Metric]] = DEFAULT_METRICS,
                options: Optional[SimOptions] = None,
                simulator: Optional[Simulator] = None,
                name: Optional[str] = None,
                chunk_size: Optional[int] = None,
                on_progress: Optional[ProgressHook] = None,
                should_stop: Optional[Callable[[], bool]] = None
                ) -> RobustResult:
    """Sample ``variation`` ``samples`` times and reduce to distributions.

    Sample ``i`` (1-based) perturbs the design by
    ``variation.factors(seed, i)`` — each factor a pure function of
    ``(seed, i, parameter name)`` — so the ensemble is bit-identical
    across executors and restarts.  Distributions summarize the feasible
    perturbed samples; the nominal design is evaluated alongside and
    reported separately.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    resolved_metrics = resolve_metrics(metrics)
    session, resolved_options, owns = _session(simulator, options)
    resilience = dict.fromkeys(RESILIENCE_COUNTERS, 0)
    try:
        entries = [(NOMINAL_LABEL, design)]
        entries += [(f"sample-{index}",
                     perturb_design(design, variation.factors(seed, index)))
                    for index in range(1, samples + 1)]
        evaluations = _evaluate_ensemble(
            session, entries, resolved_options, resolved_metrics,
            chunk_size, on_progress, should_stop, resilience)
    finally:
        if owns:
            session.close()
    nominal, sampled = evaluations[0], evaluations[1:]
    _require_nominal(nominal, design)
    distributions = {}
    for metric in resolved_metrics:
        values = [evaluation.metrics[metric.name]
                  for evaluation in sampled if evaluation.feasible]
        if values:
            distributions[metric.name] = Distribution.from_values(values)
    return RobustResult(
        kind="monte_carlo",
        name=name if name is not None else design.name,
        design_name=design.name,
        design_hash=design.content_hash,
        options=resolved_options,
        metrics=[metric.name for metric in resolved_metrics],
        nominal=dict(nominal.metrics),
        accounting=_accounting(sampled),
        seed=seed,
        samples=samples,
        variation=variation,
        distributions=distributions,
        failures=_failure_entries(sampled),
        resilience=resilience)


def _resolve_corners(corners_in: Union[str, Sequence[Corner], None]
                     ) -> List[Corner]:
    if corners_in is None:
        corners_in = "pvt"
    if isinstance(corners_in, str):
        return corner_set(corners_in)
    resolved = list(corners_in)
    if not resolved or not all(isinstance(corner, Corner)
                               for corner in resolved):
        raise ConfigurationError(
            "corners must be a named set or a non-empty list of Corner")
    names = [corner.name for corner in resolved]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"corner names must be unique, got {names}")
    return resolved


def _goal_bounds(metric: Metric,
                 outcomes: Sequence[Tuple[str, Dict[str, float]]]
                 ) -> Optional[Dict[str, Any]]:
    """Goal-aware worst/best over feasible ``(corner, metrics)`` pairs."""
    values = [(metrics[metric.name], corner)
              for corner, metrics in outcomes if metric.name in metrics]
    if not values:
        return None
    high = max(values, key=lambda pair: pair[0])
    low = min(values, key=lambda pair: pair[0])
    worst, best = (high, low) if metric.goal == "min" else (low, high)
    return {"worst": {"value": worst[0], "corner": worst[1]},
            "best": {"value": best[0], "corner": best[1]}}


def corners(design: Design,
            corner_list: Union[str, Sequence[Corner], None] = "pvt",
            *,
            metrics: Sequence[Union[str, Metric]] = DEFAULT_METRICS,
            options: Optional[SimOptions] = None,
            simulator: Optional[Simulator] = None,
            name: Optional[str] = None,
            chunk_size: Optional[int] = None,
            on_progress: Optional[ProgressHook] = None,
            should_stop: Optional[Callable[[], bool]] = None
            ) -> RobustResult:
    """Evaluate named corners and report goal-aware worst/best bounds.

    ``corner_list`` is a registered set name (``"pvt"``) or an explicit
    list of :class:`~repro.robust.variation.Corner` values.  Bounds span
    the feasible corners plus the nominal point, each annotated with the
    responsible corner's name.
    """
    resolved_metrics = resolve_metrics(metrics)
    resolved_corners = _resolve_corners(corner_list)
    session, resolved_options, owns = _session(simulator, options)
    resilience = dict.fromkeys(RESILIENCE_COUNTERS, 0)
    try:
        entries = [(NOMINAL_LABEL, design)]
        entries += [(corner.name, perturb_design(design, corner.factors))
                    for corner in resolved_corners]
        evaluations = _evaluate_ensemble(
            session, entries, resolved_options, resolved_metrics,
            chunk_size, on_progress, should_stop, resilience)
    finally:
        if owns:
            session.close()
    nominal, at_corners = evaluations[0], evaluations[1:]
    _require_nominal(nominal, design)
    outcome_docs = []
    for corner, evaluation in zip(resolved_corners, at_corners):
        outcome_docs.append({
            "corner": corner.name,
            "factors": dict(corner.factors),
            "feasible": evaluation.feasible,
            "metrics": dict(evaluation.metrics),
            "failure": (None if evaluation.feasible else
                        {"type": evaluation.failure_type,
                         "message": evaluation.failure}),
        })
    feasible_outcomes = [(NOMINAL_LABEL, nominal.metrics)]
    feasible_outcomes += [(corner.name, evaluation.metrics)
                          for corner, evaluation
                          in zip(resolved_corners, at_corners)
                          if evaluation.feasible]
    bounds = {}
    for metric in resolved_metrics:
        bound = _goal_bounds(metric, feasible_outcomes)
        if bound is not None:
            bounds[metric.name] = bound
    return RobustResult(
        kind="corners",
        name=name if name is not None else design.name,
        design_name=design.name,
        design_hash=design.content_hash,
        options=resolved_options,
        metrics=[metric.name for metric in resolved_metrics],
        nominal=dict(nominal.metrics),
        accounting=_accounting(at_corners),
        corners=outcome_docs,
        bounds=bounds,
        failures=_failure_entries(at_corners),
        resilience=resilience)


def sensitivity(design: Design,
                variation: VariationModel,
                *,
                delta: float = 1.0,
                metrics: Sequence[Union[str, Metric]] = DEFAULT_METRICS,
                options: Optional[SimOptions] = None,
                simulator: Optional[Simulator] = None,
                name: Optional[str] = None,
                chunk_size: Optional[int] = None,
                on_progress: Optional[ProgressHook] = None,
                should_stop: Optional[Callable[[], bool]] = None
                ) -> RobustResult:
    """One-at-a-time ``+/- delta*sigma`` excursions, ranked by elasticity.

    Elasticity is the relative metric change per relative parameter
    change — ``((m+ - m-) / m_nominal) / (2 * delta * sigma)`` — so
    rankings are comparable across parameters with different spreads
    and, being seed-free central differences, stable under re-seeding
    by construction.  Parameters with zero sigma are skipped.
    """
    if not delta > 0:
        raise ConfigurationError(f"delta must be > 0, got {delta}")
    resolved_metrics = resolve_metrics(metrics)
    active = [param for param in variation.params
              if variation.sigma[param] > 0.0]
    session, resolved_options, owns = _session(simulator, options)
    resilience = dict.fromkeys(RESILIENCE_COUNTERS, 0)
    try:
        entries: List[Tuple[str, Design]] = [(NOMINAL_LABEL, design)]
        for param in active:
            shift = delta * variation.sigma[param]
            if shift >= 1.0:
                raise ConfigurationError(
                    f"delta={delta} drives {param!r} to factor <= 0; "
                    f"shrink delta or sigma")
            entries.append((f"{param}-",
                            perturb_design(design, {param: 1.0 - shift})))
            entries.append((f"{param}+",
                            perturb_design(design, {param: 1.0 + shift})))
        evaluations = _evaluate_ensemble(
            session, entries, resolved_options, resolved_metrics,
            chunk_size, on_progress, should_stop, resilience)
    finally:
        if owns:
            session.close()
    nominal, shifted = evaluations[0], evaluations[1:]
    _require_nominal(nominal, design)
    by_label = {evaluation.label: evaluation for evaluation in shifted}
    sensitivities: Dict[str, List[Dict[str, Any]]] = {}
    for metric in resolved_metrics:
        base = nominal.metrics[metric.name]
        rows = []
        for param in active:
            low = by_label[f"{param}-"]
            high = by_label[f"{param}+"]
            if not (low.feasible and high.feasible):
                rows.append({"param": param, "elasticity": None,
                             "delta": None})
                continue
            spread = high.metrics[metric.name] - low.metrics[metric.name]
            relative = 2.0 * delta * variation.sigma[param]
            elasticity = (None if base == 0.0
                          else (spread / base) / relative)
            rows.append({"param": param, "elasticity": elasticity,
                         "delta": spread})
        rows.sort(key=lambda row: (-(abs(row["elasticity"])
                                     if row["elasticity"] is not None
                                     else -1.0), row["param"]))
        for rank, row in enumerate(rows, start=1):
            row["rank"] = rank
        sensitivities[metric.name] = rows
    return RobustResult(
        kind="sensitivity",
        name=name if name is not None else design.name,
        design_name=design.name,
        design_hash=design.content_hash,
        options=resolved_options,
        metrics=[metric.name for metric in resolved_metrics],
        nominal=dict(nominal.metrics),
        accounting=_accounting(shifted),
        variation=variation,
        sensitivities=sensitivities,
        failures=_failure_entries(shifted),
        resilience=resilience)


def worst_case(design: Design,
               variation: VariationModel,
               *,
               metrics: Sequence[Union[str, Metric]] = DEFAULT_METRICS,
               options: Optional[SimOptions] = None,
               simulator: Optional[Simulator] = None,
               name: Optional[str] = None,
               chunk_size: Optional[int] = None,
               on_progress: Optional[ProgressHook] = None,
               should_stop: Optional[Callable[[], bool]] = None
               ) -> RobustResult:
    """Directed worst/best extremes per metric, sensitivity-steered.

    Central differences decide, per metric, which direction of each
    parameter hurts; every parameter is then pushed to that side of its
    truncation extreme (``cutoff*sigma`` for normal models,
    ``sqrt(3)*sigma`` for uniform) and the resulting synthetic corner
    is evaluated.  For metrics monotone in each parameter — the energy
    and latency models are — these bounds envelop any Monte Carlo
    ensemble of the same (truncated) model.
    """
    resolved_metrics = resolve_metrics(metrics)
    active = [param for param in variation.params
              if variation.sigma[param] > 0.0]
    session, resolved_options, owns = _session(simulator, options)
    resilience = dict.fromkeys(RESILIENCE_COUNTERS, 0)
    try:
        probe_total = 1 + 2 * len(active) + 2 * len(resolved_metrics)
        probe = sensitivity(
            design, variation, metrics=resolved_metrics,
            options=resolved_options, simulator=session, name=name,
            chunk_size=chunk_size, should_stop=should_stop,
            on_progress=(None if on_progress is None else
                         lambda done, _total, hits:
                         on_progress(done, probe_total, hits)))
        corner_entries: List[Tuple[str, Design]] = []
        corner_docs: List[Dict[str, Any]] = []
        for metric in resolved_metrics:
            rows = {row["param"]: row
                    for row in probe.sensitivities[metric.name]}
            for side in ("worst", "best"):
                factors = {}
                for param in active:
                    slope = rows[param]["delta"]
                    if slope is None or slope == 0.0:
                        continue
                    hurts_high = (slope > 0) == (metric.goal == "min")
                    extent = variation.extent(param)
                    up = hurts_high if side == "worst" else not hurts_high
                    factors[param] = 1.0 + extent if up else 1.0 - extent
                corner_name = f"{side}:{metric.name}"
                corner_entries.append(
                    (corner_name, perturb_design(design, factors)))
                corner_docs.append({"corner": corner_name,
                                    "factors": factors})
        evaluations = _evaluate_ensemble(
            session, corner_entries, resolved_options, resolved_metrics,
            chunk_size, on_progress, should_stop, resilience,
            progress_offset=1 + 2 * len(active),
            progress_total=probe_total)
    finally:
        if owns:
            session.close()
    for counter in RESILIENCE_COUNTERS:
        resilience[counter] += probe.resilience.get(counter, 0)
    by_label = {evaluation.label: evaluation for evaluation in evaluations}
    bounds: Dict[str, Dict[str, Any]] = {}
    for metric in resolved_metrics:
        bound: Dict[str, Any] = {}
        for side in ("worst", "best"):
            corner_name = f"{side}:{metric.name}"
            evaluation = by_label[corner_name]
            if evaluation.feasible:
                bound[side] = {"value": evaluation.metrics[metric.name],
                               "corner": corner_name}
            else:
                bound[side] = {"value": None, "corner": corner_name,
                               "failure": {"type": evaluation.failure_type,
                                           "message": evaluation.failure}}
        bounds[metric.name] = bound
    for doc in corner_docs:
        evaluation = by_label[doc["corner"]]
        doc["feasible"] = evaluation.feasible
        doc["metrics"] = dict(evaluation.metrics)
        doc["failure"] = (None if evaluation.feasible else
                          {"type": evaluation.failure_type,
                           "message": evaluation.failure})
    return RobustResult(
        kind="worst_case",
        name=name if name is not None else design.name,
        design_name=design.name,
        design_hash=design.content_hash,
        options=resolved_options,
        metrics=[metric.name for metric in resolved_metrics],
        nominal=dict(probe.nominal),
        accounting=_accounting(evaluations),
        variation=variation,
        corners=corner_docs,
        bounds=bounds,
        sensitivities=probe.sensitivities,
        failures=_failure_entries(evaluations),
        resilience=resilience)
