"""Statistical robustness: variation-aware evaluation of designs.

Nominal simulation answers "what does this design cost at typical
silicon, nominal supply, room temperature?"; this package answers what
happens *around* that point.  A deterministic, seed-addressed
:class:`VariationModel` perturbs technology and analog component
parameters of any :class:`~repro.api.Design`; ensemble runners
(:func:`monte_carlo`, :func:`corners`, :func:`sensitivity`,
:func:`worst_case`) fan the perturbed family through the session's
cached, pooled batch path and reduce to distributions, rankings, and
bounds (``repro.robust/1`` documents); and :func:`explore_robust`
ranks whole design spaces by robust objectives such as p95 energy or
worst-case latency.
"""

from repro.robust.variation import (
    PARAMETER_GROUPS,
    DISTRIBUTIONS,
    NOMINAL_SAMPLE,
    DEFAULT_SIGMA,
    VariationModel,
    Corner,
    CORNER_SETS,
    corner_set,
    corner_from_pvt,
    default_variation,
    perturb_payload,
    perturb_design,
    standard_draw,
)
from repro.robust.ensemble import (
    ROBUST_SCHEMA,
    DEFAULT_METRICS,
    QUANTILE_LEVELS,
    Distribution,
    RobustResult,
    monte_carlo,
    corners,
    sensitivity,
    worst_case,
    quantile,
)
from repro.robust.explore import (
    SAMPLE_AXIS,
    STATISTICS,
    ROBUST_YIELD,
    explore_robust,
    resolve_statistics,
)
from repro.robust.spec import (
    ROBUST_SPEC_SCHEMA,
    ROBUST_KINDS,
    RobustSpec,
    robust_spec_from_dict,
    load_robust_spec,
)

__all__ = [
    "PARAMETER_GROUPS",
    "DISTRIBUTIONS",
    "NOMINAL_SAMPLE",
    "DEFAULT_SIGMA",
    "VariationModel",
    "Corner",
    "CORNER_SETS",
    "corner_set",
    "corner_from_pvt",
    "default_variation",
    "perturb_payload",
    "perturb_design",
    "standard_draw",
    "ROBUST_SCHEMA",
    "DEFAULT_METRICS",
    "QUANTILE_LEVELS",
    "Distribution",
    "RobustResult",
    "monte_carlo",
    "corners",
    "sensitivity",
    "worst_case",
    "quantile",
    "SAMPLE_AXIS",
    "STATISTICS",
    "ROBUST_YIELD",
    "explore_robust",
    "resolve_statistics",
    "ROBUST_SPEC_SCHEMA",
    "ROBUST_KINDS",
    "RobustSpec",
    "robust_spec_from_dict",
    "load_robust_spec",
]
