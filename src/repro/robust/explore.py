"""Variation-aware exploration: rank frontier points by robust objectives.

:func:`explore_robust` evaluates every point of a parameter space not
once but as a seed-addressed ensemble — the space is augmented with a
hidden sample axis (:data:`SAMPLE_AXIS`, the fastest-varying axis) and
pushed through the ordinary exploration engine, so chunking, streaming,
cancellation, the session cache, and the vector fast path all apply
unchanged; perturbed variants of one built design share a design object
per sample only when unperturbed, but perturbed ensembles of one point
still batch through ``run_many`` together.  Afterwards each point's
ensemble collapses to a single value per objective through a
*statistic* — ``"p95"``, ``"worst"``, ``"mean"``, ... — yielding a
plain :class:`~repro.explore.engine.ExplorationResult` whose Pareto
analysis now ranks designs by their behavior under variation.

With a zero-variation model every sample short-circuits to the nominal
design object and every statistic's degenerate-sample reduction returns
the nominal value exactly, so the reduced result is bit-identical to
the nominal :func:`~repro.explore.engine.explore` document.

The registered ``robust_yield`` metric (goal ``max``) reduces to the
feasible fraction of each point's ensemble, letting yield itself be an
exploration objective.
"""

from __future__ import annotations

import re
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.api.design import Design
from repro.api.registry import build_usecase
from repro.api.result import SimOptions
from repro.api.simulator import Simulator
from repro.exceptions import ConfigurationError
from repro.explore.engine import (DEFAULT_OBJECTIVES, ExplorationPoint,
                                  ExplorationResult, explore_stream)
from repro.explore.metrics import Metric, register_metric, resolve_metrics
from repro.explore.space import ParameterSpace, choice, product
from repro.robust.variation import NOMINAL_SAMPLE, VariationModel, \
    perturb_design

#: The hidden, fastest-varying axis indexing ensemble members; value 0
#: is the nominal sample.
SAMPLE_AXIS = "robust.sample"

#: Named reduction statistics (percentiles ``pNN`` are also accepted).
STATISTICS = ("mean", "std", "min", "max", "worst", "best", "nominal")

_PERCENTILE_RE = re.compile(r"^p(\d{1,2})$")

#: Ensemble feasibility as an objective: constant 1.0 on any single
#: nominal evaluation, reduced to the feasible sample fraction by
#: :func:`explore_robust`.
ROBUST_YIELD = register_metric(Metric(
    name="robust_yield", unit="fraction", goal="max",
    extract=lambda design, report: 1.0,
    vector=lambda design, batch: 1.0,
    description="Feasible fraction of a point's variation ensemble "
                "(1.0 for any feasible nominal evaluation)."))


def _parse_statistic(statistic: str) -> Union[str, float]:
    """Validate one statistic name; percentiles return their level."""
    match = _PERCENTILE_RE.match(statistic)
    if match:
        return int(match.group(1)) / 100.0
    if statistic not in STATISTICS:
        raise ConfigurationError(
            f"unknown robust statistic {statistic!r}; use one of "
            f"{STATISTICS} or a percentile like 'p95'")
    return statistic


def resolve_statistics(statistic: Union[str, Mapping[str, str]],
                       objectives: Sequence[Metric]
                       ) -> Dict[str, Union[str, float]]:
    """Per-objective reduction plan from a name or per-metric mapping."""
    if isinstance(statistic, str):
        parsed = _parse_statistic(statistic)
        return {objective.name: parsed for objective in objectives}
    if not isinstance(statistic, Mapping):
        raise ConfigurationError(
            f"statistic must be a name or a metric->name mapping, "
            f"got {type(statistic).__name__}")
    names = {objective.name for objective in objectives}
    unknown = set(statistic) - names
    if unknown:
        raise ConfigurationError(
            f"statistic mapping names non-objective metrics "
            f"{sorted(unknown)}; objectives: {sorted(names)}")
    plan = {objective.name: _parse_statistic("p95")
            for objective in objectives}
    for metric_name, stat_name in statistic.items():
        plan[metric_name] = _parse_statistic(stat_name)
    return plan


def _reduce(values: Sequence[float], statistic: Union[str, float],
            goal: str) -> float:
    """Collapse one ensemble's values; exact on degenerate samples."""
    from repro.robust.ensemble import quantile

    if statistic == "std":
        if min(values) == max(values):
            return 0.0
        mean = sum(values) / len(values)
        return (sum((value - mean) ** 2
                    for value in values) / len(values)) ** 0.5
    if min(values) == max(values):
        return values[0]
    if statistic == "mean":
        return sum(values) / len(values)
    if statistic == "min":
        return min(values)
    if statistic == "max":
        return max(values)
    if statistic == "worst":
        return max(values) if goal == "min" else min(values)
    if statistic == "best":
        return min(values) if goal == "min" else max(values)
    return quantile(values, float(statistic))


def explore_robust(space: ParameterSpace,
                   builder: Union[str, Callable[..., Any]],
                   objectives: Sequence[Union[str, Metric]]
                   = DEFAULT_OBJECTIVES,
                   *,
                   variation: VariationModel,
                   samples: int = 16,
                   seed: int = 0,
                   statistic: Union[str, Mapping[str, str]] = "p95",
                   options: Optional[SimOptions] = None,
                   simulator: Optional[Simulator] = None,
                   name: Optional[str] = None,
                   annotate: bool = True,
                   engine: str = "auto",
                   chunk_size: Optional[int] = None,
                   on_progress: Optional[Callable[
                       [List[ExplorationPoint], int, int, int], None]] = None,
                   should_stop: Optional[Callable[[], bool]] = None
                   ) -> ExplorationResult:
    """Explore a space under variation and rank by robust objectives.

    Every space point is evaluated ``samples + 1`` times — the nominal
    design plus ``samples`` seed-addressed perturbations — and each
    objective collapses to its ``statistic`` over the perturbed
    ensemble (``samples=0`` degenerates to the nominal exploration).
    ``statistic`` is one name for all objectives or a per-objective
    mapping, e.g. ``{"energy_per_frame": "p95", "latency": "worst"}``;
    unlisted objectives default to ``p95``.

    A point whose *nominal* evaluation fails is infeasible with that
    failure.  Under ``"worst"``/``"best"`` any failed sample makes the
    point infeasible (a worst case that crashes has no bound); other
    statistics reduce over the feasible samples and only fail when none
    remain.  ``robust_yield`` always reduces to the feasible fraction.

    ``on_progress``/``should_stop``/``chunk_size`` follow
    :func:`~repro.explore.engine.explore_stream`, with totals counted
    in augmented (per-sample) evaluations.
    """
    if samples < 0:
        raise ConfigurationError(f"samples must be >= 0, got {samples}")
    if SAMPLE_AXIS in space.names:
        raise ConfigurationError(
            f"space already has an axis named {SAMPLE_AXIS!r}")
    resolved = resolve_metrics(objectives)
    plan = resolve_statistics(statistic, resolved)

    if isinstance(builder, str):
        usecase = builder
        build = lambda **params: build_usecase(usecase, **params)  # noqa: E731
        default_name = usecase
    else:
        build = builder
        default_name = getattr(builder, "__name__", "exploration")
        if default_name == "<lambda>":
            default_name = "exploration"
    result_name = name if name is not None else default_name

    nominal_cache: Dict[Any, Design] = {}

    def robust_build(**params: Any) -> Design:
        sample = params.pop(SAMPLE_AXIS)
        try:
            key = tuple(sorted(params.items()))
            nominal = nominal_cache.get(key)
            if nominal is None:
                nominal = _as_built_design(build(**params))
                nominal_cache[key] = nominal
        except TypeError:  # unhashable parameter values: rebuild
            nominal = _as_built_design(build(**params))
        return perturb_design(nominal, variation.factors(seed, sample))

    sample_axis = choice(SAMPLE_AXIS,
                         list(range(NOMINAL_SAMPLE, samples + 1)))
    augmented = explore_stream(
        product(space, sample_axis), robust_build,
        objectives=resolved, options=options, simulator=simulator,
        name=result_name, annotate=annotate, chunk_size=chunk_size,
        on_progress=on_progress, should_stop=should_stop, engine=engine)

    width = samples + 1
    reduced_points = []
    for start in range(0, len(augmented.points), width):
        block = augmented.points[start:start + width]
        reduced_points.append(
            _reduce_point(block, resolved, plan, samples))
    return ExplorationResult(
        name=augmented.name, objectives=list(resolved),
        options=augmented.options, points=reduced_points,
        resilience=dict(augmented.resilience),
        engines=dict(augmented.engines))


def _as_built_design(built: Any) -> Design:
    if isinstance(built, Design):
        return built
    raise ConfigurationError(
        f"robust exploration builders must return a Design, "
        f"got {type(built).__name__}")


def _reduce_point(block: Sequence[ExplorationPoint],
                  objectives: Sequence[Metric],
                  plan: Mapping[str, Union[str, float]],
                  samples: int) -> ExplorationPoint:
    """Collapse one point's ensemble block into a single point."""
    nominal = block[0]
    ensemble = list(block[1:]) if samples > 0 else [block[0]]
    params = {key: value for key, value in nominal.params.items()
              if key != SAMPLE_AXIS}
    if not nominal.feasible:
        return ExplorationPoint(
            params=params, design_name=nominal.design_name,
            design_hash=nominal.design_hash,
            failure_type=nominal.failure_type, failure=nominal.failure)
    feasible = [point for point in ensemble if point.feasible]
    values: Dict[str, float] = {}
    for objective in objectives:
        statistic = plan[objective.name]
        if objective.name == "robust_yield":
            values[objective.name] = (1.0 if len(feasible) == len(ensemble)
                                      else len(feasible) / len(ensemble))
            continue
        if statistic == "nominal":
            values[objective.name] = nominal.metrics[objective.name]
            continue
        if statistic in ("worst", "best") and len(feasible) != len(ensemble):
            first = next(point for point in ensemble if not point.feasible)
            return ExplorationPoint(
                params=params, design_name=nominal.design_name,
                design_hash=nominal.design_hash,
                failure_type="RobustEnsembleError",
                failure=f"statistic {statistic!r} for "
                        f"{objective.name!r} undefined: sample "
                        f"{first.params.get(SAMPLE_AXIS)} failed "
                        f"({first.failure_type}): {first.failure}")
        if not feasible:
            first = next(point for point in ensemble if not point.feasible)
            return ExplorationPoint(
                params=params, design_name=nominal.design_name,
                design_hash=nominal.design_hash,
                failure_type="RobustEnsembleError",
                failure=f"every sample failed; first "
                        f"({first.failure_type}): {first.failure}")
        values[objective.name] = _reduce(
            [point.metrics[objective.name] for point in feasible],
            statistic, objective.goal)
    return ExplorationPoint(
        params=params, metrics=values,
        design_name=nominal.design_name,
        design_hash=nominal.design_hash,
        bottleneck=nominal.bottleneck, report=nominal.report)
