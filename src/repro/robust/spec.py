"""Robustness spec files: one JSON object describing a whole study.

``python -m repro robust <spec.json>`` executes these, and the serve
daemon accepts them as journaled ``robust`` jobs.  A spec picks the
study ``kind``, the design under test (a registered use case with
params, or an inline ``repro.design/1`` payload), and the variation
model or corner set::

    {
      "schema": "repro.robust-spec/1",
      "kind": "monte_carlo",
      "usecase": "edgaze",
      "params": {"placement": "2D-In", "cis_node": 65},
      "variation": {"sigma": {"memory.leakage_power": 0.1}},
      "samples": 256,
      "seed": 1,
      "metrics": ["energy_per_frame", "latency"]
    }

``kind: "explore"`` additionally takes a ``space`` (and optional
``objectives``/``statistic``/``engine``) and runs
:func:`~repro.robust.explore.explore_robust` over it.  Ensemble kinds
serialize their result as a ``repro.robust/1`` document directly;
explore wraps the ``repro.explore/1`` document in a thin robust
envelope recording the variation, seed, and statistic used.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.api.design import Design
from repro.api.registry import build_usecase
from repro.api.result import SimOptions
from repro.api.simulator import Simulator
from repro.exceptions import SerializationError
from repro.explore.engine import DEFAULT_OBJECTIVES, ENGINE_CHOICES
from repro.explore.space import ParameterSpace, space_from_dict
from repro.robust.ensemble import (DEFAULT_METRICS, ROBUST_SCHEMA,
                                   RobustResult, corners, monte_carlo,
                                   sensitivity, worst_case)
from repro.robust.explore import explore_robust, resolve_statistics
from repro.robust.variation import Corner, VariationModel, corner_set
from repro.explore.metrics import resolve_metrics

#: Schema tag of a robustness spec file.
ROBUST_SPEC_SCHEMA = "repro.robust-spec/1"

#: Study kinds a spec may request.
ROBUST_KINDS = ("monte_carlo", "corners", "sensitivity", "worst_case",
                "explore")

#: Kinds that require a variation model.
_VARIATION_KINDS = ("monte_carlo", "sensitivity", "worst_case", "explore")

_SPEC_KEYS = {"schema", "kind", "usecase", "params", "design", "variation",
              "corners", "samples", "seed", "delta", "metrics", "options",
              "name", "space", "objectives", "statistic", "engine"}

ProgressHook = Callable[[int, int, int], None]


@dataclass(frozen=True)
class RobustSpec:
    """A parsed robustness spec, ready to run."""

    kind: str
    usecase: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    design: Optional[Dict[str, Any]] = None
    variation: Optional[VariationModel] = None
    corners: Union[str, List[Corner], None] = None
    samples: int = 64
    seed: int = 0
    delta: float = 1.0
    metrics: List[str] = field(
        default_factory=lambda: list(DEFAULT_METRICS))
    options: SimOptions = field(default_factory=SimOptions)
    name: Optional[str] = None
    space: Optional[ParameterSpace] = None
    objectives: List[str] = field(
        default_factory=lambda: list(DEFAULT_OBJECTIVES))
    statistic: Union[str, Dict[str, str]] = "p95"
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.kind not in ROBUST_KINDS:
            raise SerializationError(
                f"robust spec kind must be one of {ROBUST_KINDS}, "
                f"got {self.kind!r}")
        if (self.usecase is None) == (self.design is None):
            raise SerializationError(
                "robust spec needs exactly one of 'usecase' or 'design'")
        if self.kind in _VARIATION_KINDS and self.variation is None:
            raise SerializationError(
                f"robust spec kind {self.kind!r} needs a 'variation'")
        if self.kind == "corners" and isinstance(self.corners, str):
            corner_set(self.corners)  # fail fast on unknown names
        if self.kind == "explore":
            if self.usecase is None:
                raise SerializationError(
                    "robust explore specs need a 'usecase'")
            if self.space is None:
                raise SerializationError(
                    "robust explore specs need a 'space'")
            if self.engine not in ENGINE_CHOICES:
                raise SerializationError(
                    f"spec engine must be one of {ENGINE_CHOICES}, "
                    f"got {self.engine!r}")
            resolve_statistics(self.statistic,
                               resolve_metrics(self.objectives))
        if self.samples < 0 or (self.kind == "monte_carlo"
                                and self.samples < 1):
            raise SerializationError(
                f"robust spec samples must be >= 1, got {self.samples}")

    # --- execution --------------------------------------------------------

    @property
    def display_name(self) -> str:
        if self.name is not None:
            return self.name
        if self.usecase is not None:
            return self.usecase
        return (self.design or {}).get("name", "design")

    def build_design(self) -> Design:
        """The design under test (built or decoded)."""
        if self.usecase is not None:
            return build_usecase(self.usecase, **self.params)
        return Design.from_dict(self.design)

    def run(self,
            simulator: Optional[Simulator] = None,
            chunk_size: Optional[int] = None,
            on_progress: Optional[ProgressHook] = None,
            should_stop: Optional[Callable[[], bool]] = None
            ) -> Union[RobustResult, "ExplorationResult"]:  # noqa: F821
        """Execute the study; ``on_progress(completed, total, hits)``."""
        if self.kind == "explore":
            hook = None
            if on_progress is not None:
                hook = (lambda points, completed, total, hits:
                        on_progress(completed, total, hits))
            return explore_robust(
                self.space, self.usecase, objectives=self.objectives,
                variation=self.variation, samples=self.samples,
                seed=self.seed, statistic=self.statistic,
                options=self.options, simulator=simulator,
                name=self.name, engine=self.engine,
                chunk_size=chunk_size, on_progress=hook,
                should_stop=should_stop)
        design = self.build_design()
        shared = dict(metrics=self.metrics, options=self.options,
                      simulator=simulator, name=self.name,
                      chunk_size=chunk_size, on_progress=on_progress,
                      should_stop=should_stop)
        if self.kind == "monte_carlo":
            return monte_carlo(design, self.variation,
                               samples=self.samples, seed=self.seed,
                               **shared)
        if self.kind == "corners":
            return corners(design, self.corners, **shared)
        if self.kind == "sensitivity":
            return sensitivity(design, self.variation, delta=self.delta,
                               **shared)
        return worst_case(design, self.variation, **shared)

    def run_document(self,
                     simulator: Optional[Simulator] = None,
                     chunk_size: Optional[int] = None,
                     on_progress: Optional[ProgressHook] = None,
                     should_stop: Optional[Callable[[], bool]] = None
                     ) -> Dict[str, Any]:
        """Execute and serialize as one ``repro.robust/1`` document."""
        result = self.run(simulator=simulator, chunk_size=chunk_size,
                          on_progress=on_progress, should_stop=should_stop)
        if isinstance(result, RobustResult):
            return result.to_dict()
        return {
            "schema": ROBUST_SCHEMA,
            "kind": "explore",
            "name": result.name,
            "variation": self.variation.to_dict(),
            "samples": self.samples,
            "seed": self.seed,
            "statistic": (dict(self.statistic)
                          if isinstance(self.statistic, dict)
                          else self.statistic),
            "result": result.to_dict(),
        }

    # --- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": ROBUST_SPEC_SCHEMA,
            "kind": self.kind,
            "options": self.options.to_dict(),
        }
        if self.usecase is not None:
            payload["usecase"] = self.usecase
            if self.params:
                payload["params"] = dict(self.params)
        if self.design is not None:
            payload["design"] = self.design
        if self.variation is not None:
            payload["variation"] = self.variation.to_dict()
        if self.corners is not None:
            payload["corners"] = (
                self.corners if isinstance(self.corners, str)
                else [corner.to_dict() for corner in self.corners])
        if self.kind in ("monte_carlo", "explore"):
            payload["samples"] = self.samples
            payload["seed"] = self.seed
        if self.kind == "sensitivity":
            payload["delta"] = self.delta
        if self.kind == "explore":
            payload["space"] = self.space.to_dict()
            payload["objectives"] = list(self.objectives)
            payload["statistic"] = (dict(self.statistic)
                                    if isinstance(self.statistic, dict)
                                    else self.statistic)
            if self.engine != "auto":
                payload["engine"] = self.engine
        else:
            payload["metrics"] = list(self.metrics)
        if self.name is not None:
            payload["name"] = self.name
        return payload


def robust_spec_from_dict(payload: Mapping[str, Any]) -> RobustSpec:
    """Parse a spec payload (inverse of :meth:`RobustSpec.to_dict`)."""
    if not isinstance(payload, Mapping):
        raise SerializationError(
            f"robust spec must be an object, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema is not None and schema != ROBUST_SPEC_SCHEMA:
        raise SerializationError(
            f"expected schema {ROBUST_SPEC_SCHEMA!r}, got {schema!r}")
    unknown = set(payload) - _SPEC_KEYS
    if unknown:
        raise SerializationError(
            f"unknown robust spec keys: {sorted(unknown)}")
    if "kind" not in payload:
        raise SerializationError("robust spec needs a 'kind'")
    variation = payload.get("variation")
    corners_in = payload.get("corners")
    if corners_in is not None and not isinstance(corners_in, str):
        if not isinstance(corners_in, list):
            raise SerializationError(
                "'corners' must be a set name or a list of corners")
        corners_in = [Corner.from_dict(raw) for raw in corners_in]
    metrics = payload.get("metrics", list(DEFAULT_METRICS))
    if not isinstance(metrics, list) or not metrics \
            or not all(isinstance(item, str) for item in metrics):
        raise SerializationError(
            "'metrics' must be a non-empty list of metric names")
    objectives = payload.get("objectives", list(DEFAULT_OBJECTIVES))
    if not isinstance(objectives, list) or not objectives \
            or not all(isinstance(item, str) for item in objectives):
        raise SerializationError(
            "'objectives' must be a non-empty list of metric names")
    space = payload.get("space")
    return RobustSpec(
        kind=payload["kind"],
        usecase=payload.get("usecase"),
        params=dict(payload.get("params", {})),
        design=payload.get("design"),
        variation=(VariationModel.from_dict(variation)
                   if variation is not None else None),
        corners=corners_in,
        samples=payload.get("samples", 64),
        seed=payload.get("seed", 0),
        delta=payload.get("delta", 1.0),
        metrics=list(metrics),
        options=SimOptions.from_dict(payload.get("options", {})),
        name=payload.get("name"),
        space=(space_from_dict(space) if space is not None else None),
        objectives=list(objectives),
        statistic=payload.get("statistic", "p95"),
        engine=payload.get("engine", "auto"))


def load_robust_spec(path) -> RobustSpec:
    """Read a robustness spec file written as JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"spec file {path} is not valid JSON: {error}") from error
    return robust_spec_from_dict(payload)
