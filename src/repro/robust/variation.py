"""Deterministic, seed-addressed variation over design parameters.

A :class:`VariationModel` names the physical quantities that vary —
*parameter groups* addressing fields of the ``repro.design/1`` payload,
e.g. ``memory.leakage_power`` or ``analog.load_capacitance`` — and a
relative spread for each.  Sampling is a **pure function** of
``(seed, sample index, parameter name)``: every draw hashes that triple
(SHA-256 -> uniforms -> truncated normal), so an ensemble replays
bit-identically across thread and process executors, across restarts,
and regardless of evaluation order.  Sample ``0`` is reserved for the
nominal design and always draws factor ``1.0`` for every parameter.

Perturbation happens on the serialized design payload: deep-copy,
multiply the addressed numeric fields, decode back through
:meth:`~repro.api.design.Design.from_dict`.  The perturbed design gets
its own content hash, so the session cache, batch dedup, and the disk
tier all work untouched.  An all-ones factor set short-circuits to the
original design object — the zero-variation ensemble is the nominal
path, bit for bit.

Named PVT corners (:func:`corner_set`) compile the first-order physics
of :mod:`repro.tech.corners` into the same parameter-group vocabulary,
so ``corners()`` and ``monte_carlo()`` speak one language.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Tuple

from repro.api.design import Design
from repro.exceptions import ConfigurationError, SerializationError
from repro.tech.corners import PvtPoint, standard_pvt_points

#: Supported sampling distributions of relative parameter spread.
DISTRIBUTIONS = ("normal", "uniform")

#: Reserved sample index of the unperturbed design.
NOMINAL_SAMPLE = 0

#: Half-width of a unit-variance uniform distribution.
_UNIFORM_HALF_WIDTH = math.sqrt(3.0)

_TWO_PI = 2.0 * math.pi
_U64 = float(2 ** 64)


# --- parameter groups ------------------------------------------------------

def _scale(container: Dict[str, Any], key: str, factor: float) -> int:
    value = container.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return 0
    container[key] = value * factor
    return 1


def _memories(system: Dict[str, Any], key: str,
              factor: float) -> int:
    return sum(_scale(memory, key, factor)
               for memory in system.get("memories", []))


def _compute_units(system: Dict[str, Any], key: str, factor: float,
                   unit_type: str = "") -> int:
    return sum(_scale(unit, key, factor)
               for unit in system.get("compute_units", [])
               if not unit_type or unit.get("type") == unit_type)


def _interfaces(system: Dict[str, Any], factor: float) -> int:
    return sum(_scale(system[role], "energy_per_byte", factor)
               for role in ("offchip_interface", "interlayer_interface")
               if isinstance(system.get(role), dict))


def _analog_cells(system: Dict[str, Any]) -> Iterable[Dict[str, Any]]:
    for array in system.get("analog_arrays", []):
        for entry in array.get("components", []):
            for usage in entry.get("component", {}).get("cells", []):
                yield usage.get("cell", {})


def _cells(system: Dict[str, Any], key: str, factor: float,
           cell_types: Tuple[str, ...]) -> int:
    return sum(_scale(cell, key, factor)
               for cell in _analog_cells(system)
               if cell.get("type") in cell_types)


def _dynamic_nodes(system: Dict[str, Any], factor: float) -> int:
    touched = 0
    for cell in _analog_cells(system):
        if cell.get("type") != "dynamic":
            continue
        for node in cell.get("nodes", []):
            node[0] = node[0] * factor
            touched += 1
    return touched


#: Parameter group name -> in-place multiplier over one system payload.
#: Each applier returns how many concrete fields it touched; a group a
#: design simply lacks (e.g. analog cells in an all-digital system) is
#: a silent no-op — the draw still happens, keeping streams aligned.
PARAMETER_GROUPS: Dict[str, Callable[[Dict[str, Any], float], int]] = {
    "memory.write_energy_per_word":
        lambda s, f: _memories(s, "write_energy_per_word", f),
    "memory.read_energy_per_word":
        lambda s, f: _memories(s, "read_energy_per_word", f),
    "memory.leakage_power":
        lambda s, f: _memories(s, "leakage_power", f),
    "compute.energy_per_cycle":
        lambda s, f: _compute_units(s, "energy_per_cycle", f, "ComputeUnit"),
    "compute.energy_per_mac":
        lambda s, f: _compute_units(s, "energy_per_mac", f, "SystolicArray"),
    "compute.clock_hz":
        lambda s, f: _compute_units(s, "clock_hz", f),
    "interface.energy_per_byte": _interfaces,
    "analog.load_capacitance":
        lambda s, f: _cells(s, "load_capacitance", f, ("static",)),
    "analog.node_capacitance": _dynamic_nodes,
    "analog.voltage_swing":
        lambda s, f: _cells(s, "voltage_swing", f, ("static",)),
    "analog.vdda":
        lambda s, f: _cells(s, "vdda", f, ("static", "single_slope")),
    "analog.energy_per_conversion":
        lambda s, f: _cells(s, "energy_per_conversion", f, ("nonlinear",)),
    "analog.comparator_bias":
        lambda s, f: _cells(s, "comparator_bias", f, ("single_slope",)),
    "analog.counter_energy_per_step":
        lambda s, f: _cells(s, "counter_energy_per_step", f,
                            ("single_slope",)),
}


def _check_params(params: Iterable[str], where: str) -> None:
    unknown = sorted(set(params) - set(PARAMETER_GROUPS))
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown parameter group(s) {unknown}; "
            f"known: {sorted(PARAMETER_GROUPS)}")


def perturb_payload(payload: Dict[str, Any],
                    factors: Mapping[str, float]) -> Dict[str, Any]:
    """A deep copy of a design payload with ``factors`` multiplied in."""
    _check_params(factors, "perturb_payload")
    try:
        # A ``repro.design/1`` payload is pure JSON, and a serialize/parse
        # round trip copies such trees several times faster than
        # ``copy.deepcopy`` walks them (floats round-trip bit-exactly).
        perturbed = json.loads(json.dumps(payload))
    except (TypeError, ValueError):
        perturbed = copy.deepcopy(payload)
    system = perturbed.get("system", {})
    for param in sorted(factors):
        factor = factors[param]
        if factor != 1.0:
            PARAMETER_GROUPS[param](system, factor)
    return perturbed


#: Recently perturbed designs, keyed by (base content hash, applied
#: factors).  Draws are pure in (seed, sample, param), so replaying a
#: study regenerates the exact same factor sets — memoizing the decoded
#: designs lets warm ensembles skip the payload copy/decode entirely
#: and ride the result cache at full speed.
_PERTURBED_LIMIT = 1024
_perturbed_cache: "OrderedDict[Tuple[str, Tuple[Tuple[str, float], ...]], Design]" = OrderedDict()
_perturbed_lock = threading.Lock()


def perturb_design(design: Design,
                   factors: Mapping[str, float]) -> Design:
    """``design`` with ``factors`` applied; the identical object when
    every factor is exactly ``1.0`` (the nominal path, bit for bit).

    Perturbed designs are memoized per (base design, factor set) — an
    ensemble replayed with the same seed returns the same design
    objects, so the simulator's content-hash cache serves it without
    re-decoding anything.
    """
    active = tuple((param, factors[param]) for param in sorted(factors)
                   if factors[param] != 1.0)
    if not active:
        _check_params(factors, "perturb_design")
        return design
    base_hash = design._content_hash_or_none()
    key = (base_hash, active)
    if base_hash is not None:
        with _perturbed_lock:
            cached = _perturbed_cache.get(key)
            if cached is not None:
                _perturbed_cache.move_to_end(key)
                return cached
    perturbed = Design.from_dict(perturb_payload(design.to_dict(),
                                                 factors))
    if base_hash is not None:
        with _perturbed_lock:
            _perturbed_cache[key] = perturbed
            while len(_perturbed_cache) > _PERTURBED_LIMIT:
                _perturbed_cache.popitem(last=False)
    return perturbed


# --- deterministic draws ---------------------------------------------------

def _hash_uniforms(seed: int, sample: int, param: str,
                   attempt: int) -> Tuple[float, float]:
    """Two uniforms from one addressed SHA-256 digest.

    The first lands in the open interval (0, 1) — safe under ``log`` —
    and the second in [0, 1).
    """
    key = f"{seed}|{sample}|{param}|{attempt}".encode("utf-8")
    digest = hashlib.sha256(key).digest()
    first = int.from_bytes(digest[:8], "big")
    second = int.from_bytes(digest[8:16], "big")
    return (first + 1.0) / (_U64 + 2.0), second / _U64


def standard_draw(seed: int, sample: int, param: str, *,
                  dist: str = "normal", cutoff: float = 3.0) -> float:
    """One unit-scale draw, pure in ``(seed, sample, param)``.

    ``normal`` is a Box-Muller standard normal, redrawn (with an
    attempt counter folded into the hash) until it lands within
    ``cutoff`` standard deviations; ``uniform`` is unit-variance,
    spanning ``+/- sqrt(3)``.
    """
    for attempt in itertools.count():
        u1, u2 = _hash_uniforms(seed, sample, param, attempt)
        if dist == "uniform":
            return _UNIFORM_HALF_WIDTH * (2.0 * u1 - 1.0)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(_TWO_PI * u2)
        if abs(z) <= cutoff:
            return z
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class VariationModel:
    """Relative spreads over parameter groups, deterministically sampled.

    ``sigma`` maps parameter-group names to relative standard
    deviations (0.05 = 5%).  ``dist`` picks the sampling distribution;
    normal draws are truncated at ``cutoff`` sigmas, which both keeps
    physical quantities positive and gives :func:`worst_case` a finite
    extreme to evaluate.
    """

    sigma: Mapping[str, float]
    dist: str = "normal"
    cutoff: float = 3.0

    def __post_init__(self) -> None:
        _check_params(self.sigma, "variation model")
        if self.dist not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"variation dist must be one of {DISTRIBUTIONS}, "
                f"got {self.dist!r}")
        if not self.cutoff > 0:
            raise ConfigurationError(
                f"variation cutoff must be > 0, got {self.cutoff}")
        for param, sigma in self.sigma.items():
            if not isinstance(sigma, (int, float)) or sigma < 0:
                raise ConfigurationError(
                    f"sigma[{param!r}] must be a number >= 0, got {sigma!r}")
            if self.extent_of(float(sigma)) >= 1.0:
                raise ConfigurationError(
                    f"sigma[{param!r}]={sigma} reaches factor <= 0 at the "
                    f"{self.dist} extreme; shrink sigma or the cutoff")
        object.__setattr__(self, "sigma",
                           {param: float(self.sigma[param])
                            for param in sorted(self.sigma)})

    # --- structure --------------------------------------------------------

    @property
    def params(self) -> Tuple[str, ...]:
        return tuple(self.sigma)

    @property
    def is_zero(self) -> bool:
        return all(sigma == 0.0 for sigma in self.sigma.values())

    def extent_of(self, sigma: float) -> float:
        """The worst-direction relative excursion for one spread."""
        width = self.cutoff if self.dist == "normal" else _UNIFORM_HALF_WIDTH
        return width * sigma

    def extent(self, param: str) -> float:
        return self.extent_of(self.sigma.get(param, 0.0))

    # --- sampling ---------------------------------------------------------

    def factor(self, seed: int, sample: int, param: str) -> float:
        """The multiplicative factor of one draw — pure and replayable."""
        sigma = self.sigma.get(param, 0.0)
        if sample == NOMINAL_SAMPLE or sigma == 0.0:
            return 1.0
        draw = standard_draw(seed, sample, param,
                             dist=self.dist, cutoff=self.cutoff)
        return 1.0 + sigma * draw

    def factors(self, seed: int, sample: int) -> Dict[str, float]:
        return {param: self.factor(seed, sample, param)
                for param in self.sigma}

    def extreme_corners(self) -> List["Corner"]:
        """The all-low / all-high box corners of the truncated model."""
        return [
            Corner("all-low", {param: 1.0 - self.extent(param)
                               for param in self.sigma}),
            Corner("all-high", {param: 1.0 + self.extent(param)
                                for param in self.sigma}),
        ]

    # --- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"sigma": dict(self.sigma), "dist": self.dist,
                "cutoff": self.cutoff}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "VariationModel":
        if not isinstance(payload, Mapping):
            raise SerializationError(
                f"variation model must be an object, "
                f"got {type(payload).__name__}")
        unknown = set(payload) - {"sigma", "dist", "cutoff"}
        if unknown:
            raise SerializationError(
                f"unknown variation model keys: {sorted(unknown)}")
        sigma = payload.get("sigma")
        if not isinstance(sigma, Mapping):
            raise SerializationError("variation model needs a 'sigma' map")
        return cls(sigma=dict(sigma),
                   dist=payload.get("dist", "normal"),
                   cutoff=payload.get("cutoff", 3.0))


#: Moderate all-around spreads: 5% on energies and capacitances, 10% on
#: leakage (it varies far more than switching energy in practice), 2%
#: on clocks and supplies.
DEFAULT_SIGMA: Dict[str, float] = {
    "memory.write_energy_per_word": 0.05,
    "memory.read_energy_per_word": 0.05,
    "memory.leakage_power": 0.10,
    "compute.energy_per_cycle": 0.05,
    "compute.energy_per_mac": 0.05,
    "compute.clock_hz": 0.02,
    "interface.energy_per_byte": 0.05,
    "analog.load_capacitance": 0.05,
    "analog.node_capacitance": 0.05,
    "analog.vdda": 0.02,
    "analog.energy_per_conversion": 0.05,
}


def default_variation(scale: float = 1.0) -> VariationModel:
    """The stock model, optionally scaled (``scale=0`` -> zero model)."""
    return VariationModel(sigma={param: sigma * scale
                                 for param, sigma in DEFAULT_SIGMA.items()})


# --- corners ---------------------------------------------------------------

@dataclass(frozen=True)
class Corner:
    """One named set of parameter-group factors."""

    name: str
    factors: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("corner name must be non-empty")
        _check_params(self.factors, f"corner {self.name!r}")
        for param, factor in self.factors.items():
            if not isinstance(factor, (int, float)) or not factor > 0:
                raise ConfigurationError(
                    f"corner {self.name!r}: factor[{param!r}] must be a "
                    f"number > 0, got {factor!r}")
        object.__setattr__(self, "factors",
                           {param: float(self.factors[param])
                            for param in sorted(self.factors)})

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "factors": dict(self.factors)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Corner":
        if not isinstance(payload, Mapping) or "name" not in payload \
                or "factors" not in payload:
            raise SerializationError(
                "corner must be an object with 'name' and 'factors'")
        unknown = set(payload) - {"name", "factors"}
        if unknown:
            raise SerializationError(
                f"unknown corner keys: {sorted(unknown)}")
        return cls(name=payload["name"], factors=dict(payload["factors"]))


def corner_from_pvt(point: PvtPoint) -> Corner:
    """Compile one PVT operating point into parameter-group factors."""
    dynamic = point.dynamic_energy_factor()
    return Corner(point.name, {
        "memory.write_energy_per_word": dynamic,
        "memory.read_energy_per_word": dynamic,
        "memory.leakage_power": point.leakage_power_factor(),
        "compute.energy_per_cycle": dynamic,
        "compute.energy_per_mac": dynamic,
        "compute.clock_hz": point.clock_factor(),
        "interface.energy_per_byte": dynamic,
        "analog.vdda": point.supply_factor(),
        "analog.voltage_swing": point.supply_factor(),
        "analog.energy_per_conversion": dynamic,
        "analog.counter_energy_per_step": dynamic,
    })


#: Named corner-set builders usable anywhere a corner list is accepted.
CORNER_SETS: Dict[str, Callable[[], List[Corner]]] = {
    "pvt": lambda: [corner_from_pvt(point)
                    for point in standard_pvt_points()],
}


def corner_set(name: str) -> List[Corner]:
    """The corners of one named set (see :data:`CORNER_SETS`)."""
    if name not in CORNER_SETS:
        raise ConfigurationError(
            f"unknown corner set {name!r}; known: {sorted(CORNER_SETS)}")
    return CORNER_SETS[name]()
