"""Command-line entry point: ``python -m repro <command>``.

Quick access to the headline experiments without writing any code:

    python -m repro validate     # Fig. 7 validation (nine chips)
    python -m repro fig5         # the paper's running example
    python -m repro rhythmic     # Fig. 9a exploration
    python -m repro edgaze       # Fig. 9b exploration
    python -m repro mixed        # Fig. 11 mixed-signal comparison
    python -m repro threelayer   # Sony IMX400-style burst stack
    python -m repro survey       # Fig. 1 / Fig. 3 trend data
    python -m repro chip "JSSC'21-II"   # one validation chip in detail
"""

from __future__ import annotations

import argparse
import sys

from repro import units


def _cmd_validate(_args) -> int:
    from repro.validation import run_validation
    print(run_validation().to_table())
    return 0


def _cmd_fig5(args) -> int:
    from repro.analysis import identify_bottlenecks
    from repro.usecases.fig5 import run_fig5
    report = run_fig5(frame_rate=args.fps)
    print(report.to_table())
    print("\nbottlenecks:")
    for bottleneck in identify_bottlenecks(report):
        print(" ", bottleneck.describe())
    return 0


def _cmd_rhythmic(_args) -> int:
    from repro.usecases import rhythmic_configs, run_rhythmic
    for config in rhythmic_configs():
        report = run_rhythmic(config)
        print(f"{config.label:16s} "
              f"{units.format_energy(report.total_energy)}/frame "
              f"({units.format_power(report.total_power)})")
    return 0


def _cmd_edgaze(_args) -> int:
    from repro.usecases import edgaze_configs, run_edgaze
    for config in edgaze_configs():
        report = run_edgaze(config)
        print(f"{config.label:18s} "
              f"{units.format_energy(report.total_energy)}/frame "
              f"({units.format_power(report.total_power)})")
    return 0


def _cmd_mixed(_args) -> int:
    from repro.analysis import compare_reports
    from repro.usecases import UseCaseConfig, run_edgaze, run_edgaze_mixed
    for node in (130, 65):
        digital = run_edgaze(UseCaseConfig("2D-In", node))
        mixed = run_edgaze_mixed(node)
        print(compare_reports(digital, mixed).describe())
        print()
    return 0


def _cmd_threelayer(args) -> int:
    from repro.usecases.threelayer import run_three_layer
    report = run_three_layer(burst_fps=args.fps)
    print(report.to_table())
    print("\nper-layer energy:")
    for layer, energy in report.by_layer().items():
        print(f"  {layer:10s} {units.format_energy(energy)}")
    return 0


def _cmd_chip(args) -> int:
    from repro.validation import chip_by_name, run_chip
    try:
        chip = chip_by_name(args.name)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 1
    result = run_chip(chip)
    print(f"{chip.name} — {chip.description}")
    print(f"  {chip.reference}")
    print(f"  {chip.process_node}, {chip.num_pixels} px @ "
          f"{chip.frame_rate:g} FPS")
    print(f"  {result.describe()}")
    for category, energy in sorted(result.breakdown_per_pixel().items()):
        print(f"    {category:8s} {energy / units.pJ:10.3f} pJ/px")
    errors = result.breakdown_errors()
    if errors:
        print("  per-component errors vs published breakdown:")
        for category, error in sorted(errors.items()):
            print(f"    {category:8s} {100 * error:5.1f}%")
    return 0


def _cmd_survey(_args) -> int:
    from repro.survey import (cis_node_trend, node_gap_by_year,
                              percentages_by_year)
    rows = percentages_by_year()
    print("Fig. 1 — computational share of CIS papers:")
    for row in rows[::4]:
        share = row["computational"] + row["stacked_computational"]
        print(f"  {row['year']}: {share:5.1f}% "
              f"(stacked {row['stacked_computational']:.1f}%)")
    slope, _ = cis_node_trend()
    print(f"\nFig. 3 — CIS node halving period: {-1 / slope:.1f} years")
    for row in node_gap_by_year()[-3:]:
        print(f"  {row['year']}: CIS ~{row['cis_node_nm']:.0f} nm vs "
              f"IRDS {row['irds_node_nm']:.0f} nm "
              f"({row['gap_ratio']:.1f}x behind)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CamJ reproduction: CIS energy modeling experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("validate", help="Fig. 7 nine-chip validation")
    fig5 = sub.add_parser("fig5", help="the paper's running example")
    fig5.add_argument("--fps", type=float, default=30.0)
    sub.add_parser("rhythmic", help="Fig. 9a exploration")
    sub.add_parser("edgaze", help="Fig. 9b exploration")
    sub.add_parser("mixed", help="Fig. 11 mixed-signal comparison")
    three = sub.add_parser("threelayer", help="IMX400-style burst stack")
    three.add_argument("--fps", type=float, default=960.0)
    sub.add_parser("survey", help="Fig. 1 / Fig. 3 trend data")
    chip = sub.add_parser("chip", help="one validation chip in detail")
    chip.add_argument("name", help="Table 2 chip name, e.g. JSSC'21-II")
    return parser


_COMMANDS = {
    "validate": _cmd_validate,
    "chip": _cmd_chip,
    "fig5": _cmd_fig5,
    "rhythmic": _cmd_rhythmic,
    "edgaze": _cmd_edgaze,
    "mixed": _cmd_mixed,
    "threelayer": _cmd_threelayer,
    "survey": _cmd_survey,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
