"""Command-line entry point: ``python -m repro <command>`` (or ``repro``).

Quick access to the headline experiments without writing any code:

    python -m repro validate     # Fig. 7 validation (nine chips)
    python -m repro fig5         # the paper's running example
    python -m repro rhythmic     # Fig. 9a exploration
    python -m repro edgaze       # Fig. 9b exploration
    python -m repro mixed        # Fig. 11 mixed-signal comparison
    python -m repro threelayer   # Sony IMX400-style burst stack
    python -m repro survey       # Fig. 1 / Fig. 3 trend data
    python -m repro chip "JSSC'21-II"   # one validation chip in detail

Plus the serialized-scenario workflow of the session API:

    python -m repro run spec.json            # execute a scenario spec
    python -m repro sweep spec.json --param frame_rate \\
        --values 15,30,60,120                # sweep an option over a spec
    python -m repro explore space.json       # multi-axis Pareto exploration
    python -m repro robust study.json        # Monte Carlo / corners / etc.
    python -m repro usecases                 # names `run` specs can reference
    python -m repro cache info               # inspect the persistent cache
    python -m repro cache clear              # wipe the persistent cache
    python -m repro serve --port 8642        # long-lived simulation daemon
    python -m repro dispatch --port 8642     # distributed coordinator
    python -m repro worker --connect http://127.0.0.1:8642  # join it

Setting ``REPRO_CACHE_DIR`` makes every command above read and write a
persistent result cache, so repeated invocations over the same specs
start warm.

Every command accepts ``--json`` (before or after the subcommand) to
emit machine-readable output instead of tables.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import units


def _emit_json(payload) -> int:
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _wants_json(args) -> bool:
    return getattr(args, "json", False)


def _cmd_validate(args) -> int:
    from repro.validation import run_validation
    summary = run_validation()
    if _wants_json(args):
        return _emit_json({
            "mape": summary.mean_absolute_percentage_error,
            "pearson": summary.pearson_correlation,
            "chips": [
                {
                    "name": result.chip.name,
                    "estimated_energy_per_pixel":
                        result.estimated_energy_per_pixel,
                    "reported_energy_per_pixel":
                        result.reported_energy_per_pixel,
                    "error": result.absolute_percentage_error,
                }
                for result in summary.results
            ],
        })
    print(summary.to_table())
    return 0


def _cmd_fig5(args) -> int:
    from repro.analysis import identify_bottlenecks
    from repro.usecases.fig5 import run_fig5
    report = run_fig5(frame_rate=args.fps)
    if _wants_json(args):
        return _emit_json(report.to_dict())
    print(report.to_table())
    print("\nbottlenecks:")
    for bottleneck in identify_bottlenecks(report):
        print(" ", bottleneck.describe())
    return 0


def _run_config_grid(args, space, usecase) -> int:
    """Shared body of the rhythmic/edgaze exploration commands.

    The grid runs through the exploration engine — one cached, parallel
    ``run_many`` batch — instead of a sequential loop per configuration.
    """
    from repro.explore import explore
    # The table prints full per-point reports, which only the object
    # path materializes — keep the vector engine out of this command.
    result = explore(space, usecase, objectives=("energy_per_frame",),
                     annotate=False, engine="object")
    labeled = [(f"{point.params['placement']} "
                f"({point.params['cis_node']}nm)", point)
               for point in result.points]
    if _wants_json(args):
        return _emit_json([
            {"label": label, **point.report.to_dict()} if point.feasible
            else {"label": label, "failure": point.failure}
            for label, point in labeled])
    for label, point in labeled:
        if not point.feasible:
            print(f"{label:18s} infeasible: {point.failure}")
            continue
        report = point.report
        print(f"{label:18s} "
              f"{units.format_energy(report.total_energy)}/frame "
              f"({units.format_power(report.total_power)})")
    return 0


def _cmd_rhythmic(args) -> int:
    from repro.usecases import rhythmic_space
    return _run_config_grid(args, rhythmic_space(), "rhythmic")


def _cmd_edgaze(args) -> int:
    from repro.usecases import edgaze_space
    return _run_config_grid(args, edgaze_space(), "edgaze")


def _cmd_mixed(args) -> int:
    from repro.analysis import compare_reports
    from repro.usecases import UseCaseConfig, run_edgaze, run_edgaze_mixed
    deltas = []
    for node in (130, 65):
        digital = run_edgaze(UseCaseConfig("2D-In", node))
        mixed = run_edgaze_mixed(node)
        deltas.append((node, compare_reports(digital, mixed)))
    if _wants_json(args):
        return _emit_json([
            {
                "cis_node": node,
                "baseline": delta.baseline_name,
                "candidate": delta.candidate_name,
                "baseline_total": delta.baseline_total,
                "candidate_total": delta.candidate_total,
                "savings_fraction": delta.savings_fraction,
                "by_category": {category.value: value for category, value
                                in delta.by_category.items()},
            }
            for node, delta in deltas
        ])
    for _, delta in deltas:
        print(delta.describe())
        print()
    return 0


def _cmd_threelayer(args) -> int:
    from repro.usecases.threelayer import run_three_layer
    report = run_three_layer(burst_fps=args.fps)
    if _wants_json(args):
        payload = report.to_dict()
        payload["by_layer"] = report.by_layer()
        return _emit_json(payload)
    print(report.to_table())
    print("\nper-layer energy:")
    for layer, energy in report.by_layer().items():
        print(f"  {layer:10s} {units.format_energy(energy)}")
    return 0


def _cmd_chip(args) -> int:
    from repro.validation import chip_by_name, run_chip
    try:
        chip = chip_by_name(args.name)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 1
    result = run_chip(chip)
    if _wants_json(args):
        return _emit_json({
            "name": chip.name,
            "description": chip.description,
            "reference": chip.reference,
            "process_node": chip.process_node,
            "num_pixels": chip.num_pixels,
            "frame_rate": chip.frame_rate,
            "estimated_energy_per_pixel": result.estimated_energy_per_pixel,
            "reported_energy_per_pixel": result.reported_energy_per_pixel,
            "error": result.absolute_percentage_error,
            "breakdown_per_pixel": result.breakdown_per_pixel(),
            "breakdown_errors": result.breakdown_errors(),
        })
    print(f"{chip.name} — {chip.description}")
    print(f"  {chip.reference}")
    print(f"  {chip.process_node}, {chip.num_pixels} px @ "
          f"{chip.frame_rate:g} FPS")
    print(f"  {result.describe()}")
    for category, energy in sorted(result.breakdown_per_pixel().items()):
        print(f"    {category:8s} {energy / units.pJ:10.3f} pJ/px")
    errors = result.breakdown_errors()
    if errors:
        print("  per-component errors vs published breakdown:")
        for category, error in sorted(errors.items()):
            print(f"    {category:8s} {100 * error:5.1f}%")
    return 0


def _cmd_survey(args) -> int:
    from repro.survey import (cis_node_trend, node_gap_by_year,
                              percentages_by_year)
    rows = percentages_by_year()
    slope, _ = cis_node_trend()
    if _wants_json(args):
        return _emit_json({
            "fig1_percentages_by_year": rows,
            "fig3_node_halving_years": -1 / slope,
            "fig3_node_gap_by_year": node_gap_by_year(),
        })
    print("Fig. 1 — computational share of CIS papers:")
    for row in rows[::4]:
        share = row["computational"] + row["stacked_computational"]
        print(f"  {row['year']}: {share:5.1f}% "
              f"(stacked {row['stacked_computational']:.1f}%)")
    print(f"\nFig. 3 — CIS node halving period: {-1 / slope:.1f} years")
    for row in node_gap_by_year()[-3:]:
        print(f"  {row['year']}: CIS ~{row['cis_node_nm']:.0f} nm vs "
              f"IRDS {row['irds_node_nm']:.0f} nm "
              f"({row['gap_ratio']:.1f}x behind)")
    return 0


def _cmd_usecases(args) -> int:
    from repro.api import available_usecases
    names = available_usecases()
    if _wants_json(args):
        return _emit_json(names)
    for name in names:
        print(name)
    return 0


def _cmd_run(args) -> int:
    """Execute one serialized scenario spec end to end."""
    from repro.api import Simulator, load_scenario
    from repro.exceptions import CamJError
    try:
        design, options = load_scenario(args.spec)
    except (OSError, CamJError) as error:
        print(f"cannot load spec {args.spec}: {error}", file=sys.stderr)
        return 1
    # Context-managed so an interrupt mid-run still reclaims any pool
    # workers instead of stranding them.
    with Simulator(options) as simulator:
        result = simulator.run(design)
    if _wants_json(args):
        _emit_json(result.to_dict())
        return 0 if result.ok else 1
    if not result.ok:
        print(f"{design.name}: {result.error_type}: {result.failure}",
              file=sys.stderr)
        return 1
    print(result.report.to_table())
    print(f"\ndesign hash  {result.design_hash}")
    return 0


def _cmd_sweep(args) -> int:
    """Sweep one simulation option over a serialized scenario spec."""
    from repro.api import Simulator, load_scenario
    from repro.exceptions import CamJError, ConfigurationError
    try:
        design, options = load_scenario(args.spec)
    except (OSError, CamJError) as error:
        print(f"cannot load spec {args.spec}: {error}", file=sys.stderr)
        return 1
    try:
        values = [float(raw) for raw in args.values.split(",") if raw]
    except ValueError:
        print(f"--values must be comma-separated numbers, "
              f"got {args.values!r}", file=sys.stderr)
        return 1
    if not values:
        print("--values must name at least one value", file=sys.stderr)
        return 1
    if args.param == "exposure_slots":
        if any(value != int(value) for value in values):
            print("--values for exposure_slots must be whole numbers, "
                  f"got {args.values!r}", file=sys.stderr)
            return 1
        values = [int(value) for value in values]
    try:
        items = [(design, options.replace(**{args.param: value}))
                 for value in values]
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 1
    with Simulator() as simulator:
        results = simulator.run_many(items)
    if _wants_json(args):
        return _emit_json({
            "design": design.name,
            "design_hash": design.content_hash,
            "param": args.param,
            "points": [{"value": value, **result.to_dict()}
                       for value, result in zip(values, results)],
        })
    print(f"sweep of {args.param} over {design.name}:")
    for value, result in zip(values, results):
        if result.ok:
            print(f"  {value:>10g}  "
                  f"{units.format_energy(result.report.total_energy)}/frame "
                  f"({units.format_power(result.report.total_power)})")
        else:
            print(f"  {value:>10g}  infeasible: {result.failure}")
    return 0


def _cmd_explore(args) -> int:
    """Run a design-space exploration spec through the engine."""
    import dataclasses

    from repro.exceptions import CamJError
    from repro.explore import load_exploration_spec
    try:
        spec = load_exploration_spec(args.spec)
    except (OSError, CamJError) as error:
        print(f"cannot load spec {args.spec}: {error}", file=sys.stderr)
        return 1
    if args.engine:
        spec = dataclasses.replace(spec, engine=args.engine)
    try:
        result = spec.run()
    except CamJError as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.output:
        result.save(args.output)
    if _wants_json(args):
        _emit_json(result.to_dict())
    else:
        print(result.to_table())
    # A spec whose every point is infeasible signals failure, like `run`.
    return 0 if result.feasible_points else 1


def _cmd_robust(args) -> int:
    """Run a robustness study spec (Monte Carlo, corners, ...)."""
    import dataclasses
    import json as json_mod

    from repro.exceptions import CamJError
    from repro.robust import load_robust_spec

    try:
        spec = load_robust_spec(args.spec)
    except (OSError, CamJError) as error:
        print(f"cannot load spec {args.spec}: {error}", file=sys.stderr)
        return 1
    overrides = {}
    if args.samples is not None:
        overrides["samples"] = args.samples
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    try:
        document = spec.run_document()
    except CamJError as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json_mod.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if _wants_json(args):
        _emit_json(document)
    elif spec.kind == "explore":
        from repro.explore import ExplorationResult
        print(ExplorationResult.from_dict(document["result"]).to_table())
    else:
        from repro.robust import RobustResult
        print(RobustResult.from_dict(document).summary())
    if spec.kind == "explore":
        return 0 if any(point["feasible"]
                        for point in document["result"]["points"]) else 1
    accounting = document.get("accounting", {})
    return 0 if accounting.get("ok", 0) > 0 else 1


def _cmd_cache(args) -> int:
    """Inspect or clear the persistent (disk-tier) result cache."""
    import os

    from repro.api.diskcache import CACHE_DIR_ENV, DiskResultCache

    directory = args.dir if args.dir else os.environ.get(CACHE_DIR_ENV)
    if not directory:
        print(f"no cache directory: pass --dir or set {CACHE_DIR_ENV}",
              file=sys.stderr)
        return 1
    if not os.path.isdir(directory):
        # Inspection must not create directories as a side effect (a
        # typo'd --dir would otherwise litter the filesystem).
        print(f"cache directory {directory} does not exist",
              file=sys.stderr)
        return 1
    try:
        cache = DiskResultCache(directory)
    except OSError as error:
        print(f"cannot open cache directory {directory}: {error}",
              file=sys.stderr)
        return 1
    if args.action == "clear":
        removed = cache.clear()
        if _wants_json(args):
            return _emit_json({"directory": str(cache.directory),
                               "removed": removed})
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    info = cache.info()
    if _wants_json(args):
        return _emit_json({
            "directory": info.directory,
            "entries": info.entries,
            "total_bytes": info.total_bytes,
            "max_bytes": info.max_bytes,
        })
    print(f"cache directory  {info.directory}")
    print(f"entries          {info.entries}")
    print(f"size             {info.total_bytes} bytes "
          f"(bound {info.max_bytes})")
    return 0


def _cmd_serve(args) -> int:
    """Run the long-lived simulation service daemon."""
    from repro.serve import ServeApp
    app = ServeApp(host=args.host, port=args.port, workers=args.workers,
                   chunk_size=args.chunk_size, cache_dir=args.cache_dir,
                   max_workers=args.max_workers, executor=args.executor,
                   journal_dir=args.journal,
                   dispatch=getattr(args, "dispatch", False),
                   lease_ttl_s=getattr(args, "lease_ttl", None),
                   heartbeat_s=getattr(args, "heartbeat", None))
    app.run(ready_file=args.ready_file, announce=not _wants_json(args))
    return 0


def _cmd_dispatch(args) -> int:
    """Run a dispatch coordinator: ``serve --dispatch`` in one word."""
    args.dispatch = True
    return _cmd_serve(args)


def _cmd_worker(args) -> int:
    """Attach a pull-based worker process to a dispatch coordinator."""
    from repro.exec.worker import run_supervised, run_worker
    if args.respawn:
        child_argv = ["--connect", args.connect,
                      "--batch-size", str(args.batch_size)]
        if args.cache_dir:
            child_argv += ["--cache-dir", args.cache_dir]
        return run_supervised(child_argv,
                              announce=not _wants_json(args))
    summary = run_worker(args.connect, batch_size=args.batch_size,
                         cache_dir=args.cache_dir,
                         announce=not _wants_json(args))
    if _wants_json(args):
        return _emit_json(summary)
    print(f"repro worker: done — {summary['completed']} task(s) "
          f"completed in {summary['batches']} batch(es) over "
          f"{summary['elapsed_s']:g}s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    # SUPPRESS keeps a subcommand's unset flag from clobbering a --json
    # given before the subcommand.
    common.add_argument("--json", action="store_true",
                        default=argparse.SUPPRESS,
                        help="emit machine-readable JSON instead of tables")
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CamJ reproduction: CIS energy modeling experiments")
    parser.add_argument("--json", action="store_true", default=False,
                        help="emit machine-readable JSON instead of tables")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("validate", help="Fig. 7 nine-chip validation",
                   parents=[common])
    fig5 = sub.add_parser("fig5", help="the paper's running example",
                          parents=[common])
    fig5.add_argument("--fps", type=float, default=30.0)
    sub.add_parser("rhythmic", help="Fig. 9a exploration", parents=[common])
    sub.add_parser("edgaze", help="Fig. 9b exploration", parents=[common])
    sub.add_parser("mixed", help="Fig. 11 mixed-signal comparison",
                   parents=[common])
    three = sub.add_parser("threelayer", help="IMX400-style burst stack",
                           parents=[common])
    three.add_argument("--fps", type=float, default=960.0)
    sub.add_parser("survey", help="Fig. 1 / Fig. 3 trend data",
                   parents=[common])
    chip = sub.add_parser("chip", help="one validation chip in detail",
                          parents=[common])
    chip.add_argument("name", help="Table 2 chip name, e.g. JSSC'21-II")
    sub.add_parser("usecases", help="registered builders spec files can use",
                   parents=[common])
    run = sub.add_parser("run", help="execute a serialized scenario spec",
                         parents=[common])
    run.add_argument("spec", help="path to a scenario spec JSON file")
    sweep = sub.add_parser(
        "sweep", help="sweep a simulation option over a scenario spec",
        parents=[common])
    sweep.add_argument("spec", help="path to a scenario spec JSON file")
    sweep.add_argument("--param", default="frame_rate",
                       choices=("frame_rate", "exposure_slots"),
                       help="which SimOptions field to sweep")
    sweep.add_argument("--values", required=True,
                       help="comma-separated values, e.g. 15,30,60,120")
    explore = sub.add_parser(
        "explore",
        help="run a multi-axis Pareto exploration spec (repro.explore)",
        parents=[common])
    explore.add_argument("spec", help="path to an exploration spec JSON "
                                      "file (repro.explore-spec/1)")
    explore.add_argument("-o", "--output", default=None,
                         help="also write the full repro.explore/1 result "
                              "JSON to this path")
    explore.add_argument("--engine", default=None,
                         choices=("auto", "vector", "object"),
                         help="evaluation engine: auto routes eligible "
                              "groups through the vectorized fast path, "
                              "vector requires it, object forces the "
                              "per-point path (default: the spec's "
                              "engine, normally auto)")
    robust = sub.add_parser(
        "robust",
        help="run a statistical robustness study spec (repro.robust)",
        parents=[common])
    robust.add_argument("spec", help="path to a robustness spec JSON "
                                     "file (repro.robust-spec/1)")
    robust.add_argument("-o", "--output", default=None,
                        help="also write the full repro.robust/1 "
                             "document to this path")
    robust.add_argument("--samples", type=int, default=None,
                        help="override the spec's ensemble size")
    robust.add_argument("--seed", type=int, default=None,
                        help="override the spec's sampling seed")
    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache",
        parents=[common])
    cache.add_argument("action", choices=("info", "clear"),
                       help="what to do with the cache directory")
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR)")
    def _add_serve_flags(target: argparse.ArgumentParser) -> None:
        target.add_argument("--host", default="127.0.0.1",
                            help="bind address (default: 127.0.0.1)")
        target.add_argument("--port", type=int, default=8642,
                            help="bind port; 0 picks an ephemeral one "
                                 "(default: 8642)")
        target.add_argument("--workers", type=int, default=2,
                            help="concurrent job slots (default: 2)")
        target.add_argument("--chunk-size", type=int, default=8,
                            help="explore points per progress/cancellation "
                                 "chunk (default: 8)")
        target.add_argument("--cache-dir", default=None,
                            help="persistent result-cache directory "
                                 "(default: $REPRO_CACHE_DIR)")
        target.add_argument("--max-workers", type=int, default=None,
                            help="width of the shared session's simulation "
                                 "pool (default: auto)")
        target.add_argument("--ready-file", default=None,
                            help="write the bound address here as JSON once "
                                 "listening (ephemeral-port rendezvous)")
        target.add_argument("--executor", default="thread",
                            choices=("inline", "thread", "process"),
                            help="shared session executor; 'process' "
                                 "isolates simulations in pool workers "
                                 "(survives worker crashes); ignored "
                                 "under --dispatch (default: thread)")
        target.add_argument("--journal", default=None,
                            help="durable job-journal directory; submitted "
                                 "jobs survive daemon crashes and are "
                                 "recovered on restart (default: off)")
        target.add_argument("--lease-ttl", type=float, default=None,
                            help="dispatch lease deadline in seconds "
                                 "(default: $REPRO_LEASE_TTL_S, then 15)")
        target.add_argument("--heartbeat", type=float, default=None,
                            help="dispatch worker heartbeat interval in "
                                 "seconds (default: $REPRO_HEARTBEAT_S, "
                                 "then a third of the lease TTL)")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived simulation service daemon (HTTP/JSON)",
        parents=[common])
    _add_serve_flags(serve)
    serve.add_argument("--dispatch", action="store_true", default=False,
                       help="coordinate remote `repro worker` processes: "
                            "the shared session executes through a "
                            "lease-based work queue served under "
                            "/dispatch")
    dispatch = sub.add_parser(
        "dispatch",
        help="run a distributed-execution coordinator "
             "(serve --dispatch)",
        parents=[common])
    _add_serve_flags(dispatch)
    worker = sub.add_parser(
        "worker",
        help="attach a pull-based worker process to a dispatch "
             "coordinator",
        parents=[common])
    worker.add_argument("--connect", required=True, metavar="URL",
                        help="coordinator base URL, e.g. "
                             "http://127.0.0.1:8642")
    worker.add_argument("--batch-size", type=int, default=32,
                        help="tasks leased per claim (default: 32)")
    worker.add_argument("--cache-dir", default=None,
                        help="shared result-cache directory; point every "
                             "worker and the coordinator at the same one "
                             "(default: $REPRO_CACHE_DIR)")
    worker.add_argument("--respawn", action="store_true", default=False,
                        help="supervise: restart the worker child "
                             "whenever it exits abnormally")
    return parser


_COMMANDS = {
    "validate": _cmd_validate,
    "chip": _cmd_chip,
    "fig5": _cmd_fig5,
    "rhythmic": _cmd_rhythmic,
    "edgaze": _cmd_edgaze,
    "mixed": _cmd_mixed,
    "threelayer": _cmd_threelayer,
    "survey": _cmd_survey,
    "usecases": _cmd_usecases,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "explore": _cmd_explore,
    "robust": _cmd_robust,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "dispatch": _cmd_dispatch,
    "worker": _cmd_worker,
}


class _sigterm_as_interrupt:
    """Deliver SIGTERM as KeyboardInterrupt for the command's duration.

    One-shot commands then unwind through their ``with Simulator()`` /
    ``finally: close()`` blocks on termination, so pool worker
    processes are reclaimed instead of lingering as zombies.  The
    previous handler is restored on exit; no-op off the main thread
    (or where signals are unavailable).  The ``serve`` daemon installs
    its own loop-level handlers instead.
    """

    def __enter__(self):
        import signal
        import threading
        self._previous = None
        if threading.current_thread() is not threading.main_thread():
            return self
        def _raise_interrupt(signum, frame):
            raise KeyboardInterrupt

        try:
            self._previous = signal.signal(signal.SIGTERM, _raise_interrupt)
        except (ValueError, OSError, AttributeError):
            self._previous = None
        return self

    def __exit__(self, *exc_info):
        import signal
        if self._previous is not None:
            try:
                signal.signal(signal.SIGTERM, self._previous)
            except (ValueError, OSError):
                pass
        return False


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # serve/dispatch install loop-level signal handlers; worker
        # installs its own graceful-stop handlers.
        if args.command in ("serve", "dispatch", "worker"):
            return _COMMANDS[args.command](args)
        with _sigterm_as_interrupt():
            return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # Interrupted (Ctrl-C or SIGTERM): sessions were closed on the
        # way out; report the conventional 128+SIGINT code.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
