"""Validation against the nine CIS chips of Table 2 (Fig. 7)."""

from repro.validation.base import ChipModel, ChipResult
from repro.validation.harness import (
    ValidationSummary,
    run_chip,
    run_validation,
)
from repro.validation.chips import ALL_CHIPS, chip_by_name

__all__ = [
    "ChipModel",
    "ChipResult",
    "ValidationSummary",
    "run_chip",
    "run_validation",
    "ALL_CHIPS",
    "chip_by_name",
]
