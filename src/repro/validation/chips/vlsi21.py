"""VLSI'21 [61]: Seo et al. (Samsung), 2 Mpixel global-shutter DPS CIS.

Table 2 row: 65 nm / 28 nm stacked, digital pixel sensor with pixel-level
ADC and in-pixel memory, 6 MB digital memory on the logic layer, no
explicit PE (readout/packing logic only).  116.2 mW at high-speed global-
shutter operation; we model the 480 FPS operating point.
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import DigitalPixelSensor
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import DoubleBuffer
from repro.hw.layer import COMPUTE_LAYER, Layer, SENSOR_LAYER
from repro.memlib import SRAMModel
from repro.sw.stage import PixelInput, ProcessStage
from repro.validation.base import ChipModel

_ROWS, _COLS = 1200, 1600
_FPS = 480


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input", bits_per_pixel=10)
    readout = ProcessStage("ReadoutPacking", input_size=(_ROWS, _COLS, 1),
                           kernel=(1, 1, 1), stride=(1, 1, 1),
                           bits_per_pixel=10)
    readout.set_input_stage(source)

    system = SensorSystem("VLSI21", layers=[Layer(SENSOR_LAYER, 65),
                                            Layer(COMPUTE_LAYER, 28)])
    pixels = AnalogArray("DPSArray", num_input=(1, _COLS),
                         num_output=(1, _COLS))
    pixels.add_component(
        DigitalPixelSensor(
            bits=10,
            pd_capacitance=7 * units.fF,
            load_capacitance=30 * units.fF,  # in-pixel, short wires
            voltage_swing=1.0,
            vdda=2.2,
            adc_energy_per_conversion=60 * units.pJ),
        (_ROWS, _COLS))

    sram = SRAMModel(capacity_bytes=6 * units.MB, word_bits=128, node_nm=28)
    frame_buffer = DoubleBuffer.from_model("FrameSRAM", sram,
                                           layer=COMPUTE_LAYER,
                                           duty_alpha=0.55)
    pixels.set_output(frame_buffer)
    packer = ComputeUnit("ReadoutLogic", COMPUTE_LAYER,
                         input_pixels_per_cycle=(1, 32),
                         output_pixels_per_cycle=(1, 32),
                         energy_per_cycle=30 * units.pJ,
                         num_stages=3,
                         clock_hz=600 * units.MHz)
    packer.set_input(frame_buffer)
    packer.set_sink()
    system.add_analog_array(pixels)
    system.add_memory(frame_buffer)
    system.add_compute_unit(packer)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=4.6 * units.um)

    mapping = {"Input": "DPSArray", "ReadoutPacking": "ReadoutLogic"}
    return [source, readout], system, mapping


VLSI21 = ChipModel(
    name="VLSI'21",
    reference="Seo et al., Symp. VLSI Circuits 2021",
    description="2 Mpixel global-shutter DPS with pixel-level ADC",
    process_node="65/28 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=126 * units.pJ,
    build=_build,
)
