"""JSSC'19 [72]: Young et al., data-compressive log-gradient QVGA CIS.

Table 2 row: 130 nm, not stacked, 4T APS, 4x240 analog memory, column
logarithmic subtraction, voltage domain, no digital processing.  The chip
reads out 1.5/2.75-bit log-gradients for always-on object detection; the
paper notes CamJ's analog-PE estimate lands within 0.4 % because the
original publication reports detailed circuit parameters.
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogLog,
    ColumnADC,
    PassiveAnalogMemory,
)
from repro.hw.chip import SensorSystem
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sw.stage import PixelInput, ProcessStage
from repro.validation.base import ChipModel

_ROWS, _COLS = 240, 320
_FPS = 30


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input")
    # Log-gradient: log-compress, then subtract a 2x2 neighborhood.
    log_gradient = ProcessStage("LogGradient",
                                input_size=(_ROWS, _COLS, 1),
                                kernel=(2, 2, 1), stride=(1, 1, 1),
                                padding="same",
                                ops_per_output=1.0,  # one gradient per pixel
                                bits_per_pixel=3,  # 2.75-bit readout
                                output_compression=0.5)
    log_gradient.set_input_stage(source)

    system = SensorSystem("JSSC19", layers=[Layer(SENSOR_LAYER, 130)])
    pixels = AnalogArray("PixelArray", num_input=(1, _COLS),
                         num_output=(1, _COLS))
    pixels.add_component(
        ActivePixelSensor(
            num_transistors=4,
            pd_capacitance=9 * units.fF,
            fd_capacitance=2.2 * units.fF,
            load_capacitance=1.55 * units.pF,
            voltage_swing=1.0,
            vdda=2.5,
            correlated_double_sampling=True),
        (_ROWS, _COLS))
    # Column log-subtraction PEs with a 4-row analog memory bank.
    log_units = AnalogArray("LogGradientArray", num_input=(1, _COLS),
                            num_output=(1, _COLS))
    log_units.add_component(
        AnalogLog("LogPE", load_capacitance=35 * units.fF,
                  voltage_swing=0.4, vdda=2.5),
        (1, _COLS))
    analog_memory = AnalogArray("RowMemory", num_input=(1, _COLS),
                                num_output=(1, _COLS), category="memory")
    analog_memory.add_component(
        PassiveAnalogMemory("RowSample", bits=6, voltage_swing=1.0),
        (4, 240))  # Table 2: 4x240 analog values
    adcs = AnalogArray("ADCArray", num_input=(1, _COLS),
                       num_output=(1, _COLS))
    adcs.add_component(ColumnADC(bits=3), (1, _COLS))
    pixels.set_output(log_units)
    log_units.set_output(analog_memory)
    analog_memory.set_output(adcs)
    system.add_analog_array(pixels)
    system.add_analog_array(log_units)
    system.add_analog_array(analog_memory)
    system.add_analog_array(adcs)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=5.0 * units.um)

    mapping = {"Input": "PixelArray", "LogGradient": "LogGradientArray"}
    return [source, log_gradient], system, mapping


JSSC19 = ChipModel(
    name="JSSC'19",
    reference="Young et al., IEEE JSSC 54(11), 2019",
    description="1.5/2.75-bit log-gradient QVGA CIS with multi-scale readout",
    process_node="130 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=8.3 * units.pJ,
    build=_build,
    # Per-component numbers from the original publication; the paper
    # highlights that its analog-PE estimate lands within 0.4 % here.
    reported_breakdown={
        "SEN": 8.22 * units.pJ,
        "COMP-A": 0.03514 * units.pJ,
    },
)
