"""JSSC'21-II [54]: Park et al., 51-pJ/pixel compressive CIS.

Table 2 row: 110 nm, not stacked, 4T APS, no analog memory, column-parallel
charge-domain MAC performing 4x single-shot compressive sensing.  The title
reports the headline number directly: 51 pJ/pixel.
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogMAC,
    ColumnADC,
)
from repro.hw.chip import SensorSystem
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sw.stage import PixelInput, ProcessStage
from repro.validation.base import ChipModel

_ROWS, _COLS = 480, 640
_FPS = 30


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input", bits_per_pixel=10)
    # 4x compressive sensing: each 2x2 tile collapses to one coded sample.
    compress = ProcessStage("CompressiveSensing",
                            input_size=(_ROWS, _COLS, 1),
                            kernel=(2, 2, 1), stride=(2, 2, 1),
                            bits_per_pixel=10)
    compress.set_input_stage(source)

    system = SensorSystem("JSSC21-II", layers=[Layer(SENSOR_LAYER, 110)])
    pixels = AnalogArray("PixelArray", num_input=(1, _COLS),
                         num_output=(1, _COLS))
    pixels.add_component(
        ActivePixelSensor(
            num_transistors=4,
            pd_capacitance=8 * units.fF,
            fd_capacitance=2 * units.fF,
            load_capacitance=3.2 * units.pF,  # VGA-length column line
            voltage_swing=1.0,
            vdda=2.8,
            correlated_double_sampling=True),
        (_ROWS, _COLS))
    macs = AnalogArray("CSMACArray", num_input=(1, _COLS),
                       num_output=(1, _COLS // 2))
    macs.add_component(
        AnalogMAC("ChargeMAC", kernel_volume=4,
                  unit_capacitance=100 * units.fF,
                  voltage_swing=1.0, vdda=2.8, include_opamp=True,
                  opamp_gain=2.0),
        (1, _COLS // 2))
    adcs = AnalogArray("ADCArray", num_input=(1, _COLS // 2),
                       num_output=(1, _COLS // 2))
    adcs.add_component(ColumnADC(bits=10, energy_per_conversion=130 * units.pJ), (1, _COLS // 2))
    pixels.set_output(macs)
    macs.set_output(adcs)
    system.add_analog_array(pixels)
    system.add_analog_array(macs)
    system.add_analog_array(adcs)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=3.0 * units.um)

    mapping = {"Input": "PixelArray", "CompressiveSensing": "CSMACArray"}
    return [source, compress], system, mapping


JSSC21_II = ChipModel(
    name="JSSC'21-II",
    reference="Park et al., IEEE JSSC 56(8), 2021",
    description="51-pJ/pixel 4x compressive CIS, column charge-domain MAC",
    process_node="110 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=51 * units.pJ,
    build=_build,
)
