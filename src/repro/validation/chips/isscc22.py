"""ISSCC'22 [29]: Hsu et al., 0.8-V intelligent vision sensor with tiny CNN.

Table 2 row: 180 nm, not stacked, PWM pixels, column MAC in time & current
domains, programmable weights, a 256 B weight memory and a single digital
PE for the classifier head (mixed-mode processing-in-sensor).
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    ColumnADC,
    CurrentDomainMAC,
    PWMPixel,
)
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit
from repro.hw.digital.memory import FIFO
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sw.stage import FullyConnectedStage, PixelInput, ProcessStage
from repro.validation.base import ChipModel

_ROWS, _COLS = 120, 160
_FPS = 30


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input")
    conv = ProcessStage("TinyConv", input_size=(_ROWS, _COLS, 1),
                        kernel=(5, 5, 1), stride=(5, 5, 1))
    classifier = FullyConnectedStage("Classifier",
                                     in_features=24 * 32,
                                     out_features=10)
    conv.set_input_stage(source)
    classifier.set_input_stage(conv)

    system = SensorSystem("ISSCC22", layers=[Layer(SENSOR_LAYER, 180)])
    pixels = AnalogArray("PWMPixelArray", num_input=(1, _COLS),
                         num_output=(1, _COLS))
    pixels.add_component(
        PWMPixel("PWM", pd_capacitance=15 * units.fF, voltage_swing=0.8,
                 comparator_energy=2.2 * units.pJ),
        (_ROWS, _COLS))
    macs = AnalogArray("PIPMACArray", num_input=(1, _COLS),
                       num_output=(1, _COLS // 5))
    macs.add_component(
        CurrentDomainMAC("PIPMAC", kernel_volume=25,
                         load_capacitance=16 * units.fF,
                         voltage_swing=0.5, vdda=0.8),
        (1, _COLS // 5))
    adcs = AnalogArray("ADCArray", num_input=(1, _COLS // 5),
                       num_output=(1, _COLS // 5))
    adcs.add_component(ColumnADC(bits=8), (1, _COLS // 5))
    pixels.set_output(macs)
    macs.set_output(adcs)

    weights = FIFO("WeightMemory", size=(1, 256),
                   write_energy_per_word=0.08 * units.pJ,
                   read_energy_per_word=0.08 * units.pJ,
                   leakage_power=0.2 * units.uW,
                   num_read_ports=2, num_write_ports=2)
    adcs.set_output(weights)
    head = ComputeUnit("ClassifierPE",
                       input_pixels_per_cycle=(1, 1),
                       output_pixels_per_cycle=(1, 1),
                       energy_per_cycle=6.5 * units.pJ,  # 180 nm MAC
                       num_stages=2)
    head.set_input(weights)
    head.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(macs)
    system.add_analog_array(adcs)
    system.add_memory(weights)
    system.add_compute_unit(head)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=7.0 * units.um)

    mapping = {"Input": "PWMPixelArray", "TinyConv": "PIPMACArray",
               "Classifier": "ClassifierPE"}
    return [source, conv, classifier], system, mapping


ISSCC22 = ChipModel(
    name="ISSCC'22",
    reference="Hsu et al., ISSCC 2022",
    description="0.8-V mixed-mode processing-in-sensor image classifier",
    process_node="180 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=2.9 * units.pJ,
    build=_build,
)
