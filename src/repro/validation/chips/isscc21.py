"""ISSCC'21 [16]: Eki et al. (Sony IMX 500), stacked CIS with CNN processor.

Table 2 row: 65 nm / 22 nm stacked, 4T APS (educated guess in the paper),
no analog processing, 8 MB digital memory and a 1x2304-MAC DNN processor
(4.97 TOPS/W) on the logic layer.  The 12.3 Mpixel array is read out
through column ADCs; pixels cross to the logic layer over micro-TSVs, get
downscaled, and a MobileNet-class network produces the semantic output.

The modeled operating point (30 FPS, full-resolution readout plus a
224x224 DNN crop) approximates the published always-on DNN mode.
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import ActivePixelSensor, ColumnADC
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import ComputeUnit, SystolicArray
from repro.hw.digital.memory import DoubleBuffer
from repro.hw.layer import COMPUTE_LAYER, Layer, SENSOR_LAYER
from repro.memlib import SRAMModel
from repro.sw.stage import Conv2DStage, PixelInput, ProcessStage
from repro.tech import mac_energy
from repro.validation.base import ChipModel

_ROWS, _COLS = 3040, 4056
_FPS = 30


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input", bits_per_pixel=10)
    # ISP-style downscale of the full frame to the DNN input crop.
    downscale = ProcessStage("Downscale", input_size=(_ROWS, _COLS, 1),
                             kernel=(13, 18, 1), stride=(13, 18, 1),
                             bits_per_pixel=8)
    # MobileNet-class backbone folded into one equivalent conv layer.
    backbone = Conv2DStage("DNNBackbone", input_size=(233, 225, 1),
                           num_kernels=96, kernel_size=(7, 7),
                           stride=(2, 2, 1))
    backbone2 = Conv2DStage("DNNBackbone2", input_size=(117, 113, 96),
                            num_kernels=128, kernel_size=(3, 3),
                            stride=(2, 2, 1))
    downscale.set_input_stage(source)
    backbone.set_input_stage(downscale)
    backbone2.set_input_stage(backbone)

    system = SensorSystem("IMX500", layers=[Layer(SENSOR_LAYER, 65),
                                            Layer(COMPUTE_LAYER, 22)])
    pixels = AnalogArray("PixelArray", num_input=(1, _COLS),
                         num_output=(1, _COLS))
    pixels.add_component(
        ActivePixelSensor(
            num_transistors=4,
            pd_capacitance=6 * units.fF,
            load_capacitance=2.4 * units.pF,  # tall back-illuminated array
            voltage_swing=1.0,
            vdda=2.8,
            correlated_double_sampling=True),
        (_ROWS, _COLS))
    adcs = AnalogArray("ADCArray", num_input=(1, _COLS),
                       num_output=(1, _COLS))
    adcs.add_component(
        ColumnADC(bits=10, energy_per_conversion=55 * units.pJ),
        (1, _COLS))
    pixels.set_output(adcs)

    sram = SRAMModel(capacity_bytes=8 * units.MB, word_bits=128, node_nm=22)
    frame_buffer = DoubleBuffer.from_model("FrameSRAM", sram,
                                           layer=COMPUTE_LAYER,
                                           duty_alpha=0.125)
    adcs.set_output(frame_buffer)
    isp = ComputeUnit("ISP", COMPUTE_LAYER,
                      input_pixels_per_cycle=(1, 16),
                      output_pixels_per_cycle=(1, 1),
                      energy_per_cycle=12 * units.pJ,
                      num_stages=4,
                      clock_hz=400 * units.MHz)
    dnn_buffer = DoubleBuffer("DNNBuffer", COMPUTE_LAYER,
                              size=(256, 1024),
                              write_energy_per_word=1.1 * units.pJ,
                              read_energy_per_word=0.9 * units.pJ,
                              leakage_power=60 * units.uW,
                              num_read_ports=128, num_write_ports=128)
    dnn = SystolicArray("DNNProcessor", COMPUTE_LAYER,
                        dimensions=(32, 72),  # 2304 MACs
                        energy_per_mac=mac_energy(22),
                        utilization=0.85,
                        clock_hz=400 * units.MHz,
                        area=sram.area * 0.3)
    isp.set_input(frame_buffer).set_output(dnn_buffer)
    dnn.set_input(dnn_buffer)
    dnn.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(adcs)
    system.add_memory(frame_buffer)
    system.add_memory(dnn_buffer)
    system.add_compute_unit(isp)
    system.add_compute_unit(dnn)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=1.55 * units.um)

    mapping = {"Input": "PixelArray", "Downscale": "ISP",
               "DNNBackbone": "DNNProcessor",
               "DNNBackbone2": "DNNProcessor"}
    return [source, downscale, backbone, backbone2], system, mapping


ISSCC21 = ChipModel(
    name="ISSCC'21",
    reference="Eki et al., ISSCC 2021 (Sony IMX 500)",
    description="12.3 Mpixel stacked CIS with 4.97 TOPS/W CNN processor",
    process_node="65/22 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=110 * units.pJ,
    build=_build,
)
