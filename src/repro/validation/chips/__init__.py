"""The nine validation chips of Table 2."""

from repro.validation.chips.isscc17 import ISSCC17
from repro.validation.chips.jssc19 import JSSC19
from repro.validation.chips.sensors20 import SENSORS20
from repro.validation.chips.isscc21 import ISSCC21
from repro.validation.chips.jssc21_i import JSSC21_I
from repro.validation.chips.jssc21_ii import JSSC21_II
from repro.validation.chips.vlsi21 import VLSI21
from repro.validation.chips.isscc22 import ISSCC22
from repro.validation.chips.tcas22 import TCAS22

#: Table 2 order.
ALL_CHIPS = (
    ISSCC17,
    JSSC19,
    SENSORS20,
    ISSCC21,
    JSSC21_I,
    JSSC21_II,
    VLSI21,
    ISSCC22,
    TCAS22,
)


def chip_by_name(name: str):
    """Look up a validation chip by its short name (e.g. ``"JSSC'21-II"``)."""
    for chip in ALL_CHIPS:
        if chip.name == name:
            return chip
    known = ", ".join(c.name for c in ALL_CHIPS)
    raise KeyError(f"unknown chip {name!r}; known chips: {known}")
