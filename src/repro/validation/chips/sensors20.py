"""Sensors'20 [13]: Choi et al., always-on analog-CNN image sensor.

Table 2 row: 110 nm, not stacked, 4T APS, no analog memory, column-parallel
MAC and MaxPool in the voltage domain, no digital processing.  The sensor
computes the first CNN layer in analog to wake a downstream processor.
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogMAC,
    AnalogMax,
    ColumnADC,
)
from repro.hw.chip import SensorSystem
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sw.stage import Conv2DStage, PixelInput, ProcessStage
from repro.validation.base import ChipModel

_ROWS, _COLS = 128, 128
_FPS = 30


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input")
    conv = Conv2DStage("AnalogConv", input_size=(_ROWS, _COLS, 1),
                       num_kernels=8, kernel_size=(3, 3))
    pool = ProcessStage("MaxPool", input_size=(_ROWS, _COLS, 8),
                        kernel=(2, 2, 1), stride=(2, 2, 1))
    conv.set_input_stage(source)
    pool.set_input_stage(conv)

    system = SensorSystem("Sensors20", layers=[Layer(SENSOR_LAYER, 110)])
    pixels = AnalogArray("PixelArray", num_input=(1, _COLS),
                         num_output=(1, _COLS))
    pixels.add_component(
        ActivePixelSensor(
            num_transistors=4,
            pd_capacitance=10 * units.fF,
            load_capacitance=1.8 * units.pF,
            voltage_swing=1.0,
            vdda=2.8,
            correlated_double_sampling=True),
        (_ROWS, _COLS))
    macs = AnalogArray("ConvMACArray", num_input=(1, _COLS),
                       num_output=(1, _COLS))
    macs.add_component(
        AnalogMAC("ConvMAC", kernel_volume=9,
                  unit_capacitance=30 * units.fF,
                  voltage_swing=1.0, vdda=2.8, include_opamp=True),
        (1, _COLS))
    pools = AnalogArray("MaxPoolArray", num_input=(1, _COLS),
                        num_output=(1, _COLS // 2))
    pools.add_component(
        AnalogMax("WTAPool", num_inputs=4, load_capacitance=25 * units.fF,
                  voltage_swing=0.6, vdda=2.8),
        (1, _COLS // 2))
    adcs = AnalogArray("ADCArray", num_input=(1, _COLS // 2),
                       num_output=(1, _COLS // 2))
    adcs.add_component(ColumnADC(bits=8), (1, _COLS // 2))
    pixels.set_output(macs)
    macs.set_output(pools)
    pools.set_output(adcs)
    system.add_analog_array(pixels)
    system.add_analog_array(macs)
    system.add_analog_array(pools)
    system.add_analog_array(adcs)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=4.0 * units.um)

    mapping = {"Input": "PixelArray", "AnalogConv": "ConvMACArray",
               "MaxPool": "MaxPoolArray"}
    return [source, conv, pool], system, mapping


SENSORS20 = ChipModel(
    name="Sensors'20",
    reference="Choi et al., Sensors 20(11), 2020",
    description="Always-on CIS computing the first CNN layer in analog",
    process_node="110 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=26 * units.pJ,
    build=_build,
)
