"""TCAS-I'22 [70]: Xu et al., Senputing — sensing-computing fusion chip.

Table 2 row: 180 nm, not stacked, 3T APS, pixel- and chip-level multiply &
add in the current domain, no memory, no digital processing.  An ultra-low-
power always-on binary-network first layer; the paper notes a 33.3 % pixel
error (photodiode swing unknown) and a 33.0 % memory error elsewhere.
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.domain import SignalDomain
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogComparator,
    CurrentDomainMAC,
)
from repro.hw.chip import SensorSystem
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sw.stage import PixelInput, ProcessStage
from repro.validation.base import ChipModel

_ROWS, _COLS = 32, 32
_FPS = 30


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input", bits_per_pixel=1)
    # Binary first layer: in-pixel current-mode multiply, chip-level add.
    binary_layer = ProcessStage("BinaryLayer",
                                input_size=(_ROWS, _COLS, 1),
                                kernel=(4, 4, 1), stride=(4, 4, 1),
                                bits_per_pixel=1)
    binary_layer.set_input_stage(source)

    system = SensorSystem("TCAS22", layers=[Layer(SENSOR_LAYER, 180)])
    pixels = AnalogArray("PixelArray", num_input=(1, _COLS),
                         num_output=(1, _COLS))
    pixels.add_component(
        ActivePixelSensor(
            num_transistors=3,
            pd_capacitance=6 * units.fF,
            load_capacitance=200 * units.fF,  # chip-level sum lines
            voltage_swing=0.6,
            vdda=1.8),
        (_ROWS, _COLS))
    macs = AnalogArray("CurrentMACArray", num_input=(1, _COLS),
                       num_output=(1, _COLS // 4))
    macs.add_component(
        CurrentDomainMAC("SenMAC", kernel_volume=16,
                         load_capacitance=5 * units.fF,
                         voltage_swing=0.3, vdda=1.8,
                         input_domain=SignalDomain.VOLTAGE),
        (1, _COLS // 4))
    comparators = AnalogArray("ComparatorArray",
                              num_input=(1, _COLS // 4),
                              num_output=(1, _COLS // 4))
    comparators.add_component(
        AnalogComparator("SignCmp", energy_per_conversion=0.05 * units.pJ),
        (1, _COLS // 4))
    pixels.set_output(macs)
    macs.set_output(comparators)
    system.add_analog_array(pixels)
    system.add_analog_array(macs)
    system.add_analog_array(comparators)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=10.0 * units.um)

    mapping = {"Input": "PixelArray", "BinaryLayer": "CurrentMACArray"}
    return [source, binary_layer], system, mapping


TCAS22 = ChipModel(
    name="TCAS-I'22",
    reference="Xu et al., IEEE TCAS-I 69(1), 2022",
    description="Senputing: always-on binary-network first layer in-pixel",
    process_node="180 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=0.25 * units.pJ,
    build=_build,
    # The paper reports a 33.3 % pixel error here: the publication does
    # not give the photodiode voltage swing.
    reported_breakdown={
        "SEN": 0.3320 * units.pJ,
    },
)
