"""ISSCC'17 [5]: Bong et al., always-on face-recognition CIS + CNN processor.

Table 2 row: 65 nm, not stacked, 3T APS, 20x80 analog memory, analog
average & add at column and chip level (charge & voltage domains), 160 KB
digital memory and a 4x4x64 MAC array running the CNN.  The chip operates
always-on at ~1 FPS; even with its SRAM aggressively power-gated between
frames (a 7 % duty), leakage still dominates the per-frame energy at this
frame rate — which is what the model reproduces.
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    ActivePixelSensor,
    AnalogAdder,
    ColumnADC,
    PassiveAnalogMemory,
)
from repro.hw.chip import SensorSystem
from repro.hw.digital.compute import SystolicArray
from repro.hw.digital.memory import DoubleBuffer
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.memlib import SRAMModel
from repro.sw.stage import Conv2DStage, PixelInput, ProcessStage
from repro.tech import mac_energy
from repro.validation.base import ChipModel

_ROWS, _COLS = 240, 320
_FPS = 1


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input")
    # Analog Haar-like averaging: 2x2 charge-domain average per tile.
    average = ProcessStage("AnalogAverage", input_size=(_ROWS, _COLS, 1),
                           kernel=(2, 2, 1), stride=(2, 2, 1))
    conv1 = Conv2DStage("Conv1", input_size=(120, 160, 1), num_kernels=16,
                        kernel_size=(5, 5), stride=(2, 2, 1))
    conv2 = Conv2DStage("Conv2", input_size=(60, 80, 16), num_kernels=32,
                        kernel_size=(3, 3), stride=(2, 2, 1))
    average.set_input_stage(source)
    conv1.set_input_stage(average)
    conv2.set_input_stage(conv1)

    system = SensorSystem("ISSCC17", layers=[Layer(SENSOR_LAYER, 65)])
    pixels = AnalogArray("PixelArray", num_input=(1, _COLS),
                         num_output=(1, _COLS // 2))
    pixels.add_component(
        ActivePixelSensor(
            num_transistors=3,
            pd_capacitance=10 * units.fF,
            load_capacitance=1.0 * units.pF,
            voltage_swing=1.0,
            vdda=2.5,
            num_shared_pixels=4),
        (_ROWS // 2, _COLS // 2))
    averagers = AnalogArray("ColumnAverager", num_input=(1, _COLS // 2),
                            num_output=(1, _COLS // 2))
    averagers.add_component(
        AnalogAdder("AvgAdd", capacitance=25 * units.fF, voltage_swing=1.0),
        (1, _COLS // 2))
    analog_memory = AnalogArray("HaarMemory", num_input=(1, _COLS // 2),
                                num_output=(1, _COLS // 2),
                                category="memory")
    analog_memory.add_component(
        PassiveAnalogMemory("HaarSample", bits=8, voltage_swing=1.0),
        (20, 80))
    adcs = AnalogArray("ADCArray", num_input=(1, _COLS // 2),
                       num_output=(1, _COLS // 2))
    adcs.add_component(ColumnADC(bits=8), (1, _COLS // 2))
    pixels.set_output(averagers)
    averagers.set_output(analog_memory)
    analog_memory.set_output(adcs)

    sram = SRAMModel(capacity_bytes=160 * units.KB, word_bits=64, node_nm=65)
    buffer = DoubleBuffer.from_model("FeatureSRAM", sram,
                                     duty_alpha=0.07)
    adcs.set_output(buffer)
    cnn = SystolicArray("CNNArray", dimensions=(16, 64),
                        energy_per_mac=mac_energy(65),
                        utilization=0.8, num_stages=2,
                        clock_hz=50 * units.MHz,
                        area=sram.area * 0.6)
    cnn.set_input(buffer)
    cnn.set_sink()
    system.add_analog_array(pixels)
    system.add_analog_array(averagers)
    system.add_analog_array(analog_memory)
    system.add_analog_array(adcs)
    system.add_memory(buffer)
    system.add_compute_unit(cnn)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=4.0 * units.um)

    mapping = {"Input": "PixelArray", "AnalogAverage": "PixelArray",
               "Conv1": "CNNArray", "Conv2": "CNNArray"}
    return [source, average, conv1, conv2], system, mapping


ISSCC17 = ChipModel(
    name="ISSCC'17",
    reference="Bong et al., ISSCC 2017 / IEEE JSSC 53(1), 2018",
    description="0.62 mW always-on face-recognition CIS with CNN processor",
    process_node="65 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=8070 * units.pJ,
    build=_build,
)
