"""JSSC'21-I [30]: Hsu et al., 0.5-V real-time computational CIS.

Table 2 row: 180 nm, not stacked, PWM pixels, no analog memory, column
MAC in the time & current domains, programmable feature-extraction kernel.
The paper notes its pixel estimate is 12.4 % off for lack of ramp-generator
parameters.
"""

from __future__ import annotations

from repro import units
from repro.hw.analog.array import AnalogArray
from repro.hw.analog.components import (
    AnalogComparator,
    CurrentDomainMAC,
    PWMPixel,
)
from repro.hw.chip import SensorSystem
from repro.hw.layer import Layer, SENSOR_LAYER
from repro.sw.stage import PixelInput, ProcessStage
from repro.validation.base import ChipModel

_ROWS, _COLS = 128, 128
_FPS = 30


def _build():
    source = PixelInput((_ROWS, _COLS, 1), name="Input")
    feature = ProcessStage("FeatureExtraction",
                           input_size=(_ROWS, _COLS, 1),
                           kernel=(3, 3, 1), stride=(1, 1, 1),
                           padding="same")
    digitize = ProcessStage("Digitize", input_size=(_ROWS, _COLS, 1),
                            kernel=(1, 1, 1), stride=(1, 1, 1),
                            bits_per_pixel=1)
    feature.set_input_stage(source)
    digitize.set_input_stage(feature)

    system = SensorSystem("JSSC21-I", layers=[Layer(SENSOR_LAYER, 180)])
    pixels = AnalogArray("PWMPixelArray", num_input=(1, _COLS),
                         num_output=(1, _COLS))
    pixels.add_component(
        PWMPixel("PWM", pd_capacitance=12 * units.fF, voltage_swing=0.5,
                 comparator_energy=1.6 * units.pJ),
        (_ROWS, _COLS))
    macs = AnalogArray("TimeMACArray", num_input=(1, _COLS),
                       num_output=(1, _COLS))
    macs.add_component(
        CurrentDomainMAC("PWMMAC", kernel_volume=9,
                         load_capacitance=14 * units.fF,
                         voltage_swing=0.35, vdda=0.5),
        (1, _COLS))
    comparators = AnalogArray("ComparatorArray", num_input=(1, _COLS),
                              num_output=(1, _COLS))
    comparators.add_component(
        AnalogComparator("OutCmp", energy_per_conversion=1.0 * units.pJ),
        (1, _COLS))
    pixels.set_output(macs)
    macs.set_output(comparators)
    system.add_analog_array(pixels)
    system.add_analog_array(macs)
    system.add_analog_array(comparators)
    system.set_pixel_array_geometry(_ROWS, _COLS, pitch=7.0 * units.um)

    mapping = {"Input": "PWMPixelArray",
               "FeatureExtraction": "TimeMACArray",
               "Digitize": "ComparatorArray"}
    return [source, feature, digitize], system, mapping


JSSC21_I = ChipModel(
    name="JSSC'21-I",
    reference="Hsu et al., IEEE JSSC 56(5), 2021",
    description="0.5-V computational CIS with programmable PWM kernels",
    process_node="180 nm",
    num_pixels=_ROWS * _COLS,
    frame_rate=_FPS,
    reported_energy_per_pixel=2.9 * units.pJ,
    build=_build,
    # The paper reports a 12.4 % pixel error (ramp-generator parameters
    # unavailable) and 9.3 % on the analog PE for this chip.
    reported_breakdown={
        "SEN": 2.9715 * units.pJ,
        "COMP-A": 0.0202 * units.pJ,
    },
)
