"""Common scaffolding of the validation chip models.

Each chip model rebuilds one of the Table 2 silicon designs with the public
CamJ API and carries the energy-per-pixel number reported by (or derived
from) the original publication, which Fig. 7 compares against.

Validation systems zero out the off-chip interface energy: the published
numbers are chip power measurements, which do not include the downstream
MIPI transmission the architectural explorations of Sec. 6 add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro import units
from repro.energy.report import EnergyReport
from repro.hw.chip import SensorSystem
from repro.hw.interface import Interface


@dataclass
class ChipModel:
    """One validation chip: metadata plus a builder for its CamJ model.

    ``reported_breakdown`` optionally carries the original paper's
    per-category energy-per-pixel numbers (joules per pixel, keyed by the
    :class:`~repro.energy.report.Category` value string) — the Fig. 7b-j
    bars; where papers lump fine-grained components into coarse "Analog"/
    "Digital"/"Others" bars, only the comparable categories appear.
    """

    name: str
    reference: str
    description: str
    process_node: str
    num_pixels: int
    frame_rate: float
    reported_energy_per_pixel: float
    build: Callable[[], Tuple[list, SensorSystem, dict]]
    exposure_slots: int = 1
    reported_breakdown: Dict[str, float] = None

    def simulate(self) -> EnergyReport:
        """Run the CamJ estimation of this chip."""
        from repro.sim.simulator import simulate
        stages, system, mapping = self.build()
        system.set_offchip_interface(Interface("pads", 0.0))
        return simulate(stages, system, mapping,
                        frame_rate=self.frame_rate,
                        exposure_slots=self.exposure_slots)


@dataclass
class ChipResult:
    """Estimated-vs-reported comparison of one chip."""

    chip: ChipModel
    report: EnergyReport

    @property
    def estimated_energy_per_pixel(self) -> float:
        return self.report.energy_per_pixel(self.chip.num_pixels)

    @property
    def reported_energy_per_pixel(self) -> float:
        return self.chip.reported_energy_per_pixel

    @property
    def absolute_percentage_error(self) -> float:
        reported = self.reported_energy_per_pixel
        return abs(self.estimated_energy_per_pixel - reported) / reported

    def breakdown_per_pixel(self) -> Dict[str, float]:
        """Per-category energy per pixel (the Fig. 7b-j bars)."""
        return {category.value: energy / self.chip.num_pixels
                for category, energy in self.report.by_category().items()}

    def breakdown_errors(self) -> Dict[str, float]:
        """Per-category absolute error vs the paper-reported breakdown.

        Empty when the original publication reports no per-component
        numbers.  This is how the paper quantifies the Sec. 5 component
        mismatches (e.g. the JSSC'19 analog PE at 0.4 %, the TCAS-I'22
        pixel at 33.3 %).
        """
        if not self.chip.reported_breakdown:
            return {}
        estimated = self.breakdown_per_pixel()
        errors = {}
        for category, reported in self.chip.reported_breakdown.items():
            if reported <= 0:
                continue
            errors[category] = abs(estimated.get(category, 0.0)
                                   - reported) / reported
        return errors

    def describe(self) -> str:
        est = self.estimated_energy_per_pixel / units.pJ
        rep = self.reported_energy_per_pixel / units.pJ
        return (f"{self.chip.name:<14} estimated {est:9.1f} pJ/px  "
                f"reported {rep:9.1f} pJ/px  "
                f"error {100 * self.absolute_percentage_error:5.1f}%")
