"""The validation harness: run all nine chips, compute MAPE and Pearson.

Reproduces Fig. 7a: across chips spanning several orders of magnitude of
energy per pixel, the paper reports a Pearson correlation coefficient of
0.9999 and a mean absolute percentage error of 7.5 %.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.validation.base import ChipModel, ChipResult


@dataclass
class ValidationSummary:
    """Aggregate metrics over all validated chips."""

    results: List[ChipResult]

    @property
    def mean_absolute_percentage_error(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.absolute_percentage_error for r in self.results) \
            / len(self.results)

    @property
    def pearson_correlation(self) -> float:
        """Pearson r between estimated and reported energy per pixel."""
        estimated = [r.estimated_energy_per_pixel for r in self.results]
        reported = [r.reported_energy_per_pixel for r in self.results]
        return _pearson(estimated, reported)

    @property
    def energy_span_orders(self) -> float:
        """Orders of magnitude the reported energies span."""
        reported = [r.reported_energy_per_pixel for r in self.results]
        return math.log10(max(reported) / min(reported))

    def to_table(self) -> str:
        lines = ["Validation against Table 2 chips (Fig. 7a)"]
        lines.extend("  " + result.describe() for result in self.results)
        lines.append(f"  MAPE    {100 * self.mean_absolute_percentage_error:.1f}%"
                     f"   (paper: 7.5%)")
        lines.append(f"  Pearson {self.pearson_correlation:.4f}"
                     f"   (paper: 0.9999)")
        return "\n".join(lines)


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    if n < 2:
        raise ValueError("Pearson correlation needs at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise ValueError("Pearson correlation undefined for constant series")
    return cov / math.sqrt(var_x * var_y)


def run_chip(chip: ChipModel) -> ChipResult:
    """Simulate one chip and package the comparison."""
    return ChipResult(chip=chip, report=chip.simulate())


def run_validation(chips: Optional[Sequence[ChipModel]] = None
                   ) -> ValidationSummary:
    """Simulate every chip (default: all nine of Table 2)."""
    if chips is None:
        from repro.validation.chips import ALL_CHIPS
        chips = ALL_CHIPS
    return ValidationSummary(results=[run_chip(chip) for chip in chips])
