"""CamJ reproduction: energy modeling for in-sensor visual computing.

The public API mirrors the paper's three-part programming interface
(Fig. 5): describe the algorithm as stages, the hardware as a
:class:`SensorSystem` of analog arrays plus digital units, map one onto
the other, and call :func:`simulate` under an FPS target.

    >>> from repro import (PixelInput, ProcessStage, SensorSystem,
    ...                    AnalogArray, simulate)
"""

from repro import units
from repro.exceptions import (
    CamJError,
    CheckError,
    ConfigurationError,
    DAGError,
    DomainMismatchError,
    MappingError,
    SimulationError,
    StallError,
    TimingError,
)
from repro.sw import (
    Conv2DStage,
    DepthwiseConv2DStage,
    DNNProcessStage,
    FullyConnectedStage,
    PixelInput,
    ProcessStage,
    Stage,
    StageGraph,
)
from repro.hw.analog import (
    ActiveAnalogMemory,
    ActivePixelSensor,
    AnalogAbs,
    AnalogAdder,
    AnalogArray,
    AnalogComparator,
    AnalogComponent,
    AnalogLog,
    AnalogMAC,
    AnalogMax,
    AnalogScaling,
    CellUsage,
    ColumnADC,
    CurrentDomainMAC,
    DigitalPixelSensor,
    PassiveAnalogMemory,
    PWMPixel,
    SampleAndHold,
    SignalDomain,
    SwitchedCapSubtractor,
)
from repro.hw.chip import SensorSystem
from repro.hw.digital import (
    ComputeUnit,
    DoubleBuffer,
    FIFO,
    LineBuffer,
    SystolicArray,
)
from repro.hw.interface import Interface, MIPI_CSI2, MicroTSV
from repro.hw.layer import COMPUTE_LAYER, Layer, OFF_CHIP, SENSOR_LAYER
from repro.memlib import DRAMModel, SRAMModel, STTRAMModel
from repro.energy import Category, EnergyEntry, EnergyReport
from repro.sim import Mapping, simulate
from repro.area import estimate_area, power_density

__version__ = "1.0.0"

__all__ = [
    "units",
    # exceptions
    "CamJError", "CheckError", "ConfigurationError", "DAGError",
    "DomainMismatchError", "MappingError", "SimulationError", "StallError",
    "TimingError",
    # software description
    "Stage", "PixelInput", "ProcessStage", "DNNProcessStage", "Conv2DStage",
    "DepthwiseConv2DStage", "FullyConnectedStage", "StageGraph",
    # analog hardware
    "SignalDomain", "AnalogArray", "AnalogComponent", "CellUsage",
    "ActivePixelSensor", "DigitalPixelSensor", "PWMPixel", "ColumnADC",
    "AnalogMAC", "CurrentDomainMAC", "AnalogAdder", "AnalogMax",
    "AnalogScaling", "AnalogLog", "AnalogAbs", "AnalogComparator",
    "PassiveAnalogMemory", "ActiveAnalogMemory", "SampleAndHold",
    "SwitchedCapSubtractor",
    # digital hardware
    "ComputeUnit", "SystolicArray", "FIFO", "LineBuffer", "DoubleBuffer",
    # system assembly
    "SensorSystem", "Layer", "SENSOR_LAYER", "COMPUTE_LAYER", "OFF_CHIP",
    "Interface", "MIPI_CSI2", "MicroTSV",
    # memory substrate
    "SRAMModel", "STTRAMModel", "DRAMModel",
    # simulation and reporting
    "Mapping", "simulate", "EnergyReport", "EnergyEntry", "Category",
    "estimate_area", "power_density",
]
