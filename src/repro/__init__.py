"""CamJ reproduction: energy modeling for in-sensor visual computing.

The public API mirrors the paper's three-part programming interface
(Fig. 5): describe the algorithm as stages, the hardware as a
:class:`SensorSystem` of analog arrays plus digital units, and map one
onto the other.  Those three parts bundle into a first-class
:class:`Design` — a frozen, hashable value that serializes to JSON —
which a :class:`Simulator` session turns into structured
:class:`SimResult` outcomes, one design at a time or in parallel
batches::

    >>> from repro import Design, SimOptions, Simulator
    >>> design = Design(camj_sw_config(), camj_hw_config(), camj_mapping())
    >>> result = Simulator(SimOptions(frame_rate=30)).run(design)
    >>> result.report.total_energy          # doctest: +SKIP

Designs round-trip through ``Design.to_dict()`` / ``Design.from_dict()``
(and spec files runnable via ``python -m repro run spec.json``), and
``Simulator.run_many`` fans a batch out across worker threads with
content-hash result caching.  The classic functional entry point
:func:`simulate` remains as a thin wrapper over the same engine.
"""

from repro import units
from repro.exceptions import (
    CamJError,
    CheckError,
    ConfigurationError,
    DAGError,
    DomainMismatchError,
    MappingError,
    SimulationError,
    StallError,
    TimingError,
)
from repro.sw import (
    Conv2DStage,
    DepthwiseConv2DStage,
    DNNProcessStage,
    FullyConnectedStage,
    PixelInput,
    ProcessStage,
    Stage,
    StageGraph,
)
from repro.hw.analog import (
    ActiveAnalogMemory,
    ActivePixelSensor,
    AnalogAbs,
    AnalogAdder,
    AnalogArray,
    AnalogComparator,
    AnalogComponent,
    AnalogLog,
    AnalogMAC,
    AnalogMax,
    AnalogScaling,
    CellUsage,
    ColumnADC,
    CurrentDomainMAC,
    DigitalPixelSensor,
    PassiveAnalogMemory,
    PWMPixel,
    SampleAndHold,
    SignalDomain,
    SwitchedCapSubtractor,
)
from repro.hw.chip import SensorSystem
from repro.hw.digital import (
    ComputeUnit,
    DoubleBuffer,
    FIFO,
    LineBuffer,
    SystolicArray,
)
from repro.hw.interface import Interface, MIPI_CSI2, MicroTSV
from repro.hw.layer import COMPUTE_LAYER, Layer, OFF_CHIP, SENSOR_LAYER
from repro.memlib import DRAMModel, SRAMModel, STTRAMModel
from repro.energy import Category, EnergyEntry, EnergyReport
from repro.sim import Mapping, simulate
from repro.api import (
    Design,
    SimOptions,
    SimResult,
    Simulator,
    build_usecase,
    design_from_spec,
    load_scenario,
    register_usecase,
    run_design,
)
from repro.area import estimate_area, power_density
# The design-space exploration layer (spaces, metrics, Pareto engine)
# lives in `repro.explore`; only the result/metric values are re-exported
# here so the `repro.explore` submodule name stays importable unshadowed.
from repro.explore import (
    ExplorationPoint,
    ExplorationResult,
    Metric,
    available_metrics,
    register_metric,
)

__version__ = "1.0.0"

__all__ = [
    "units",
    # exceptions
    "CamJError", "CheckError", "ConfigurationError", "DAGError",
    "DomainMismatchError", "MappingError", "SimulationError", "StallError",
    "TimingError",
    # software description
    "Stage", "PixelInput", "ProcessStage", "DNNProcessStage", "Conv2DStage",
    "DepthwiseConv2DStage", "FullyConnectedStage", "StageGraph",
    # analog hardware
    "SignalDomain", "AnalogArray", "AnalogComponent", "CellUsage",
    "ActivePixelSensor", "DigitalPixelSensor", "PWMPixel", "ColumnADC",
    "AnalogMAC", "CurrentDomainMAC", "AnalogAdder", "AnalogMax",
    "AnalogScaling", "AnalogLog", "AnalogAbs", "AnalogComparator",
    "PassiveAnalogMemory", "ActiveAnalogMemory", "SampleAndHold",
    "SwitchedCapSubtractor",
    # digital hardware
    "ComputeUnit", "SystolicArray", "FIFO", "LineBuffer", "DoubleBuffer",
    # system assembly
    "SensorSystem", "Layer", "SENSOR_LAYER", "COMPUTE_LAYER", "OFF_CHIP",
    "Interface", "MIPI_CSI2", "MicroTSV",
    # memory substrate
    "SRAMModel", "STTRAMModel", "DRAMModel",
    # simulation and reporting
    "Mapping", "simulate", "EnergyReport", "EnergyEntry", "Category",
    "estimate_area", "power_density",
    # session API
    "Design", "SimOptions", "SimResult", "Simulator", "run_design",
    "build_usecase", "register_usecase", "design_from_spec",
    "load_scenario",
    # design-space exploration (see repro.explore for the full surface)
    "ExplorationPoint", "ExplorationResult", "Metric", "register_metric",
    "available_metrics",
]
