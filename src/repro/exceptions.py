"""Exception hierarchy for the CamJ reproduction.

Every error raised by the framework derives from :class:`CamJError` so that
callers can catch framework failures without masking programming errors.
"""

from __future__ import annotations


class CamJError(Exception):
    """Base class for all framework errors."""


class ConfigurationError(CamJError):
    """An algorithm/hardware description is malformed (bad shape, bad value)."""


class MappingError(CamJError):
    """The software-to-hardware mapping is incomplete or inconsistent."""


class CheckError(CamJError):
    """A pre-simulation design check failed (Sec. 3.2 of the paper)."""


class DomainMismatchError(CheckError):
    """Producer output signal domain does not match consumer input domain."""


class DAGError(CheckError):
    """The algorithm DAG is ill-formed (cycle, dangling stage, shape clash)."""


class StallError(CamJError):
    """The digital pipeline stalls under the configured frame-rate target."""


class TimingError(CamJError):
    """The frame-time budget cannot accommodate the digital latency."""


class SimulationError(CamJError):
    """The cycle-level simulation reached an inconsistent state."""


class SerializationError(ConfigurationError):
    """A design cannot be converted to/from its serialized spec form."""


class TransientSimError(CamJError):
    """A failure expected to clear on retry (I/O hiccup, injected fault).

    Execution layers classify these as retryable: a task failing with a
    transient error is re-run under the session's retry policy instead
    of surfacing the failure immediately.
    """


class ExecutionTimeoutError(CamJError):
    """A simulation task exceeded its per-task deadline."""


class WorkerCrashError(CamJError):
    """A design was quarantined after repeatedly killing pool workers.

    Raised (or captured into a typed result) when the same task is
    implicated in multiple worker-process deaths: re-running it would
    keep crashing the pool, so it is failed instead of retried.
    """


class LeaseExpiredError(CamJError):
    """A distributed task's lease ran out before its worker reported back.

    The coordinator hands every dispatched task to exactly one worker
    under a lease (task id + worker id + deadline).  When heartbeats
    stop and the deadline passes — a SIGKILLed worker, a network
    partition, a hung host — the lease expires: the task re-enters the
    queue with a strike against its identity, and a task that expires
    :data:`~repro.resilience.policy.QUARANTINE_THRESHOLD` times is
    failed with a typed :class:`WorkerCrashError` result instead of
    cycling forever.
    """


class VectorUnsupported(Exception):
    """A design or group cannot take the vectorized explore fast path.

    Deliberately *not* a :class:`CamJError`: it never reaches users as a
    failure — the explore engine catches it and routes the affected
    points through the object path instead.
    """
